"""Scenario corpora: named, reproducible batch workloads.

A :class:`ScenarioSpec` is a *description* of one unit of work — a
scenario family name plus plain keyword parameters — rather than the
built objects themselves.  Specs are hashable, picklable and tiny, so
the multiprocess executor ships specs to workers and each worker
rebuilds its scenario locally (deterministically: the generators are
seeded).

A :class:`Corpus` is an ordered collection of specs under a name.  The
built-in registry enumerates the parameterized families of
:mod:`repro.scenarios.generators` into sweeps over evolution depth,
ontology fan-out (partition width), ded arity (flag count) and failure
rate (duplicate-name/cancellation shares).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from repro.scenarios.generators import FAMILIES, GeneratedScenario, build_family

__all__ = [
    "ScenarioSpec",
    "Corpus",
    "spec",
    "register_corpus",
    "get_corpus",
    "corpus_names",
    "describe_corpora",
    "DEFAULT_CORPUS",
]

DEFAULT_CORPUS = "mixed"


@dataclass(frozen=True)
class ScenarioSpec:
    """One unit of batch work: a family plus its parameters."""

    family: str
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            known = ", ".join(sorted(FAMILIES))
            raise KeyError(
                f"unknown scenario family {self.family!r} (known: {known})"
            )

    @property
    def label(self) -> str:
        """Stable human-readable identity, e.g. ``flagged(flags=2,seed=0)``."""
        inside = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.family}({inside})"

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def build(self) -> GeneratedScenario:
        """Materialize the scenario and its source instance."""
        return build_family(self.family, **self.params_dict())


def spec(family: str, **params: object) -> ScenarioSpec:
    """Spec constructor with keyword ergonomics (params sorted by name)."""
    return ScenarioSpec(family, tuple(sorted(params.items())))


@dataclass(frozen=True)
class Corpus:
    """A named, ordered, reproducible workload."""

    name: str
    description: str
    specs: Tuple[ScenarioSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self.specs)

    def limited(self, limit: int) -> "Corpus":
        """A prefix of this corpus (for smoke-testing big workloads)."""
        if limit >= len(self.specs):
            return self
        return Corpus(
            name=f"{self.name}[:{limit}]",
            description=self.description,
            specs=self.specs[:limit],
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BUILDERS: Dict[str, Callable[[], Corpus]] = {}


def register_corpus(builder: Callable[[], Corpus]) -> Callable[[], Corpus]:
    """Register a corpus builder under the name it produces."""
    corpus = builder()
    _BUILDERS[corpus.name] = builder
    return builder


def get_corpus(name: str) -> Corpus:
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise KeyError(f"unknown corpus {name!r} (known: {known})") from None
    return builder()


def corpus_names() -> List[str]:
    return sorted(_BUILDERS)


def describe_corpora() -> List[Tuple[str, int, str]]:
    """(name, size, description) for every registered corpus."""
    out = []
    for name in corpus_names():
        corpus = get_corpus(name)
        out.append((corpus.name, len(corpus), corpus.description))
    return out


# ---------------------------------------------------------------------------
# Built-in workloads
# ---------------------------------------------------------------------------


@register_corpus
def _smoke() -> Corpus:
    """One small case per family — a seconds-long sanity workload."""
    specs = (
        spec("running", products=8, seed=0),
        spec("cleanup", orders=15, cancelled_share=0.3, seed=0),
        spec("evolution", with_soft_delete=False, employees=12, seed=0),
        spec("evolution", with_soft_delete=True, employees=12, seed=0),
        spec("partition", width=2, class_keys=True, items=10, seed=0),
        spec("flagged", flags=1, products=6, name_pairs=1, seed=0),
        spec("random", seed=0),
        spec("random", seed=1),
    )
    return Corpus("smoke", "one small case per family", specs)


@register_corpus
def _mixed() -> Corpus:
    """The default batch workload: every family, every sweep axis."""
    specs: List[ScenarioSpec] = []
    for seed in range(20):
        specs.append(spec("random", seed=seed, instance_rows=10))
    for flags in (1, 2, 3):  # ded arity sweep
        for name_pairs in (0, 1):  # failure-rate sweep
            for seed in (0, 1):
                specs.append(
                    spec(
                        "flagged",
                        flags=flags,
                        products=8,
                        name_pairs=name_pairs,
                        seed=seed,
                    )
                )
    for orders in (20, 40):
        for share in (0.0, 0.3, 0.6):  # failure-rate sweep
            specs.append(
                spec("cleanup", orders=orders, cancelled_share=share, seed=0)
            )
    for soft in (False, True):  # evolution depth (plain vs. +soft-delete)
        for employees in (20, 50):
            specs.append(
                spec("evolution", with_soft_delete=soft, employees=employees, seed=0)
            )
    for width in (2, 3, 4):  # ontology fan-out sweep
        for default_key in (False, True):
            specs.append(
                spec(
                    "partition",
                    width=width,
                    default_key=default_key,
                    items=20,
                    seed=0,
                    duplicate_names=1 if default_key else 0,
                )
            )
    for width in (2, 3):
        specs.append(spec("partition", width=width, class_keys=True, items=20, seed=0))
    for products in (8, 16):
        specs.append(spec("running", products=products, seed=7))
    return Corpus(
        "mixed",
        "every family: random, ded-arity, failure-rate, evolution and "
        "fan-out sweeps",
        tuple(specs),
    )


@register_corpus
def _flagged_sweep() -> Corpus:
    """Ded arity (flags) × failure pressure (name pairs)."""
    specs = tuple(
        spec("flagged", flags=flags, products=10, name_pairs=pairs, seed=seed)
        for flags in (1, 2, 3, 4)
        for pairs in (0, 1, 2)
        for seed in (0, 1)
    )
    return Corpus(
        "flagged-sweep", "ded arity x failure-rate over the flag-view family", specs
    )


@register_corpus
def _partition_sweep() -> Corpus:
    """Ontology fan-out: partition width 2..6, with and without ded keys."""
    specs = tuple(
        spec(
            "partition",
            width=width,
            default_key=default_key,
            items=24,
            seed=seed,
            duplicate_names=1 if default_key else 0,
        )
        for width in (2, 3, 4, 5, 6)
        for default_key in (False, True)
        for seed in (0, 1)
    )
    return Corpus("partition-sweep", "ontology fan-out over partition width", specs)


@register_corpus
def _random_100() -> Corpus:
    """100 randomized well-formed scenarios (property-test shapes)."""
    specs = tuple(spec("random", seed=seed) for seed in range(100))
    return Corpus("random-100", "100 randomized scenarios", specs)
