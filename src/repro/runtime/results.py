"""JSONL task records and aggregate summaries for batch runs.

One :class:`TaskRecord` per executed spec: identity (corpus, index,
family, params, fingerprints), outcome (pipeline status, verification),
timings (build / rewrite / chase / total) and cache behaviour.  Records
serialize to one JSON object per line so arbitrarily large runs stream
to disk and standard tooling (``jq``, pandas) can consume them.

:func:`summarize` folds records into a :class:`BatchSummary`;
:func:`repro.reporting.batch_summary_table` renders that for humans.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import percentile

__all__ = [
    "TaskRecord",
    "BatchSummary",
    "write_jsonl",
    "read_jsonl",
    "summarize",
]

# Task statuses beyond the chase's own success/failure/nontermination.
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


@dataclass
class TaskRecord:
    """The outcome of one spec run through the pipeline."""

    corpus: str
    index: int
    label: str
    family: str
    params: Dict[str, object]
    fingerprint: str = ""
    """Scenario fingerprint (the rewrite-cache key)."""
    task_fingerprint: str = ""
    """Scenario + instance + pipeline-parameter fingerprint."""

    status: str = ""
    """``success`` / ``failure`` / ``nontermination`` / ``timeout`` / ``error``."""
    ok: bool = False
    verified: Optional[bool] = None
    error: str = ""
    parallelism: str = "serial"
    """Effective intra-chase sharding for this task (``serial``,
    ``thread:N`` or ``process:N``) after the shared worker budget."""
    branch_parallelism: str = "serial"
    """Effective branch-race fan-out of the disjunctive search for this
    task, after the shared worker budget."""
    branch_timings: Optional[List[Dict[str, object]]] = None
    """Per derived-scenario timings from the greedy ded sweep (canonical
    selection order up to the winner): ``index``, ``selection``,
    ``status``, ``seconds``, ``worker``."""

    cache_hit: bool = False
    build_seconds: float = 0.0
    rewrite_seconds: float = 0.0
    chase_seconds: float = 0.0
    total_seconds: float = 0.0

    dependencies: int = 0
    deds: int = 0
    source_facts: int = 0
    target_facts: int = 0
    rounds: int = 0
    scenarios_tried: int = 0
    nulls_created: int = 0

    termination_class: str = ""
    """Static termination verdict for the rewritten set (``full`` /
    ``weakly_acyclic`` / ``jointly_acyclic`` / ``super_weakly_acyclic``
    / ``unproven``)."""
    proven_terminating: bool = False
    guards: str = ""
    """``dropped`` when the chase ran without budgets on the strength of
    the proof, ``enforced`` otherwise."""
    dead_dependencies: int = 0
    """Dependencies the analyzer proved could never fire statically."""
    strata: int = 0
    """Strata in the analyzer's condensed fire schedule."""
    analysis_errors: int = 0
    analysis_warnings: int = 0

    trace: Optional[Dict[str, object]] = None
    """Flight-recorder payload (spans + metrics snapshot) when the batch
    ran with tracing enabled; ``None`` otherwise.  Serializes into the
    JSONL record so a traced batch is fully replayable offline."""
    metrics: Optional[Dict[str, float]] = None
    """Final counter values from the task's flight recorder — the
    ``trace`` payload's counters lifted out for convenient ``jq``/trend
    consumption."""

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TaskRecord":
        return cls(**json.loads(line))


def write_jsonl(records: Iterable[TaskRecord], path) -> int:
    """Write records one-per-line; returns how many were written."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as stream:
        for record in records:
            stream.write(record.to_json())
            stream.write("\n")
            count += 1
    return count


def read_jsonl(path) -> List[TaskRecord]:
    records = []
    with Path(path).open() as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(TaskRecord.from_json(line))
    return records


@dataclass
class BatchSummary:
    """Aggregate view of one batch run."""

    total: int = 0
    succeeded: int = 0
    failed: int = 0
    nonterminated: int = 0
    timeouts: int = 0
    errors: int = 0
    verified: int = 0
    cache_hits: int = 0
    cache_lookups: int = 0
    rewrite_seconds: float = 0.0
    chase_seconds: float = 0.0
    task_seconds: float = 0.0
    wall_seconds: float = 0.0
    parallelism: str = "serial"
    """Intra-chase sharding mode the run's tasks used."""
    branch_parallelism: str = "serial"
    """Branch-race fan-out the run's disjunctive searches used."""
    proven_terminating: int = 0
    """Tasks whose scenario the static analyzer proved terminating."""
    guards_dropped: int = 0
    """Tasks that chased without budgets on the strength of the proof."""
    dead_dependencies: int = 0
    """Statically dead dependencies summed over the run's tasks."""
    analysis_errors: int = 0
    analysis_warnings: int = 0
    by_family: Dict[str, int] = field(default_factory=dict)
    by_termination: Dict[str, int] = field(default_factory=dict)
    """Task counts per termination class (``full``, ``weakly_acyclic``,
    ...)."""
    phase_latencies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    """Per-phase (build/rewrite/chase/total) latency digests over the
    run's task records: ``{"p50": ..., "p99": ..., "sum": ...}``."""
    kernel_metrics: Dict[str, float] = field(default_factory=dict)
    """Columnar-kernel totals over the run's traced records: summed
    ``kernel.*`` counters plus the peak ``instance.intern_size`` gauge.
    Empty when the batch ran untraced."""

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cache_lookups if self.cache_lookups else 0.0

    @property
    def scenarios_per_second(self) -> float:
        return self.total / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def clean(self) -> bool:
        """No infrastructure problems (chase failures are a valid outcome)."""
        return self.errors == 0 and self.timeouts == 0

    def as_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["cache_hit_rate"] = self.cache_hit_rate
        out["scenarios_per_second"] = self.scenarios_per_second
        return out


def summarize(
    records: Iterable[TaskRecord],
    wall_seconds: float = 0.0,
    parallelism: str = "serial",
    branch_parallelism: str = "serial",
) -> BatchSummary:
    """Fold task records into one :class:`BatchSummary`."""
    summary = BatchSummary(
        wall_seconds=wall_seconds,
        parallelism=parallelism,
        branch_parallelism=branch_parallelism,
    )
    phase_samples: Dict[str, List[float]] = {
        "build": [],
        "rewrite": [],
        "chase": [],
        "total": [],
    }
    for record in records:
        summary.total += 1
        summary.by_family[record.family] = (
            summary.by_family.get(record.family, 0) + 1
        )
        if record.status == "success":
            summary.succeeded += 1
        elif record.status == "failure":
            summary.failed += 1
        elif record.status == "nontermination":
            summary.nonterminated += 1
        elif record.status == STATUS_TIMEOUT:
            summary.timeouts += 1
        else:
            summary.errors += 1
        if record.verified:
            summary.verified += 1
        summary.cache_lookups += 1
        if record.cache_hit:
            summary.cache_hits += 1
        if record.termination_class:
            summary.by_termination[record.termination_class] = (
                summary.by_termination.get(record.termination_class, 0) + 1
            )
        if record.proven_terminating:
            summary.proven_terminating += 1
        if record.guards == "dropped":
            summary.guards_dropped += 1
        summary.dead_dependencies += record.dead_dependencies
        summary.analysis_errors += record.analysis_errors
        summary.analysis_warnings += record.analysis_warnings
        summary.rewrite_seconds += record.rewrite_seconds
        summary.chase_seconds += record.chase_seconds
        summary.task_seconds += record.total_seconds
        phase_samples["build"].append(record.build_seconds)
        phase_samples["rewrite"].append(record.rewrite_seconds)
        phase_samples["chase"].append(record.chase_seconds)
        phase_samples["total"].append(record.total_seconds)
        if record.metrics:
            kernel = summary.kernel_metrics
            for name, value in record.metrics.items():
                if name.startswith("kernel."):
                    kernel[name] = kernel.get(name, 0) + value
                elif name == "instance.intern_size":
                    # A gauge: the pool is global per process, so the
                    # batch-level figure is the peak, not a sum.
                    kernel[name] = max(kernel.get(name, 0), value)
    for phase, samples in phase_samples.items():
        if samples:
            summary.phase_latencies[phase] = {
                "p50": percentile(samples, 50),
                "p99": percentile(samples, 99),
                "sum": sum(samples),
            }
    return summary
