"""Content-addressed rewrite cache: fingerprint → serialized rewriting.

Rewriting is pure in the scenario — two fingerprint-identical scenarios
rewrite to the same ``Σ_ST ∪ Σ_T`` — so the batch runtime stores
rewritings by :func:`~repro.runtime.fingerprint.fingerprint_scenario`
and replays them instead of re-running the normalization worklist.

The cache payload is plain JSON built on the DSL: each rewritten
dependency is serialized (label stripped — rewriter-generated names like
``m0.g0`` or ``e0#p0`` contain characters the lexer treats as comments,
so names travel out-of-band) and parsed back with
:func:`repro.dsl.parser.parse_dependency`.  Provenance and auxiliary
arities ride along verbatim.

Two tiers:

* an in-memory LRU (``capacity`` entries, oldest-use evicted), and
* an optional on-disk JSON backend (one file per fingerprint, written
  atomically via rename) so warm state survives processes — this is how
  pool workers share a cache.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.rewriter import Provenance, RewriteResult
from repro.core.scenario import MappingScenario
from repro.dsl.parser import parse_dependency
from repro.dsl.serializer import serialize_dependency
from repro.logic.dependencies import Dependency
from repro.runtime.fingerprint import fingerprint_scenario

__all__ = ["CacheStats", "RewriteCache", "encode_rewrite", "decode_rewrite"]

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Rewrite (de)serialization
# ---------------------------------------------------------------------------


def encode_rewrite(
    result: RewriteResult, unfold_source_premises: bool = False
) -> dict:
    """A JSON-safe payload capturing everything the chase needs.

    ``unfold_source_premises`` records which rewrite mode produced the
    result; :meth:`RewriteCache.fetch` refuses to serve a payload whose
    mode differs from the one requested.
    """
    return {
        "version": _FORMAT_VERSION,
        "unfold_source_premises": bool(unfold_source_premises),
        "dependencies": [
            {
                "name": dependency.name,
                "text": serialize_dependency(
                    Dependency(dependency.premise, dependency.disjuncts, "")
                ),
            }
            for dependency in result.dependencies
        ],
        "provenance": {
            name: {"origin": info.origin, "views": list(info.views), "role": info.role}
            for name, info in result.provenance.items()
        },
        "aux_arities": dict(result.aux_arities),
    }


def decode_rewrite(payload: dict, scenario: MappingScenario) -> RewriteResult:
    """Rebuild a :class:`RewriteResult` for ``scenario`` from a payload."""
    dependencies = []
    for item in payload["dependencies"]:
        parsed = parse_dependency(item["text"])
        dependencies.append(
            Dependency(parsed.premise, parsed.disjuncts, item["name"])
        )
    provenance = {
        name: Provenance(
            origin=info["origin"],
            views=tuple(info["views"]),
            role=info["role"],
        )
        for name, info in payload["provenance"].items()
    }
    aux_arities = {name: int(arity) for name, arity in payload["aux_arities"].items()}
    return RewriteResult(scenario, dependencies, provenance, aux_arities)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters; one instance per :class:`RewriteCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "hit_rate": self.hit_rate,
        }


class RewriteCache:
    """LRU of rewrite payloads keyed by scenario fingerprint.

    ``directory`` enables the on-disk tier: entries are spilled to
    ``<directory>/<fingerprint>.json`` on :meth:`put` and looked up
    there on memory misses.  Writes go through a temporary file and
    ``os.replace``, so concurrent workers never observe a torn entry.
    """

    def __init__(
        self,
        capacity: int = 256,
        directory: Optional[os.PathLike] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        # Whether the most recent get() was served by the disk tier —
        # _miss() needs it to roll back the right counters when the
        # payload turns out to be unusable.
        self._last_get_from_disk = False

    # -- raw payload access -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries or self._disk_path_if_present(
            fingerprint
        ) is not None

    def _disk_path_if_present(self, fingerprint: str) -> Optional[Path]:
        if self.directory is None:
            return None
        path = self.directory / f"{fingerprint}.json"
        return path if path.exists() else None

    def get(self, fingerprint: str) -> Optional[dict]:
        """The cached payload, or ``None`` (counts a hit or a miss)."""
        self._last_get_from_disk = False
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self._entries.move_to_end(fingerprint)
            self.stats.hits += 1
            return entry
        path = self._disk_path_if_present(fingerprint)
        if path is not None:
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                entry = None
        if entry is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._last_get_from_disk = True
            self._store_memory(fingerprint, entry)
            return entry
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, payload: dict) -> None:
        self.stats.puts += 1
        self._store_memory(fingerprint, payload)
        if self.directory is not None:
            self._write_disk(fingerprint, payload)

    def _store_memory(self, fingerprint: str, payload: dict) -> None:
        self._entries[fingerprint] = payload
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _write_disk(self, fingerprint: str, payload: dict) -> None:
        assert self.directory is not None
        final = self.directory / f"{fingerprint}.json"
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.directory), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream)
            os.replace(temp_name, final)
        except OSError:
            try:
                os.unlink(temp_name)
            except OSError:
                pass

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries survive)."""
        self._entries.clear()

    # -- the convenient front door ------------------------------------------

    def fetch(
        self,
        scenario: MappingScenario,
        fingerprint: Optional[str] = None,
        unfold_source_premises: bool = False,
    ) -> Tuple[Optional[RewriteResult], str]:
        """Look up the rewriting of ``scenario``; returns (result|None, fp).

        A payload from a different format version, produced with a
        different ``unfold_source_premises`` mode, or that fails to
        decode (e.g. a corrupted or hand-edited disk entry) is treated
        as a miss — the caller recomputes — never as a task error.
        """
        fingerprint = fingerprint or fingerprint_scenario(scenario)
        payload = self.get(fingerprint)
        if payload is None:
            return None, fingerprint
        if (
            isinstance(payload, dict)
            and payload.get("version") == _FORMAT_VERSION
            and bool(payload.get("unfold_source_premises", False))
            == bool(unfold_source_premises)
        ):
            try:
                return decode_rewrite(payload, scenario), fingerprint
            except Exception:
                # Corrupted/hand-edited entry: forget it so the slot can
                # be refilled with a good rewriting.
                self._entries.pop(fingerprint, None)
        return self._miss(fingerprint)

    def _miss(self, fingerprint: str) -> Tuple[None, str]:
        """Reclassify an unusable lookup (already counted a hit).

        When the unusable payload came from the disk tier, the disk-hit
        count is rolled back too — otherwise ``disk_hits`` could exceed
        ``hits`` and corrupt derived hit-rate metrics.
        """
        self.stats.hits -= 1
        self.stats.misses += 1
        if self._last_get_from_disk:
            self.stats.disk_hits -= 1
            self._last_get_from_disk = False
        return None, fingerprint

    def store(
        self,
        fingerprint: str,
        result: RewriteResult,
        unfold_source_premises: bool = False,
    ) -> None:
        self.put(fingerprint, encode_rewrite(result, unfold_source_premises))
