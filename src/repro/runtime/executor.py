"""Batch executor: a corpus through the full pipeline, optionally pooled.

Work is described by :class:`~repro.runtime.corpus.ScenarioSpec`s, so a
pooled run ships only (family, params) tuples to its workers; each
worker rebuilds scenarios locally (the generators are seeded, hence
deterministic) and keeps a worker-local
:class:`~repro.runtime.cache.RewriteCache`.  Pointing the options at a
``cache_dir`` makes that cache disk-backed and therefore *shared*: any
worker's rewriting becomes every other worker's hit, and a repeat run
over the same corpus re-executes zero rewrites.

Robustness over raw speed:

* per-task timeouts via ``SIGALRM`` (skipped on platforms without it),
  recorded as ``timeout`` task records instead of killing the run;
* a task that raises records ``error`` with the exception text;
* if the worker pool cannot be created — or dies mid-run — the executor
  degrades gracefully to serial execution and notes why.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.chase.engine import ChaseConfig
from repro.chase.parallel import compose_parallelism
from repro.core.rewriter import rewrite
from repro.obs.recorder import NULL_RECORDER, FlightRecorder
from repro.pipeline import run_rewritten
from repro.runtime.cache import CacheStats, RewriteCache
from repro.runtime.corpus import Corpus, ScenarioSpec
from repro.runtime.fingerprint import fingerprint_scenario, fingerprint_task
from repro.runtime.results import (
    STATUS_ERROR,
    STATUS_TIMEOUT,
    BatchSummary,
    TaskRecord,
    summarize,
)

__all__ = ["BatchOptions", "BatchReport", "run_batch"]


@dataclass(frozen=True)
class BatchOptions:
    """Knobs for one batch run (picklable: it travels to pool workers)."""

    jobs: int = 1
    """Worker processes; 1 means serial in-process execution."""
    parallelism: str = "serial"
    """Requested *intra-chase* sharding per task (``serial``,
    ``thread[:N]``, ``process[:N]``).  :func:`run_batch` caps it against
    the shared CPU budget — ``jobs × branch workers × chase workers ≤
    os.cpu_count()`` — so scenario-level, branch-race and intra-chase
    parallelism never oversubscribe."""
    branch_parallelism: str = "serial"
    """Requested branch racing of each task's disjunctive search
    (``serial``, ``thread[:N]``, ``process[:N]``).  Shares the same CPU
    budget as ``jobs`` and ``parallelism``; branch workers take the
    per-job share first, chase shards divide the remainder."""
    timeout: Optional[float] = None
    """Per-task wall-clock budget in seconds (needs ``SIGALRM``)."""
    verify: bool = True
    max_scenarios: int = 256
    """Greedy ded-chase budget, as in :func:`repro.pipeline.run_scenario`."""
    use_cache: bool = True
    cache_dir: Optional[str] = None
    """Disk tier for the rewrite cache; required for cross-process sharing
    and for warm-cache behaviour across runs."""
    cache_capacity: int = 512
    trace: bool = False
    """Run every task under a flight recorder: each
    :class:`~repro.runtime.results.TaskRecord` then carries the full
    span/metric payload (``record.trace``) and its counter snapshot
    (``record.metrics``).  Payloads travel back from pool workers with
    the records, so ``grom batch --trace`` merges them into one file."""


@dataclass
class BatchReport:
    """Everything one batch run produced."""

    corpus: str
    records: List[TaskRecord]
    wall_seconds: float
    mode: str
    """``serial`` or ``pool``; serial runs note a degradation reason."""
    jobs: int
    note: str = ""
    parallelism: str = "serial"
    """Effective intra-chase sharding after the shared worker budget."""
    branch_parallelism: str = "serial"
    """Effective branch-race fan-out after the shared worker budget."""
    cache_stats: Optional[CacheStats] = None
    """Parent-process cache counters (serial runs only; pooled workers
    keep their own — use the per-record ``cache_hit`` flags, which are
    authoritative in both modes)."""

    @property
    def summary(self) -> BatchSummary:
        return summarize(
            self.records,
            wall_seconds=self.wall_seconds,
            parallelism=self.parallelism,
            branch_parallelism=self.branch_parallelism,
        )


class _TaskTimeout(Exception):
    pass


class _PoolUnavailable(Exception):
    pass


@contextmanager
def _alarm(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`_TaskTimeout` after ``seconds`` of wall clock.

    A no-op when no budget is set, off the main thread, or on platforms
    without ``SIGALRM``/``setitimer`` (Windows) — timeouts are then
    simply not enforced rather than refusing to run.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _handler(_signum, _frame):
        raise _TaskTimeout()

    previous = signal.signal(signal.SIGALRM, _handler)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


# ---------------------------------------------------------------------------
# Task execution (shared by the serial path and pool workers)
# ---------------------------------------------------------------------------


def _execute(
    corpus_name: str,
    index: int,
    spec: ScenarioSpec,
    options: BatchOptions,
    cache: Optional[RewriteCache],
) -> TaskRecord:
    record = TaskRecord(
        corpus=corpus_name,
        index=index,
        label=spec.label,
        family=spec.family,
        params=spec.params_dict(),
        parallelism=options.parallelism,
        branch_parallelism=options.branch_parallelism,
    )
    chase_config = (
        ChaseConfig(
            parallelism=options.parallelism,
            branch_parallelism=options.branch_parallelism,
        )
        if options.parallelism != "serial"
        or options.branch_parallelism != "serial"
        else None
    )
    recorder = FlightRecorder() if options.trace else NULL_RECORDER
    start = time.perf_counter()
    try:
        with _alarm(options.timeout), recorder.span(
            "task", label=spec.label, family=spec.family, index=index
        ):
            with recorder.span("build"):
                built = spec.build()
            scenario, instance = built.scenario, built.instance
            record.build_seconds = time.perf_counter() - start
            record.source_facts = len(instance)
            fingerprint = fingerprint_scenario(scenario)
            record.fingerprint = fingerprint
            record.task_fingerprint = fingerprint_task(
                scenario,
                instance,
                scenario_fingerprint=fingerprint,
                verify=options.verify,
                max_scenarios=options.max_scenarios,
            )

            step = time.perf_counter()
            with recorder.span("rewrite") as rewrite_span:
                rewritten = None
                if cache is not None:
                    rewritten, _ = cache.fetch(scenario, fingerprint)
                    record.cache_hit = rewritten is not None
                if rewritten is None:
                    rewritten = rewrite(scenario)
                    if cache is not None:
                        cache.store(fingerprint, rewritten)
                if recorder.enabled:
                    rewrite_span.annotate(cached=record.cache_hit)
                    recorder.count("cache.lookups")
                    if record.cache_hit:
                        recorder.count("cache.hits")
            record.rewrite_seconds = time.perf_counter() - step
            record.dependencies = len(rewritten.dependencies)
            record.deds = sum(1 for d in rewritten.dependencies if d.is_ded())

            step = time.perf_counter()
            # run_rewritten materializes the source-side semantic
            # database once and shares it between the chase input and
            # the soundness verifier, so a verified task pays one
            # materialization, not two (and the greedy ded sweep's k
            # derived scenarios all chase over that same instance).
            outcome = run_rewritten(
                scenario,
                rewritten,
                instance,
                verify=options.verify,
                config=chase_config,
                max_scenarios=options.max_scenarios,
                recorder=recorder if recorder.enabled else None,
            )
            record.chase_seconds = time.perf_counter() - step
            record.status = str(outcome.chase.status)
            record.ok = outcome.ok
            record.verified = (
                outcome.verification.ok if outcome.verification is not None else None
            )
            record.target_facts = len(outcome.target)
            record.rounds = outcome.chase.stats.rounds
            record.scenarios_tried = outcome.chase.scenarios_tried
            record.nulls_created = outcome.chase.stats.nulls_created
            record.branch_timings = outcome.chase.branch_timings
            record.guards = outcome.chase.guards
            if outcome.analysis is not None:
                analysis = outcome.analysis
                record.termination_class = str(
                    analysis.termination.classification
                )
                record.proven_terminating = analysis.termination.proven
                record.dead_dependencies = len(
                    analysis.firing.dead_dependencies
                )
                record.strata = len(analysis.firing.strata)
                counters = analysis.counters()
                record.analysis_errors = counters["analysis.diagnostics.error"]
                record.analysis_warnings = counters[
                    "analysis.diagnostics.warning"
                ]
    except _TaskTimeout:
        record.status = STATUS_TIMEOUT
        record.error = f"timed out after {options.timeout:g}s"
    except Exception as exc:  # a bad spec must not sink the batch
        record.status = STATUS_ERROR
        record.error = f"{type(exc).__name__}: {exc}"
    record.total_seconds = time.perf_counter() - start
    if recorder.enabled:
        payload = recorder.to_payload()
        record.trace = payload
        # Counters plus gauges (e.g. ``instance.intern_size``): the
        # names are disjoint, so one flat dict serves batch summaries.
        record.metrics = dict(payload["metrics"].get("counters", {}))
        record.metrics.update(payload["metrics"].get("gauges", {}))
    return record


# ---------------------------------------------------------------------------
# Pool plumbing
# ---------------------------------------------------------------------------

_worker_state: dict = {}


def _init_worker(options: BatchOptions) -> None:
    _worker_state["options"] = options
    _worker_state["cache"] = (
        RewriteCache(capacity=options.cache_capacity, directory=options.cache_dir)
        if options.use_cache
        else None
    )


def _run_task(task: Tuple[str, int, ScenarioSpec]) -> TaskRecord:
    corpus_name, index, spec = task
    return _execute(
        corpus_name,
        index,
        spec,
        _worker_state["options"],
        _worker_state["cache"],
    )


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    # fork skips re-importing the package per worker; spawn is the
    # portable fallback.
    method = "fork" if "fork" in methods else methods[0]
    return multiprocessing.get_context(method)


def _run_pool(
    corpus_name: str,
    specs: Sequence[ScenarioSpec],
    options: BatchOptions,
    jobs: int,
) -> List[TaskRecord]:
    tasks = [(corpus_name, index, spec) for index, spec in enumerate(specs)]
    try:
        context = _pool_context()
        pool = context.Pool(
            processes=jobs, initializer=_init_worker, initargs=(options,)
        )
    except (OSError, ValueError, AttributeError) as exc:
        raise _PoolUnavailable(f"worker pool unavailable: {exc}") from exc
    try:
        with pool:
            # chunksize 1: specs have wildly different costs, so greedy
            # load balancing beats amortized dispatch.
            return pool.map(_run_task, tasks, chunksize=1)
    except _PoolUnavailable:
        raise
    except Exception as exc:  # e.g. a worker died mid-run
        raise _PoolUnavailable(f"worker pool failed: {exc}") from exc
    finally:
        pool.join()


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_batch(
    corpus: Corpus,
    options: Optional[BatchOptions] = None,
    cache: Optional[RewriteCache] = None,
) -> BatchReport:
    """Run every spec of ``corpus`` through the pipeline.

    ``options.jobs > 1`` uses a worker pool; pool creation or mid-run
    failure degrades to serial execution (the report's ``note`` says
    why).  A ``cache`` instance is honoured on the serial path; pooled
    workers construct their own from ``options`` (share state by setting
    ``options.cache_dir``).
    """
    options = options or BatchOptions()
    specs = list(corpus)
    jobs = max(1, int(options.jobs))
    cpu_count = os.cpu_count() or 1

    note = ""
    records: Optional[List[TaskRecord]] = None
    start = time.perf_counter()
    mode = "serial"
    parallelism = "serial"
    branch_parallelism = "serial"
    if jobs > 1 and len(specs) > 1:
        # Shared pool budget: every concurrent task's branch racers and
        # chase shards come out of the same cpu_count, so jobs × branch
        # workers × chase workers never oversubscribes the machine.
        branch_parallelism, parallelism = compose_parallelism(
            jobs, options.branch_parallelism, options.parallelism, cpu_count
        )
        degraded = []
        if branch_parallelism.startswith("process"):
            branch_parallelism = (
                "thread" + branch_parallelism[len("process"):]
            )
            degraded.append("branch racing")
        if parallelism.startswith("process"):
            parallelism = "thread" + parallelism[len("process"):]
            degraded.append("intra-chase sharding")
        if degraded:
            # Pool workers are daemonic and may not fork; say so up
            # front instead of silently degrading per task.
            note = (
                f"pool workers cannot fork; {' and '.join(degraded)} "
                f"use threads"
            )
        pooled_options = replace(
            options,
            parallelism=parallelism,
            branch_parallelism=branch_parallelism,
        )
        try:
            records = _run_pool(corpus.name, specs, pooled_options, jobs)
            mode = "pool"
        except _PoolUnavailable as exc:
            note = f"{exc}; degraded to serial"
            records = None
    if records is None:
        branch_parallelism, parallelism = compose_parallelism(
            1, options.branch_parallelism, options.parallelism, cpu_count
        )
        serial_options = replace(
            options,
            parallelism=parallelism,
            branch_parallelism=branch_parallelism,
        )
        if cache is None and options.use_cache:
            cache = RewriteCache(
                capacity=options.cache_capacity, directory=options.cache_dir
            )
        elif not options.use_cache:
            cache = None
        records = [
            _execute(corpus.name, index, spec, serial_options, cache)
            for index, spec in enumerate(specs)
        ]
        jobs_used = 1
    else:
        jobs_used = jobs
    wall = time.perf_counter() - start

    return BatchReport(
        corpus=corpus.name,
        records=records,
        wall_seconds=wall,
        mode=mode,
        jobs=jobs_used,
        note=note,
        parallelism=parallelism,
        branch_parallelism=branch_parallelism,
        cache_stats=cache.stats if cache is not None else None,
    )
