"""Canonical content fingerprints for scenarios and instances.

A fingerprint is a SHA-256 digest of a *canonical form* built from the
DSL serializer: every schema relation, view rule, mapping, constraint
and fact is rendered to its one-line DSL text, the lines of each section
are sorted, and the sections are hashed as a JSON document with sorted
keys.  Two scenarios that differ only in declaration order therefore
fingerprint identically, and — because the parser round-trips the
serializer — ``parse(serialize(s))`` fingerprints identically to ``s``.

The fingerprint deliberately ignores :attr:`MappingScenario.name`: it is
display metadata the DSL does not even carry, and content addressing
must identify identical *work*, not identical labels.

Limitations (inherited from the DSL): functional-dependency metadata on
relations has no DSL syntax and does not contribute, and labeled nulls
in instances are rendered by their label (instances fed to the pipeline
are null-free anyway).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.dsl.serializer import (
    serialize_dependency,
    serialize_relation,
    serialize_rule,
)
from repro.logic.atoms import Atom
from repro.logic.terms import Null
from repro.relational.instance import Instance
from repro.relational.schema import Schema

__all__ = [
    "canonical_scenario",
    "canonical_instance",
    "fingerprint_scenario",
    "fingerprint_instance",
    "fingerprint_task",
]


def _digest(payload: object) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _schema_lines(schema: Schema) -> List[str]:
    lines = [serialize_relation(relation) for relation in schema]
    lines.sort()
    return [f"schema {schema.name}"] + lines


def _view_lines(program: Optional[ViewProgram]) -> List[str]:
    if program is None:
        return []
    return sorted(serialize_rule(rule) for rule in program)


def _fact_line(fact: Atom) -> str:
    # serialize_fact raises on labeled nulls (they have no DSL syntax);
    # fingerprints must accept any instance, so nulls render by label.
    def term(t) -> str:
        if isinstance(t, Null):
            return f"?{t}"
        value = t.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            return json.dumps(value)
        return str(value)

    return f"{fact.relation}({','.join(term(t) for t in fact.terms)})"


def canonical_scenario(scenario: MappingScenario) -> Dict[str, List[str]]:
    """The order-insensitive canonical form the fingerprint hashes."""
    return {
        "source_schema": _schema_lines(scenario.source_schema),
        "target_schema": _schema_lines(scenario.target_schema),
        "source_views": _view_lines(scenario.source_views),
        "target_views": _view_lines(scenario.target_views),
        "mappings": sorted(
            serialize_dependency(m) for m in scenario.mappings
        ),
        "constraints": sorted(
            serialize_dependency(c) for c in scenario.target_constraints
        ),
    }


def canonical_instance(instance: Instance) -> List[str]:
    """Sorted fact lines — insertion order never matters."""
    return sorted(_fact_line(fact) for fact in instance)


def fingerprint_scenario(scenario: MappingScenario) -> str:
    """Content address of a scenario (hex SHA-256)."""
    return _digest(canonical_scenario(scenario))


def fingerprint_instance(instance: Instance) -> str:
    """Content address of an instance (hex SHA-256)."""
    return _digest(canonical_instance(instance))


def fingerprint_task(
    scenario: MappingScenario,
    instance: Optional[Instance] = None,
    scenario_fingerprint: Optional[str] = None,
    **params: object,
) -> str:
    """Content address of one unit of batch work.

    Combines the scenario, the (optional) source instance and any
    pipeline parameters that change the output (e.g.
    ``unfold_source_premises``), so records keyed by it are comparable
    across runs.  Pass ``scenario_fingerprint`` when the caller already
    computed it (the executor does) to avoid re-canonicalizing.
    """
    payload = {
        "scenario": scenario_fingerprint or fingerprint_scenario(scenario),
        "instance": fingerprint_instance(instance) if instance is not None else "",
        "params": {k: params[k] for k in sorted(params)},
    }
    return _digest(payload)
