"""Batch runtime: the scale-out substrate over the single-scenario pipeline.

The paper's pitch is that rewriting makes executing *many* semantic
mapping scenarios cheap; this package supplies the machinery to actually
run many of them:

* :mod:`repro.runtime.fingerprint` — canonical, order-insensitive
  content fingerprints of scenarios and instances (via the DSL
  serializer), so identical work is recognized across runs;
* :mod:`repro.runtime.cache` — a content-addressed rewrite cache
  (in-memory LRU + optional on-disk JSON backend) keyed by those
  fingerprints;
* :mod:`repro.runtime.corpus` — named, reproducible workloads
  enumerating the parameterized scenario families;
* :mod:`repro.runtime.executor` — a batch executor with a
  ``multiprocessing`` worker pool, per-task timeouts and graceful
  degradation to serial execution;
* :mod:`repro.runtime.results` — JSONL task records and aggregate
  summaries consumed by :mod:`repro.reporting`.
"""

from repro.runtime.cache import CacheStats, RewriteCache, decode_rewrite, encode_rewrite
from repro.runtime.corpus import Corpus, ScenarioSpec, corpus_names, get_corpus
from repro.runtime.executor import BatchOptions, BatchReport, run_batch
from repro.runtime.fingerprint import (
    fingerprint_instance,
    fingerprint_scenario,
    fingerprint_task,
)
from repro.runtime.results import (
    BatchSummary,
    TaskRecord,
    read_jsonl,
    summarize,
    write_jsonl,
)

__all__ = [
    "fingerprint_scenario",
    "fingerprint_instance",
    "fingerprint_task",
    "RewriteCache",
    "CacheStats",
    "encode_rewrite",
    "decode_rewrite",
    "Corpus",
    "ScenarioSpec",
    "get_corpus",
    "corpus_names",
    "BatchOptions",
    "BatchReport",
    "run_batch",
    "TaskRecord",
    "BatchSummary",
    "write_jsonl",
    "read_jsonl",
    "summarize",
]
