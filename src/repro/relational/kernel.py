"""The columnar instance kernel: interned terms over struct-of-arrays rows.

The set-based :class:`~repro.relational.instance.Instance` stores one
``Atom`` object per fact; every join probe hashes tuples of term
objects, and the parallel chase pickles those objects across the worker
pipe.  This module is the columnar replacement the ROADMAP's top item
asked for:

:class:`TermPool`
    A process-wide interning pool mapping constants to dense positive
    integer ids.  Labeled nulls do not intern at all — a null encodes as
    ``-(id + 1)``, so its code *carries* the numeric component of the
    engine's canonical ``_term_order`` and fresh chase nulls never touch
    the pool's dict.  The pool precomputes each constant's order key
    (``(0, 0, repr(term))``) at intern time, so sorting encoded rows
    reproduces the engine's canonical enforcement order exactly.  The
    pool is append-only: forked chase replicas inherit it copy-on-write,
    and the parent ships ``entries_since`` deltas if it ever grows
    mid-run (see :meth:`TermPool.adopt_entries`).

:class:`ColumnarInstance`
    Facts as struct-of-arrays ``array('q')`` columns per relation, with
    a row-dedup dict (encoded row tuple -> row id), per-generation row
    logs (the encoded ``facts_since`` window), incrementally maintained
    encoded hash indexes, and O(rows) bulk null replacement.  It speaks
    the full Atom-level :class:`Instance` surface (decode at the edges),
    plus the encoded fast path the compiled query plans and the chase
    engine ride: ``add_encoded`` / ``encoded_index`` / ``columns`` /
    ``rows_since``.

The class is deliberately *not* an ``Instance`` subclass: the two are
independent kernels behind one duck-typed surface, and
``Instance.__eq__`` returns ``NotImplemented`` for non-instances so
cross-kernel equality lands in :meth:`ColumnarInstance.__eq__` (which
decodes and compares fact sets) — the differential suites rely on it.
"""

from __future__ import annotations

import threading
from array import array
from bisect import bisect_left, bisect_right, insort
from collections import defaultdict
from operator import itemgetter
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SchemaError
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null, Term
from repro.relational.instance import ProbeView
from repro.relational.types import term_order_key

__all__ = [
    "TermPool",
    "ColumnarInstance",
    "RowMask",
    "global_pool",
    "encode_null",
    "null_id_of",
]

_IndexKey = Tuple[str, Tuple[int, ...]]


def encode_null(null_id: int) -> int:
    """A null's code: ``-(id + 1)`` so even ``Null(0)`` stays negative."""
    return -(null_id + 1)


def null_id_of(code: int) -> int:
    """Inverse of :func:`encode_null` (``code`` must be negative)."""
    return -code - 1


class TermPool:
    """Append-only interning pool: constants <-> dense positive int ids.

    Code 0 is never issued; constants get codes ``1..n`` in intern
    order, nulls encode arithmetically (negative) without touching the
    pool.  Interning is thread-safe; decode/order-key reads are
    lock-free (entries are published before their id is).
    """

    __slots__ = ("_lock", "_ids", "_terms", "_orders")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids: Dict[Constant, int] = {}
        # Slot 0 is a sentinel so code == list index.
        self._terms: List[Optional[Term]] = [None]
        self._orders: List[Optional[Tuple[int, int, str]]] = [None]

    def __len__(self) -> int:
        """Interned constants (the ``instance.intern_size`` gauge)."""
        return len(self._terms) - 1

    def encode(self, term: Term) -> int:
        """Intern (or look up) a ground term; returns its code."""
        if isinstance(term, Null):
            return -(term.id + 1)
        code = self._ids.get(term)
        if code is not None:
            return code
        with self._lock:
            code = self._ids.get(term)
            if code is None:
                code = len(self._terms)
                self._terms.append(term)
                self._orders.append(term_order_key(term))
                # Publish the id last: lock-free readers that obtain a
                # code always find its entry populated.
                self._ids[term] = code
        return code

    def try_encode(self, term: Term) -> Optional[int]:
        """The code of a term *without* interning; None when unknown.

        Membership probes use this so looking up an absent fact never
        grows the pool (important for forked replicas, whose pools must
        only grow through shipped deltas).
        """
        if isinstance(term, Null):
            return -(term.id + 1)
        return self._ids.get(term)

    def decode(self, code: int) -> Term:
        """The term behind a code (nulls decode hint-less; instances
        overlay their per-run hints — see
        :meth:`ColumnarInstance.decode_term`)."""
        if code < 0:
            return Null(-code - 1)
        return self._terms[code]  # type: ignore[return-value]

    def order_key(self, code: int) -> Tuple[int, int, str]:
        """The canonical ``_term_order`` key of an encoded term."""
        if code < 0:
            return (1, -code - 1, "")
        return self._orders[code]  # type: ignore[return-value]

    # -- snapshot / delta shipping (forked replicas) -----------------------

    @property
    def snapshot_mark(self) -> int:
        """Current length, as a mark for :meth:`entries_since`."""
        return len(self._terms)

    def entries_since(self, mark: int) -> List[Term]:
        """Constants interned since ``mark`` (parent -> replica delta)."""
        return list(self._terms[mark:])  # type: ignore[arg-type]

    def adopt_entries(self, mark: int, terms: Sequence[Term]) -> None:
        """Append a parent's pool delta; ids must line up exactly.

        A replica that interned anything on its own has diverged from
        the parent's id space and can no longer ship compatible encoded
        rows — that is a hard error, not a merge.
        """
        with self._lock:
            if len(self._terms) != mark:
                raise RuntimeError(
                    f"intern pool diverged: expected {mark} entries, "
                    f"have {len(self._terms)}"
                )
            for term in terms:
                code = len(self._terms)
                self._terms.append(term)
                self._orders.append(term_order_key(term))
                self._ids[term] = code  # type: ignore[index]


_GLOBAL_POOL = TermPool()


def global_pool() -> TermPool:
    """The process-wide pool every :class:`ColumnarInstance` defaults to.

    One shared id space is what lets plans, instances and forked chase
    replicas exchange encoded rows without translation."""
    return _GLOBAL_POOL


class RowMask:
    """A delta window over row ids, shaped for *block* restriction.

    The innermost operation of an anchored delta probe is restricting an
    index bucket (a sorted list of row ids) to the round's delta window.
    Doing that per row (``[r for r in bucket if r in delta]``) allocates
    a fresh list per probe key even when the window covers the whole
    bucket — the e2 hot path, where a delta round probes exactly the
    rows it just inserted.  A mask precomputes the window's span and
    contiguity once per probe plan so each bucket restriction is:

    * the **bucket itself** (no copy, no scan) when a contiguous window
      covers it entirely;
    * a single **bisect slice** when a contiguous window covers part of
      it (fresh rows are appended in row-id order, so a generation
      window without resurrections is always one integer range);
    * one span-bounded membership pass for sparse windows (resurrected
      rows, hash-partitioned shard chunks).

    Requires the sorted-bucket invariant :meth:`ColumnarInstance.
    encoded_index` maintains.  Masks iterate and size like the row-id
    set they wrap, so sharders can partition them unchanged.
    """

    __slots__ = ("lo", "hi", "contiguous", "_members")

    def __init__(self, row_ids) -> None:
        members = row_ids if isinstance(row_ids, (set, frozenset)) else set(row_ids)
        self._members = members
        if not members:
            self.lo, self.hi = 0, -1
            self.contiguous = True
            return
        self.lo = min(members)
        self.hi = max(members)
        self.contiguous = (self.hi - self.lo + 1) == len(members)

    def __contains__(self, row_id: int) -> bool:
        return row_id in self._members

    def __iter__(self) -> Iterator[int]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def restrict(self, bucket: Sequence[int]) -> Sequence[int]:
        """The sub-sequence of a sorted ``bucket`` inside the window.

        Returns ``bucket`` itself (same object — callers must not
        mutate) when the window covers it entirely, an empty tuple when
        they are disjoint, and a fresh list otherwise.
        """
        if not bucket:
            return ()
        lo, hi = self.lo, self.hi
        if bucket[-1] < lo or bucket[0] > hi:
            return ()
        start = bisect_left(bucket, lo) if bucket[0] < lo else 0
        stop = bisect_right(bucket, hi) if bucket[-1] > hi else len(bucket)
        if self.contiguous:
            if start == 0 and stop == len(bucket):
                return bucket
            return bucket[start:stop] if stop > start else ()
        members = self._members
        window = bucket if start == 0 and stop == len(bucket) else bucket[start:stop]
        filtered = [r for r in window if r in members]
        if len(filtered) == len(bucket):
            return bucket
        return filtered


class _KernelStats:
    """Mutable per-instance kernel counters (flight-recorder harvest).

    ``probe_rows`` counts candidate rows a join probe touched (index
    bucket survivors of the delta restriction); ``probe_survivors``
    counts the rows that passed the step's equality checks and
    comparison filters and were actually materialized downstream.  The
    two diverge on self-joins and filtered probes — splitting them is
    what lets ``grom profile`` show probe selectivity honestly.
    """

    __slots__ = ("encoded_appends", "probe_rows", "probe_survivors")

    def __init__(self) -> None:
        self.encoded_appends = 0
        self.probe_rows = 0
        self.probe_survivors = 0


class _Table:
    """One relation's struct-of-arrays storage."""

    __slots__ = ("arity", "columns", "generations", "row_ids", "live_count")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.columns: List[array] = [array("q") for _ in range(arity)]
        #: Insertion generation per row; -1 marks a tombstoned row.
        self.generations: array = array("q")
        #: Encoded row tuple -> row id (kept for dead rows too, so a
        #: re-add resurrects the existing row id).
        self.row_ids: Dict[Tuple[int, ...], int] = {}
        self.live_count = 0

    def row_values(self, row_id: int) -> Tuple[int, ...]:
        return tuple(column[row_id] for column in self.columns)

    def copy(self) -> "_Table":
        clone = _Table.__new__(_Table)
        clone.arity = self.arity
        clone.columns = [array("q", column) for column in self.columns]
        clone.generations = array("q", self.generations)
        clone.row_ids = dict(self.row_ids)
        clone.live_count = self.live_count
        return clone


class ColumnarInstance:
    """A fact store with the :class:`Instance` surface over int columns.

    Terms encode through a shared :class:`TermPool`; rows are tuples of
    codes.  Mutations mirror ``Instance`` operation for operation —
    generation bookkeeping, insertion logs, index invalidation and the
    null-map collapse rules are bit-compatible, which the differential
    suites assert corpus-wide.
    """

    #: Class tag mirroring ``ChaseConfig.kernel`` values.
    kernel_name = "columnar"

    def __init__(self, schema=None, pool: Optional[TermPool] = None) -> None:
        self.schema = schema
        self.pool = pool if pool is not None else _GLOBAL_POOL
        self._tables: Dict[str, _Table] = {}
        self._current_generation = 0
        # generation -> [(relation, row id)]; entries go stale when a
        # row dies or changes generation — readers filter through the
        # row's generation, exactly like Instance._insertion_log.
        self._insertion_log: Dict[int, List[Tuple[str, int]]] = defaultdict(list)
        #: The current generation's log list, cached so the append hot
        #: path skips a dict probe; rebound on every generation change.
        self._log_tail: List[Tuple[str, int]] = self._insertion_log[0]
        self._version = 0
        self._relation_versions: Dict[str, int] = defaultdict(int)
        # Encoded hash indexes: (relation, positions) -> key -> [row id].
        self._indexes: Dict[_IndexKey, Dict[Tuple[int, ...], List[int]]] = {}
        self._index_versions: Dict[_IndexKey, int] = {}
        self._live_index_keys: Dict[str, List[_IndexKey]] = {}
        self._key_count_cache: Dict[_IndexKey, Tuple[int, int]] = {}
        # Atom-level indexes (reference evaluator over this kernel);
        # rebuilt lazily, never maintained incrementally — off hot path.
        self._atom_indexes: Dict[_IndexKey, Dict[Tuple[Term, ...], List[Atom]]] = {}
        self._atom_index_versions: Dict[_IndexKey, int] = {}
        self._index_lock = threading.Lock()
        #: Null id -> hint for this instance's nulls (hints are per-run
        #: presentation state, so they live here and not in the pool).
        self._null_hints: Dict[int, str] = {}
        self.index_builds = 0
        self.kernel_stats = _KernelStats()

    # -- pickling (decode, ship values, re-intern on arrival) --------------

    def __getstate__(self):
        """Portable state: decoded rows, not pool-relative codes.

        Encoded codes are only meaningful against the originating
        process's pool, so crossing a pickle boundary (spawned workers,
        result shipping) serializes decoded term rows and re-interns
        against the local pool on arrival.
        """
        tables = {}
        for relation, table in self._tables.items():
            rows = []
            for row_id in range(len(table.generations)):
                generation = table.generations[row_id]
                if generation < 0:
                    continue
                rows.append(
                    (
                        tuple(
                            self.decode_term(column[row_id])
                            for column in table.columns
                        ),
                        generation,
                    )
                )
            tables[relation] = (table.arity, rows)
        return {
            "schema": self.schema,
            "current_generation": self._current_generation,
            "version": self._version,
            "null_hints": dict(self._null_hints),
            "tables": tables,
        }

    def __setstate__(self, state) -> None:
        self.__init__(state["schema"])
        self._null_hints = dict(state["null_hints"])
        encode = self.pool.encode
        for relation, (arity, rows) in state["tables"].items():
            table = self._table(relation, arity)
            for terms, generation in rows:
                row = tuple(encode(term) for term in terms)
                row_id = len(table.generations)
                for column, code in zip(table.columns, row):
                    column.append(code)
                table.generations.append(generation)
                table.row_ids[row] = row_id
                table.live_count += 1
                self._insertion_log[generation].append((relation, row_id))
        self._current_generation = state["current_generation"]
        self._log_tail = self._insertion_log[self._current_generation]
        self._version = state["version"]

    # -- encode / decode edges ---------------------------------------------

    def encode_term(self, term: Term) -> int:
        """Intern a term, recording a null's hint on this instance."""
        if isinstance(term, Null):
            if term.hint and term.id not in self._null_hints:
                self._null_hints[term.id] = term.hint
            return -(term.id + 1)
        return self.pool.encode(term)

    def decode_term(self, code: int) -> Term:
        """Decode a code, overlaying this instance's null hints."""
        if code < 0:
            null_id = -code - 1
            return Null(null_id, self._null_hints.get(null_id, ""))
        return self.pool.decode(code)

    def note_null(self, null: Null) -> int:
        """Record a freshly invented null's hint; returns its code."""
        if null.hint and null.id not in self._null_hints:
            self._null_hints[null.id] = null.hint
        return -(null.id + 1)

    def encode_row(self, terms: Sequence[Term]) -> Tuple[int, ...]:
        return tuple(self.encode_term(term) for term in terms)

    def decode_row(self, relation: str, row_id: int) -> Atom:
        table = self._tables[relation]
        return Atom(
            relation,
            tuple(self.decode_term(column[row_id]) for column in table.columns),
        )

    def row_id_of(self, fact: Atom) -> Optional[int]:
        """The live row id holding this fact, or None."""
        found = self._try_row_id(fact)
        return found[1] if found is not None else None

    def _try_row_id(self, fact: Atom) -> Optional[Tuple[_Table, int]]:
        """The live row id of a fact, without interning anything."""
        table = self._tables.get(fact.relation)
        if table is None or table.arity != len(fact.terms):
            return None
        try_encode = self.pool.try_encode
        row: List[int] = []
        for term in fact.terms:
            code = try_encode(term)
            if code is None:
                return None
            row.append(code)
        row_id = table.row_ids.get(tuple(row))
        if row_id is None or table.generations[row_id] < 0:
            return None
        return table, row_id

    # -- mutation ----------------------------------------------------------

    def _table(self, relation: str, arity: int) -> _Table:
        table = self._tables.get(relation)
        if table is None:
            table = _Table(arity)
            self._tables[relation] = table
        elif table.arity != arity:
            raise SchemaError(
                f"relation {relation!r} holds arity-{table.arity} rows; "
                f"cannot add an arity-{arity} row (the columnar kernel "
                f"stores one column layout per relation)"
            )
        return table

    def add_encoded(self, relation: str, row: Tuple[int, ...]) -> bool:
        """Insert an encoded row; returns True when it was new.

        The hot path of the chase's enforce phase: no Atom objects, no
        term hashing — a tuple-of-ints dict probe and O(arity) appends.
        Per-call overhead is pared down deliberately (inlined table
        fetch, one ``setdefault`` probe instead of get-then-set, the
        cached insertion-log tail): the e13 micro-bench pins this path
        to a multiple of the reference kernel's Atom inserts.
        """
        table = self._tables.get(relation)
        if table is None or table.arity != len(row):
            table = self._table(relation, len(row))
        generations = table.generations
        row_id = len(generations)
        found = table.row_ids.setdefault(row, row_id)
        if found != row_id:
            if generations[found] >= 0:
                return False
            # Resurrect a tombstoned row: same id, new generation.
            row_id = found
            generations[row_id] = self._current_generation
        else:
            for column, code in zip(table.columns, row):
                column.append(code)
            generations.append(self._current_generation)
        table.live_count += 1
        self._log_tail.append((relation, row_id))
        self._version += 1
        self._relation_versions[relation] += 1
        live = self._live_index_keys.get(relation)
        if live:
            version = self._relation_versions[relation]
            for key in live:
                index = self._indexes[key]
                index_key = tuple(row[i] for i in key[1])
                bucket = index.get(index_key)
                if bucket is None:
                    index[index_key] = [row_id]
                elif row_id > bucket[-1]:
                    bucket.append(row_id)
                else:
                    # Resurrected rows carry their original (smaller)
                    # id; insort keeps the bucket sorted — RowMask's
                    # bisect-slice restriction depends on it.
                    insort(bucket, row_id)
                self._index_versions[key] = version
        self.kernel_stats.encoded_appends += 1
        return True

    def extend_encoded(
        self, relation: str, rows: Sequence[Tuple[int, ...]]
    ) -> int:
        """Bulk-insert encoded rows; returns how many were new.

        The batch counterpart of :meth:`add_encoded`, and the path every
        bulk movement rides (engine seeding via :meth:`ingest`, forked
        replicas replaying the coordinator's per-round fact events,
        pickle rehydration).  One dedup pass assigns row ids; the
        column stores then fill through C-level ``array.extend`` over
        ``map(itemgetter(i), ...)``, so the per-row interpreter cost is
        one dict probe instead of the whole ``add_encoded`` body.
        """
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        if not rows:
            return 0
        arity = len(rows[0])
        table = self._tables.get(relation)
        if table is None or table.arity != arity:
            table = self._table(relation, arity)
        generations = table.generations
        setdefault = table.row_ids.setdefault
        generation = self._current_generation
        start_id = next_id = len(generations)
        fresh: List[Tuple[int, ...]] = []
        fresh_append = fresh.append
        resurrected: List[int] = []
        for row in rows:
            if len(row) != arity:
                raise SchemaError(
                    f"mixed arities in encoded batch for {relation!r}: "
                    f"expected {arity}, got {len(row)}"
                )
            row_id = setdefault(row, next_id)
            if row_id == next_id:
                fresh_append(row)
                next_id += 1
            elif row_id >= start_id:
                # A duplicate of a row first seen in this very batch —
                # its id exists only in ``fresh`` so far.
                continue
            elif generations[row_id] < 0:
                # Resurrect a tombstoned row: same id, new generation.
                generations[row_id] = generation
                resurrected.append(row_id)
        added = len(fresh) + len(resurrected)
        if not added:
            return 0
        if fresh:
            columns = table.columns
            for position in range(arity):
                columns[position].extend(map(itemgetter(position), fresh))
            generations.extend([generation] * len(fresh))
        table.live_count += added
        log = self._log_tail
        if resurrected:
            log.extend(zip([relation] * len(resurrected), resurrected))
        log.extend(zip([relation] * len(fresh), range(start_id, next_id)))
        self._version += 1
        self._relation_versions[relation] += 1
        live = self._live_index_keys.get(relation)
        if live:
            version = self._relation_versions[relation]
            entries = list(zip(range(start_id, next_id), fresh))
            entries.extend(
                (row_id, table.row_values(row_id)) for row_id in resurrected
            )
            for key in live:
                index = self._indexes[key]
                positions = key[1]
                for row_id, row in entries:
                    index_key = tuple(row[i] for i in positions)
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = [row_id]
                    elif row_id > bucket[-1]:
                        bucket.append(row_id)
                    else:
                        # Resurrections re-enter with their old id —
                        # keep the bucket sorted for RowMask slicing.
                        insort(bucket, row_id)
                self._index_versions[key] = version
        self.kernel_stats.encoded_appends += added
        return added

    def add(self, fact: Atom) -> bool:
        """Insert a fact (Atom surface); returns True when it was new."""
        if not fact.is_ground():
            raise SchemaError(f"cannot insert non-ground atom {fact}")
        if self.schema is not None and fact.relation in self.schema:
            self.schema.relation(fact.relation).check_fact(fact.terms)
        elif self.schema is not None:
            raise SchemaError(
                f"fact {fact} does not belong to schema {self.schema.name!r}"
            )
        return self.add_encoded(fact.relation, self.encode_row(fact.terms))

    def add_all(self, facts: Iterable[Atom]) -> int:
        added = 0
        for fact in facts:
            if self.add(fact):
                added += 1
        return added

    def ingest(self, other: "ColumnarInstance") -> int:
        """Bulk-copy another columnar instance's live rows.

        When both instances speak the same pool the rows move as raw
        code tuples — no decode/re-encode round trip — which is how the
        chase seeds its working instance from a materialized semantic
        database.  Null render hints carry over; a foreign-pool instance
        falls back to the Atom surface.  Returns how many rows were new.
        """
        if other.pool is not self.pool:
            return self.add_all(other)
        self._null_hints.update(other._null_hints)
        added = 0
        row_values = other.row_values
        for relation in other.relations():
            added += self.extend_encoded(
                relation,
                [
                    row_values(relation, row_id)
                    for row_id in other.live_row_ids(relation)
                ],
            )
        return added

    def add_row(self, relation: str, *values) -> bool:
        terms = tuple(
            v if isinstance(v, (Constant, Null)) else Constant(v) for v in values
        )
        return self.add(Atom(relation, terms))

    def remove(self, fact: Atom) -> bool:
        """Delete a fact; returns True when it was present."""
        found = self._try_row_id(fact)
        if found is None:
            return False
        table, row_id = found
        table.generations[row_id] = -1
        table.live_count -= 1
        self._version += 1
        self._relation_versions[fact.relation] += 1
        self._drop_indexes(fact.relation)
        return True

    def _drop_indexes(self, relation: str) -> None:
        for key in self._live_index_keys.pop(relation, ()):
            self._indexes.pop(key, None)
            self._index_versions.pop(key, None)

    def bump_generation(self) -> int:
        self._current_generation += 1
        self._log_tail = self._insertion_log[self._current_generation]
        return self._current_generation

    # -- inspection --------------------------------------------------------

    def relations(self) -> List[str]:
        return [
            name for name, table in self._tables.items() if table.live_count
        ]

    def live_row_ids(self, relation: str) -> List[int]:
        """Row ids of the relation's live rows, in row-id order."""
        table = self._tables.get(relation)
        if table is None:
            return []
        generations = table.generations
        return [i for i in range(len(generations)) if generations[i] >= 0]

    def columns(self, relation: str) -> Sequence[array]:
        table = self._tables.get(relation)
        return table.columns if table is not None else ()

    def row_values(self, relation: str, row_id: int) -> Tuple[int, ...]:
        return self._tables[relation].row_values(row_id)

    def facts(self, relation: str) -> FrozenSet[Atom]:
        table = self._tables.get(relation)
        if table is None:
            return frozenset()
        return frozenset(
            self.decode_row(relation, row_id)
            for row_id in self.live_row_ids(relation)
        )

    def rows_since(
        self, generation: int, relation: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        """(relation, row id) pairs inserted at or after ``generation``.

        The encoded generation window: O(|delta|) over the insertion
        log, filtering stale entries through each row's current
        generation — mirroring ``Instance.facts_since``.
        """
        out: List[Tuple[str, int]] = []
        seen: Set[Tuple[str, int]] = set()
        tables = self._tables
        for gen in range(max(generation, 0), self._current_generation + 1):
            for entry in self._insertion_log.get(gen, ()):
                rel, row_id = entry
                if relation is not None and rel != relation:
                    continue
                if tables[rel].generations[row_id] != gen or entry in seen:
                    continue
                seen.add(entry)
                out.append(entry)
        return out

    def facts_since(
        self, generation: int, relation: Optional[str] = None
    ) -> List[Atom]:
        return [
            self.decode_row(rel, row_id)
            for rel, row_id in self.rows_since(generation, relation)
        ]

    def export_rows(
        self, rows: Iterable[Tuple[str, int]]
    ) -> List[Tuple[str, Tuple[int, ...]]]:
        """(relation, encoded values) for row ids — the match-shipping
        payload forked replicas replay via :meth:`add_encoded`."""
        tables = self._tables
        return [(rel, tables[rel].row_values(row_id)) for rel, row_id in rows]

    def generation_of(self, fact: Atom) -> int:
        found = self._try_row_id(fact)
        if found is None:
            return 0
        table, row_id = found
        return table.generations[row_id]

    @property
    def current_generation(self) -> int:
        return self._current_generation

    @property
    def version(self) -> int:
        return self._version

    def __contains__(self, fact: Atom) -> bool:
        return self._try_row_id(fact) is not None

    def __iter__(self) -> Iterator[Atom]:
        for relation, table in self._tables.items():
            generations = table.generations
            for row_id in range(len(generations)):
                if generations[row_id] >= 0:
                    yield self.decode_row(relation, row_id)

    def __len__(self) -> int:
        return sum(table.live_count for table in self._tables.values())

    def size(self, relation: Optional[str] = None) -> int:
        if relation is None:
            return len(self)
        table = self._tables.get(relation)
        return table.live_count if table is not None else 0

    def nulls(self) -> Set[Null]:
        out: Set[Null] = set()
        hints = self._null_hints
        for table in self._tables.values():
            generations = table.generations
            for column in table.columns:
                for row_id, code in enumerate(column):
                    if code < 0 and generations[row_id] >= 0:
                        null_id = -code - 1
                        out.add(Null(null_id, hints.get(null_id, "")))
        return out

    def is_ground_complete(self) -> bool:
        for table in self._tables.values():
            generations = table.generations
            for column in table.columns:
                for row_id, code in enumerate(column):
                    if code < 0 and generations[row_id] >= 0:
                        return False
        return True

    # -- encoded indexes ---------------------------------------------------

    def encoded_index(
        self, relation: str, positions: Sequence[int]
    ) -> Mapping[Tuple[int, ...], List[int]]:
        """Hash index: code tuples at ``positions`` -> live row ids.

        Cached, lazily rebuilt on staleness, and maintained
        incrementally by :meth:`add_encoded` once live — the build side
        of the kernel's hash-join and anti-join probes.
        """
        key: _IndexKey = (relation, tuple(positions))
        if self._index_versions.get(key) == self._relation_versions[relation]:
            return self._indexes[key]
        with self._index_lock:
            if self._index_versions.get(key) == self._relation_versions[relation]:
                return self._indexes[key]
            built: Dict[Tuple[int, ...], List[int]] = {}
            table = self._tables.get(relation)
            if table is not None:
                columns = [table.columns[i] for i in key[1]]
                generations = table.generations
                for row_id in range(len(generations)):
                    if generations[row_id] < 0:
                        continue
                    index_key = tuple(column[row_id] for column in columns)
                    bucket = built.get(index_key)
                    if bucket is None:
                        built[index_key] = [row_id]
                    else:
                        bucket.append(row_id)
            self.index_builds += 1
            self._indexes[key] = built
            self._index_versions[key] = self._relation_versions[relation]
            live = self._live_index_keys.setdefault(relation, [])
            if key not in live:
                live.append(key)
            return built

    def index(
        self, relation: str, positions: Sequence[int]
    ) -> Mapping[Tuple[Term, ...], List[Atom]]:
        """Atom-level index (compatibility surface for the reference
        evaluator and other decoded consumers; not the hot path)."""
        key: _IndexKey = (relation, tuple(positions))
        version = self._relation_versions[relation]
        if self._atom_index_versions.get(key) == version:
            return self._atom_indexes[key]
        with self._index_lock:
            if self._atom_index_versions.get(key) == version:
                return self._atom_indexes[key]
            built: Dict[Tuple[Term, ...], List[Atom]] = defaultdict(list)
            for row_id in self.live_row_ids(relation):
                fact = self.decode_row(relation, row_id)
                built[tuple(fact.terms[i] for i in key[1])].append(fact)
            self._atom_indexes[key] = built
            self._atom_index_versions[key] = version
            return built

    def key_count(self, relation: str, positions: Sequence[int]) -> int:
        """Distinct code-tuples at ``positions`` (planner selectivity)."""
        key: _IndexKey = (relation, tuple(positions))
        version = self._relation_versions[relation]
        if self._index_versions.get(key) == version:
            return len(self._indexes[key])
        cached = self._key_count_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        seen: Set[Tuple[int, ...]] = set()
        table = self._tables.get(relation)
        if table is not None:
            columns = [table.columns[i] for i in key[1]]
            generations = table.generations
            for row_id in range(len(generations)):
                if generations[row_id] >= 0:
                    seen.add(tuple(column[row_id] for column in columns))
        self._key_count_cache[key] = (version, len(seen))
        return len(seen)

    def cached_key_count(
        self, relation: str, positions: Sequence[int]
    ) -> Optional[int]:
        key: _IndexKey = (relation, tuple(positions))
        version = self._relation_versions[relation]
        if self._index_versions.get(key) == version:
            return len(self._indexes[key])
        cached = self._key_count_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        return None

    # -- null handling -----------------------------------------------------

    def apply_null_map(self, mapping: Mapping[Null, Term]) -> int:
        if not mapping:
            return 0
        encoded = {
            -(null.id + 1): self.encode_term(target)
            for null, target in mapping.items()
        }
        return self.apply_null_map_encoded(encoded)

    def apply_null_map_encoded(self, mapping: Mapping[int, int]) -> int:
        """Replace null codes throughout; returns #rows rewritten.

        O(rows x arity) integer substitution with in-place column
        writes.  Collapse semantics are bit-compatible with
        ``Instance.apply_null_map``: a rewritten row keeps its
        generation; collapsing onto a live row keeps the earliest
        generation and logs the row at it.
        """
        if not mapping:
            return 0
        rewritten = 0
        get = mapping.get
        for relation, table in self._tables.items():
            columns = table.columns
            generations = table.generations
            hit_columns = [
                column
                for column in columns
                if any(code < 0 and code in mapping for code in column)
            ]
            if not hit_columns:
                continue
            replacements: List[Tuple[int, Tuple[int, ...], int]] = []
            for row_id in range(len(generations)):
                generation = generations[row_id]
                if generation < 0:
                    continue
                row = tuple(column[row_id] for column in columns)
                new_row = tuple(
                    get(code, code) if code < 0 else code for code in row
                )
                if new_row != row:
                    replacements.append((row_id, new_row, generation))
            if not replacements:
                continue
            # Phase 1: unregister every old row (mirrors the reference
            # kernel removing all olds from the bucket before re-adding,
            # so rewrites landing on another old row's key work).
            for row_id, _new_row, _generation in replacements:
                del table.row_ids[table.row_values(row_id)]
            # Phase 2: rewrite in place, or collapse onto a live row.
            for row_id, new_row, generation in replacements:
                existing = table.row_ids.get(new_row)
                if existing is not None and generations[existing] >= 0:
                    kept = min(generations[existing], generation)
                    if kept != generations[existing]:
                        self._insertion_log[kept].append((relation, existing))
                        generations[existing] = kept
                    generations[row_id] = -1
                    table.live_count -= 1
                else:
                    for column, code in zip(columns, new_row):
                        column[row_id] = code
                    table.row_ids[new_row] = row_id
                rewritten += 1
            self._version += 1
            self._relation_versions[relation] += 1
            self._drop_indexes(relation)
        return rewritten

    # -- copies / conversion -----------------------------------------------

    def copy(self) -> "ColumnarInstance":
        clone = ColumnarInstance(self.schema, self.pool)
        for relation, table in self._tables.items():
            clone._tables[relation] = table.copy()
        for generation, entries in self._insertion_log.items():
            clone._insertion_log[generation] = list(entries)
        clone._current_generation = self._current_generation
        clone._log_tail = clone._insertion_log[clone._current_generation]
        clone._version = self._version
        clone._null_hints = dict(self._null_hints)
        return clone

    def restricted_to(self, relations: Iterable[str]) -> "ColumnarInstance":
        keep = set(relations)
        clone = ColumnarInstance(pool=self.pool)
        for relation in keep:
            table = self._tables.get(relation)
            if table is None:
                continue
            for row_id in self.live_row_ids(relation):
                clone.add_encoded(relation, table.row_values(row_id))
        clone._null_hints = dict(self._null_hints)
        return clone

    def to_atoms(self) -> List[Atom]:
        return list(self)

    def _fact_sets(self) -> Dict[str, FrozenSet[Atom]]:
        return {
            relation: self.facts(relation)
            for relation, table in self._tables.items()
            if table.live_count
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ColumnarInstance):
            return self._fact_sets() == other._fact_sets()
        # Cross-kernel comparison (Instance.__eq__ returns
        # NotImplemented for us, so Python reflects here).
        if hasattr(other, "_facts"):
            theirs = {
                r: frozenset(b)
                for r, b in other._facts.items()  # type: ignore[union-attr]
                if b
            }
            return self._fact_sets() == theirs
        return NotImplemented

    def __hash__(self):  # pragma: no cover - instances are mutable
        raise TypeError("ColumnarInstance is unhashable")

    def __str__(self) -> str:
        lines = []
        for relation in sorted(self._tables):
            bucket = self.facts(relation)
            if not bucket:
                continue
            lines.append(f"{relation} ({len(bucket)} facts)")
            for fact in sorted(bucket, key=str)[:20]:
                lines.append(f"  {fact}")
            if len(bucket) > 20:
                lines.append(f"  ... {len(bucket) - 20} more")
        return "\n".join(lines) if lines else "(empty instance)"

    def __repr__(self) -> str:
        return (
            f"ColumnarInstance({len(self)} facts, "
            f"{len(self.relations())} relations)"
        )

    def probe_view(self) -> ProbeView:
        return ProbeView(self)
