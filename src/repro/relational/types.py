"""Attribute data types for relational schemas.

GROM executes over ordinary relational databases, so schemas are typed.
The type system is deliberately small — integers, floats, booleans,
strings, plus the wildcard ``ANY`` — and labeled nulls are members of
every type (they are placeholders, not values).
"""

from __future__ import annotations

import enum
from typing import Union

from repro.errors import TypingError
from repro.logic.terms import Constant, Null, Term

__all__ = [
    "DataType",
    "check_value",
    "check_term",
    "parse_literal",
    "term_order_key",
]


def term_order_key(term: Term):
    """Canonical sort key over ground terms.

    Nulls sort after constants, by numeric id — so "smaller null id wins"
    when egds orient unifications, which is what makes canonical null
    renaming deterministic.  Constants sort by ``repr``.  This single
    definition is shared by the chase engine's enforcement order and the
    columnar kernel's interning pool (which caches the key per code so
    encoded rows sort identically to decoded bindings).
    """
    if isinstance(term, Null):
        return (1, term.id, "")
    return (0, 0, repr(term))


class DataType(enum.Enum):
    """The declared type of a relational attribute."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STRING = "string"
    ANY = "any"

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        normalized = name.strip().lower()
        aliases = {
            "int": cls.INT,
            "integer": cls.INT,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "bool": cls.BOOL,
            "boolean": cls.BOOL,
            "string": cls.STRING,
            "str": cls.STRING,
            "text": cls.STRING,
            "varchar": cls.STRING,
            "any": cls.ANY,
        }
        if normalized not in aliases:
            raise TypingError(f"unknown data type {name!r}")
        return aliases[normalized]

    def admits(self, value: Union[int, float, bool, str]) -> bool:
        """Whether a Python value conforms to this type.

        ``bool`` is checked before ``int`` because it subclasses ``int``;
        ``FLOAT`` accepts ints (the usual numeric widening).
        """
        if self is DataType.ANY:
            return isinstance(value, (int, float, bool, str))
        if self is DataType.BOOL:
            return isinstance(value, bool)
        if self is DataType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)

    def __str__(self) -> str:
        return self.value


def check_value(value: Union[int, float, bool, str], dtype: DataType, where: str = "") -> None:
    """Raise :class:`TypingError` when ``value`` does not conform to ``dtype``."""
    if not dtype.admits(value):
        location = f" in {where}" if where else ""
        raise TypingError(
            f"value {value!r} does not conform to type {dtype}{location}"
        )


def check_term(term: Term, dtype: DataType, where: str = "") -> None:
    """Type-check a term; labeled nulls conform to every type."""
    if isinstance(term, Null):
        return
    if isinstance(term, Constant):
        check_value(term.value, dtype, where)


def parse_literal(text: str, dtype: DataType) -> Constant:
    """Parse a textual literal as a constant of the given type.

    Used by the CSV loader; the DSL parser has its own literal syntax.
    """
    stripped = text.strip()
    if dtype is DataType.INT:
        return Constant(int(stripped))
    if dtype is DataType.FLOAT:
        return Constant(float(stripped))
    if dtype is DataType.BOOL:
        lowered = stripped.lower()
        if lowered in ("true", "1", "t", "yes"):
            return Constant(True)
        if lowered in ("false", "0", "f", "no"):
            return Constant(False)
        raise TypingError(f"cannot parse {text!r} as a boolean")
    return Constant(stripped)
