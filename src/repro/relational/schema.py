"""Relational schemas: typed relations, keys and functional dependencies.

A :class:`Schema` is a named collection of :class:`Relation` declarations.
Key and functional-dependency declarations are convenience metadata: the
mapping semantics only ever sees dependencies, so :meth:`Relation.key_egd`
and :meth:`Schema.constraint_egds` compile the declarations into egds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ArityError, SchemaError, UnknownRelationError
from repro.logic.atoms import Atom, Conjunction, Equality
from repro.logic.dependencies import Dependency, egd
from repro.logic.terms import Term, Variable
from repro.relational.types import DataType, check_term

__all__ = ["Attribute", "Relation", "FunctionalDependency", "Schema"]


@dataclass(frozen=True)
class Attribute:
    """A named, typed column."""

    name: str
    dtype: DataType = DataType.ANY

    def __str__(self) -> str:
        return f"{self.name} {self.dtype}"


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``determinants -> dependents`` by attribute name."""

    determinants: Tuple[str, ...]
    dependents: Tuple[str, ...]

    def __init__(self, determinants: Sequence[str], dependents: Sequence[str]) -> None:
        object.__setattr__(self, "determinants", tuple(determinants))
        object.__setattr__(self, "dependents", tuple(dependents))
        if not self.determinants or not self.dependents:
            raise SchemaError("functional dependency sides must be non-empty")

    def __str__(self) -> str:
        return f"{', '.join(self.determinants)} -> {', '.join(self.dependents)}"


@dataclass(frozen=True)
class Relation:
    """A relation declaration: name, attributes, optional key and FDs."""

    name: str
    attributes: Tuple[Attribute, ...]
    key: Tuple[str, ...] = ()
    fds: Tuple[FunctionalDependency, ...] = ()

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute],
        key: Sequence[str] = (),
        fds: Sequence[FunctionalDependency] = (),
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(attributes))
        object.__setattr__(self, "key", tuple(key))
        object.__setattr__(self, "fds", tuple(fds))
        if not name:
            raise SchemaError("relation name must be non-empty")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        known = set(names)
        for attr in self.key:
            if attr not in known:
                raise SchemaError(f"key attribute {attr!r} not in relation {name!r}")
        for fd in self.fds:
            for attr in fd.determinants + fd.dependents:
                if attr not in known:
                    raise SchemaError(
                        f"FD attribute {attr!r} not in relation {name!r}"
                    )

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        for i, attr in enumerate(self.attributes):
            if attr.name == attribute:
                return i
        raise SchemaError(f"relation {self.name!r} has no attribute {attribute!r}")

    def check_fact(self, terms: Sequence[Term]) -> None:
        """Validate arity and term types for a fact of this relation."""
        if len(terms) != self.arity:
            raise ArityError(self.name, self.arity, len(terms))
        for term, attribute in zip(terms, self.attributes):
            check_term(term, attribute.dtype, where=f"{self.name}.{attribute.name}")

    def fresh_atom(self, prefix: str = "x") -> Atom:
        """An atom over this relation with one distinct variable per column."""
        return Atom(
            self.name,
            tuple(Variable(f"{prefix}_{a.name}") for a in self.attributes),
        )

    def _fd_egd(self, determinants: Sequence[str], dependents: Sequence[str],
                label: str) -> Dependency:
        """Compile an FD over this relation into an egd."""
        left = [Variable(f"l_{a.name}") for a in self.attributes]
        right = [Variable(f"r_{a.name}") for a in self.attributes]
        for attr in determinants:
            pos = self.position_of(attr)
            right[pos] = left[pos]
        equalities = []
        for attr in dependents:
            pos = self.position_of(attr)
            equalities.append(Equality(left[pos], right[pos]))
        premise = Conjunction(
            atoms=(Atom(self.name, tuple(left)), Atom(self.name, tuple(right)))
        )
        return egd(premise, equalities, name=label)

    def key_egd(self) -> Optional[Dependency]:
        """The egd enforcing the declared key, or ``None`` if no key."""
        if not self.key:
            return None
        dependents = [a.name for a in self.attributes if a.name not in self.key]
        if not dependents:
            return None
        return self._fd_egd(self.key, dependents, f"key_{self.name}")

    def fd_egds(self) -> List[Dependency]:
        """Egds for all declared functional dependencies."""
        return [
            self._fd_egd(fd.determinants, fd.dependents, f"fd_{self.name}_{i}")
            for i, fd in enumerate(self.fds)
        ]

    def __str__(self) -> str:
        inside = ", ".join(str(a) for a in self.attributes)
        key = f" key({', '.join(self.key)})" if self.key else ""
        return f"{self.name}({inside}){key}"


class Schema:
    """A named set of relation declarations.

    Schemas are mutable during construction (``add``) and act as the
    authority on arity and typing for instances and dependencies.
    """

    def __init__(self, name: str, relations: Iterable[Relation] = ()) -> None:
        self.name = name
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    # -- construction ------------------------------------------------------

    def add(self, relation: Relation) -> "Schema":
        if relation.name in self._relations:
            raise SchemaError(
                f"schema {self.name!r} already defines relation {relation.name!r}"
            )
        self._relations[relation.name] = relation
        return self

    def add_relation(
        self,
        name: str,
        attributes: Sequence[Tuple[str, str]],
        key: Sequence[str] = (),
    ) -> Relation:
        """Declare a relation from ``(attribute, type-name)`` pairs."""
        relation = Relation(
            name,
            [Attribute(a, DataType.from_name(t)) for a, t in attributes],
            key=key,
        )
        self.add(relation)
        return relation

    # -- lookup ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def relation_names(self) -> List[str]:
        return list(self._relations)

    def arity(self, name: str) -> int:
        return self.relation(name).arity

    # -- constraints ------------------------------------------------------------

    def constraint_egds(self) -> List[Dependency]:
        """All egds induced by declared keys and FDs, in declaration order."""
        out: List[Dependency] = []
        for relation in self:
            key = relation.key_egd()
            if key is not None:
                out.append(key)
            out.extend(relation.fd_egds())
        return out

    # -- combination ------------------------------------------------------------

    def union(self, other: "Schema", name: str = "") -> "Schema":
        """A schema containing the relations of both (names must not clash)."""
        overlap = set(self._relations) & set(other._relations)
        if overlap:
            raise SchemaError(
                f"schemas {self.name!r} and {other.name!r} share relations: "
                f"{sorted(overlap)}"
            )
        merged = Schema(name or f"{self.name}+{other.name}")
        for relation in self:
            merged.add(relation)
        for relation in other:
            merged.add(relation)
        return merged

    def __str__(self) -> str:
        lines = [f"schema {self.name} {{"]
        lines += [f"  {relation}" for relation in self]
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {len(self)} relations)"
