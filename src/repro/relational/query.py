"""Conjunctive-query evaluation with comparisons and safe negation.

This is the workhorse evaluator used by the Datalog engine (to
materialize views), by the chase engine (to find premise matches), and by
the verifier.  It evaluates a :class:`~repro.logic.atoms.Conjunction`
against an :class:`~repro.relational.instance.Instance`:

* positive atoms are joined left-to-right after a greedy
  most-bound-first, smallest-relation-first planning pass, each join step
  probing a hash index on the statically-known bound positions;
* comparison atoms are applied as soon as their variables are bound;
* negated conjunctions (safe, stratified after unfolding) are evaluated
  last as *not-exists* sub-queries, recursing through nested negation.

Bindings are plain ``dict`` objects for speed; the public helpers convert
to :class:`~repro.logic.substitution.Substitution` at the API edge.

The module also implements the *delta* evaluation used by chase rounds:
matches are restricted to those using at least one fact from a given
recently-inserted set, which is what makes the chase incremental instead
of quadratic in the number of rounds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import TypingError, UnsafeDependencyError
from repro.logic.atoms import Atom, Comparison, Conjunction, NegatedConjunction
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Null, Term, Variable
from repro.relational.instance import Instance

__all__ = ["evaluate", "evaluate_delta", "exists", "bindings_to_substitutions"]

Binding = Dict[Variable, Term]


def _resolve(term: Term, binding: Binding) -> Optional[Term]:
    """The value of a term under a binding, or None for an unbound variable."""
    if isinstance(term, Variable):
        return binding.get(term)
    return term


def _plan(atoms: Sequence[Atom], instance: Instance, bound: Set[Variable]) -> List[int]:
    """Greedy join order: most bound positions first, then smaller relation.

    Returns atom indices in evaluation order.  ``bound`` is mutated to
    reflect the variables bound after each chosen step.
    """
    remaining = list(range(len(atoms)))
    order: List[int] = []
    bound_now = set(bound)
    while remaining:
        def score(i: int) -> Tuple[int, int]:
            atom = atoms[i]
            bound_positions = sum(
                1
                for t in atom.terms
                if not isinstance(t, Variable) or t in bound_now
            )
            # Prefer more bound positions; break ties on smaller relations.
            return (-bound_positions, instance.size(atom.relation))

        best = min(remaining, key=score)
        remaining.remove(best)
        order.append(best)
        for variable in atoms[best].variables():
            bound_now.add(variable)
    bound |= bound_now
    return order


def _comparison_ready(comparison: Comparison, bound: Set[Variable]) -> bool:
    return all(v in bound for v in comparison.variables())


def _check_comparison(comparison: Comparison, binding: Binding) -> bool:
    left = _resolve(comparison.left, binding)
    right = _resolve(comparison.right, binding)
    ground = Comparison(
        comparison.op,
        comparison.left if left is None else left,
        comparison.right if right is None else right,
    )
    try:
        return ground.evaluate()
    except TypingError:
        # An unsatisfiable comparison (e.g. ordering a null) simply does
        # not match -- mirroring SQL's NULL comparison semantics.
        return False


def _join_step(
    solutions: List[Binding],
    atom: Atom,
    instance: Instance,
    bound_before: Set[Variable],
    delta: Optional[Set[Atom]] = None,
) -> List[Binding]:
    """Extend each binding with matches of ``atom`` against the instance."""
    bound_positions = [
        i
        for i, t in enumerate(atom.terms)
        if not isinstance(t, Variable) or t in bound_before
    ]
    unbound = [
        (i, t)
        for i, t in enumerate(atom.terms)
        if isinstance(t, Variable) and t not in bound_before
    ]
    # Repeated fresh variables within the atom need an equality check.
    seen_positions: Dict[Variable, int] = {}
    index = instance.index(atom.relation, bound_positions)
    out: List[Binding] = []
    for binding in solutions:
        key = tuple(
            _resolve(atom.terms[i], binding) for i in bound_positions
        )
        for fact in index.get(key, ()):  # type: ignore[call-overload]
            if delta is not None and fact not in delta:
                continue
            extended = dict(binding)
            ok = True
            for position, variable in unbound:
                value = fact.terms[position]
                current = extended.get(variable)
                if current is None:
                    extended[variable] = value
                elif current != value:
                    ok = False
                    break
            if ok:
                out.append(extended)
    return out


def _apply_negations(
    solutions: List[Binding],
    negations: Sequence[NegatedConjunction],
    instance: Instance,
) -> List[Binding]:
    if not negations:
        return solutions
    out: List[Binding] = []
    for binding in solutions:
        if all(
            not exists(negation.inner, instance, seed=binding)
            for negation in negations
        ):
            out.append(binding)
    return out


def evaluate(
    body: Conjunction,
    instance: Instance,
    seed: Optional[Binding] = None,
    limit: Optional[int] = None,
) -> List[Binding]:
    """All bindings of ``body``'s variables satisfying it in ``instance``.

    ``seed`` pre-binds variables (used for correlated sub-queries and for
    checking specific premise matches); ``limit`` stops early once that
    many bindings are found (before negation filtering the limit is not
    applied, so it is only an optimization for positive bodies).
    """
    seed_binding: Binding = dict(seed or {})
    bound: Set[Variable] = set(seed_binding)
    order = _plan(body.atoms, instance, bound)

    solutions: List[Binding] = [seed_binding]
    bound_now: Set[Variable] = set(seed_binding)
    pending_comparisons = list(body.comparisons)

    # Comparisons whose variables are already bound by the seed apply first.
    applied: List[Comparison] = []
    for comparison in pending_comparisons:
        if _comparison_ready(comparison, bound_now):
            solutions = [b for b in solutions if _check_comparison(comparison, b)]
            applied.append(comparison)
    pending_comparisons = [c for c in pending_comparisons if c not in applied]

    for atom_index in order:
        atom = body.atoms[atom_index]
        solutions = _join_step(solutions, atom, instance, bound_now)
        for variable in atom.variables():
            bound_now.add(variable)
        if not solutions:
            return []
        ready = [c for c in pending_comparisons if _comparison_ready(c, bound_now)]
        for comparison in ready:
            solutions = [b for b in solutions if _check_comparison(comparison, b)]
            pending_comparisons.remove(comparison)
        if limit is not None and not body.negations and not pending_comparisons:
            if len(solutions) >= limit and atom_index == order[-1]:
                solutions = solutions[:limit]

    if pending_comparisons:
        # Safety should prevent this; treat unbound comparisons as failures.
        raise UnsafeDependencyError(
            f"comparisons {pending_comparisons} have unbound variables in {body}"
        )

    solutions = _apply_negations(solutions, body.negations, instance)
    if limit is not None:
        solutions = solutions[:limit]
    return solutions


def evaluate_delta(
    body: Conjunction,
    instance: Instance,
    delta: Set[Atom],
    seed: Optional[Binding] = None,
) -> List[Binding]:
    """Bindings of ``body`` that use at least one fact from ``delta``.

    Implements the classical delta-join: for each positive atom position
    ``i``, join with atom ``i`` restricted to ``delta`` and all other
    atoms unrestricted, then deduplicate.  Negations are evaluated against
    the full instance (their non-monotonicity is the rewriter's concern,
    not the evaluator's).
    """
    if not body.atoms:
        return evaluate(body, instance, seed=seed)
    relations_in_delta = {f.relation for f in delta}
    out: List[Binding] = []
    seen: Set[Tuple[Tuple[Variable, Term], ...]] = set()
    for anchor_index, anchor in enumerate(body.atoms):
        if anchor.relation not in relations_in_delta:
            continue
        seed_binding: Binding = dict(seed or {})
        bound_now: Set[Variable] = set(seed_binding)
        # Anchor join first, restricted to delta facts.
        solutions = _join_step([seed_binding], anchor, instance, bound_now, delta=delta)
        if not solutions:
            continue
        for variable in anchor.variables():
            bound_now.add(variable)
        rest = [a for i, a in enumerate(body.atoms) if i != anchor_index]
        rest_body = Conjunction(rest, body.comparisons, body.negations)
        for binding in solutions:
            for full in evaluate(rest_body, instance, seed=binding):
                key = tuple(sorted(full.items()))
                if key not in seen:
                    seen.add(key)
                    out.append(full)
    return out


def exists(
    body: Conjunction, instance: Instance, seed: Optional[Binding] = None
) -> bool:
    """Whether ``body`` has at least one match in ``instance``."""
    return bool(evaluate(body, instance, seed=seed, limit=1))


def bindings_to_substitutions(bindings: Iterable[Binding]) -> List[Substitution]:
    """Convert raw binding dicts to :class:`Substitution` objects."""
    return [Substitution(b) for b in bindings]
