"""Conjunctive-query evaluation with comparisons and safe negation.

This is the workhorse evaluator used by the Datalog engine (to
materialize views), by the chase engine (to find premise matches), and by
the verifier.  It evaluates a :class:`~repro.logic.atoms.Conjunction`
against an :class:`~repro.relational.instance.Instance`.

Evaluation is *compiled* and *lazy*:

* :func:`compile_query` turns a conjunction (plus the statically-known
  set of seed-bound variables) into a :class:`CompiledQuery` — a join
  plan (greedy most-bound-first, smallest-relation-first), the hash-index
  key positions of every step, the bind/check schedule for fresh
  variables, and the point at which each comparison becomes checkable.
  Compiled queries are cached, so repeated evaluation of the same body
  (the chase probes the same conclusions thousands of times per run)
  never re-plans.
* :meth:`CompiledQuery.bindings` runs the plan as a chain of generators:
  each join step lazily extends the bindings flowing out of the previous
  step by probing a hash index on the statically-known bound positions.
  Nothing is materialized, so ``evaluate(limit=N)`` and :func:`exists`
  genuinely stop after the first ``N`` results — a satisfaction probe on
  a 10k-fact relation does O(1) work, not O(n).
* comparison atoms are applied as soon as their variables are bound;
  negated conjunctions (safe, stratified after unfolding) are evaluated
  last as *not-exists* sub-queries, recursing through nested negation.

Bindings are plain ``dict`` objects for speed; the public helpers convert
to :class:`~repro.logic.substitution.Substitution` at the API edge.

The module also implements the *delta* evaluation used by chase rounds:
matches are restricted to those using at least one fact from a given
recently-inserted set, which is what makes the chase incremental instead
of quadratic in the number of rounds.

A reference implementation (the original materialized evaluator) is kept
for differential testing: :func:`reference_evaluator` switches every
entry point to it, which the corpus-equivalence property tests use to
prove the compiled pipeline computes the same results.
"""

from __future__ import annotations

from itertools import islice
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import TypingError, UnsafeDependencyError
from repro.logic.atoms import Atom, Comparison, Conjunction
from repro.logic.substitution import Substitution
from repro.logic.terms import Term, Variable
from repro.relational.instance import Instance, ProbeView
from repro.relational.kernel import ColumnarInstance, RowMask, TermPool

__all__ = [
    "CompiledQuery",
    "compile_query",
    "evaluate",
    "evaluate_iter",
    "evaluate_delta",
    "exists",
    "bindings_to_substitutions",
    "reference_evaluator",
    "row_probe_mode",
]

Binding = Dict[Variable, Term]


def _columnar_store(instance):
    """The encoded probe surface behind ``instance``, or None.

    Accepts a bare :class:`ColumnarInstance` or a :class:`ProbeView`
    over one (the view delegates the encoded surface); everything else —
    including a ProbeView over a set-based Instance — evaluates through
    the decoded Atom pipeline.
    """
    if isinstance(instance, ColumnarInstance):
        return instance
    if isinstance(instance, ProbeView) and isinstance(
        instance._instance, ColumnarInstance
    ):
        return instance
    return None


def _resolve(term: Term, binding: Binding) -> Optional[Term]:
    """The value of a term under a binding, or None for an unbound variable."""
    if isinstance(term, Variable):
        return binding.get(term)
    return term


def _comparison_ready(comparison: Comparison, bound: Set[Variable]) -> bool:
    return all(v in bound for v in comparison.variables())


def _check_comparison(comparison: Comparison, binding: Binding) -> bool:
    left = _resolve(comparison.left, binding)
    right = _resolve(comparison.right, binding)
    ground = Comparison(
        comparison.op,
        comparison.left if left is None else left,
        comparison.right if right is None else right,
    )
    try:
        return ground.evaluate()
    except TypingError:
        # An unsatisfiable comparison (e.g. ordering a null) simply does
        # not match -- mirroring SQL's NULL comparison semantics.
        return False


# ---------------------------------------------------------------------------
# Compiled queries
# ---------------------------------------------------------------------------


class _Step:
    """One compiled join step: probe a hash index, extend the binding.

    ``key_terms`` are the terms at the statically-bound positions (the
    hash-index key); ``binds`` are (position, variable) pairs for the
    first occurrence of each fresh variable; ``checks`` are
    (position, first_position) pairs for repeated occurrences of a fresh
    variable within the same atom, which need an equality check instead
    of a bind; ``comparisons`` become checkable once this step's
    variables are bound.
    """

    __slots__ = ("relation", "positions", "key_terms", "binds", "checks", "comparisons")

    def __init__(
        self,
        relation: str,
        positions: Tuple[int, ...],
        key_terms: Tuple[Term, ...],
        binds: Tuple[Tuple[int, Variable], ...],
        checks: Tuple[Tuple[int, int], ...],
        comparisons: Tuple[Comparison, ...],
    ) -> None:
        self.relation = relation
        self.positions = positions
        self.key_terms = key_terms
        self.binds = binds
        self.checks = checks
        self.comparisons = comparisons


class _EncodedStep:
    """A join step lowered onto the columnar kernel.

    ``key_parts`` are (is_slot, value) pairs: a slot read for bound
    variables, a pre-interned code for literals.  ``binds`` write column
    values into slots; ``checks`` compare two columns of the probed row;
    ``comparisons`` are compiled closures over the slot array.
    ``driver`` is the generated block-probe function for this step's
    exact shape (see :func:`_compile_block_join`).
    """

    __slots__ = (
        "relation",
        "positions",
        "key_parts",
        "binds",
        "checks",
        "comparisons",
        "driver",
    )

    def __init__(self, step: _Step, slot_of, pool: TermPool, width: int) -> None:
        self.relation = step.relation
        self.positions = step.positions
        self.key_parts = tuple(
            (True, slot_of[t]) if isinstance(t, Variable) else (False, pool.encode(t))
            for t in step.key_terms
        )
        self.binds = tuple((p, slot_of[v]) for p, v in step.binds)
        self.checks = step.checks
        self.comparisons = tuple(
            _compile_comparison(c, slot_of, pool) for c in step.comparisons
        )
        self.driver = _compile_block_join(
            width,
            self.key_parts,
            self.binds,
            self.checks,
            bool(self.comparisons),
        )


#: Block size for the generated probe drivers: large enough that the
#: comprehension amortizes interpreter dispatch, small enough that
#: ``exists()``/limit consumers never materialize more than one block
#: past their stopping point.
_PROBE_BLOCK = 512

#: Generated drivers keyed by source text — steps across queries share
#: shapes (same width / bind / check layout), so compiles amortize.
_DRIVER_CACHE: Dict[str, object] = {}


def _compile_block_join(
    width: int,
    key_parts: Tuple[Tuple[bool, int], ...],
    binds: Tuple[Tuple[int, int], ...],
    checks: Tuple[Tuple[int, int], ...],
    has_comparisons: bool,
) -> object:
    """Generate the block-probe driver for one join-step shape.

    The driver is ordinary Python compiled from a per-shape source
    string, and both its input and its output streams carry *blocks*
    (lists of result tuples), so the generator hand-off between join
    steps costs one resume per ~:data:`_PROBE_BLOCK` rows instead of
    one per row.  The hot inner loop is a single list comprehension
    whose element is a *tuple display* over hoisted column locals — a
    bucket of candidate rows turns into output row tuples in one
    bytecode pass, no per-row function calls, no per-row slot stores.
    Checks become comprehension filters over column locals; delta
    restriction happens once per bucket through
    :meth:`RowMask.restrict` (bucket identity / bisect slice) instead
    of a per-row membership scan; the comparison closures filter
    surviving blocks only.  Output blocks flush at ``_PROBE_BLOCK``
    rows, so lazy ``exists()``/limit consumers never materialize more
    than one block past their stopping point.

    Measured ~2–3× the row-at-a-time loop (kept as
    ``_EncodedPlan._join_rows`` behind :func:`row_probe_mode`) across
    fan-outs of 4–64, and wider still under delta restriction.
    """
    bound_slot_columns = {slot: position for position, slot in binds}
    key_expr = (
        "("
        + "".join(
            (f"_values[{value}], " if is_slot else f"{value}, ")
            for is_slot, value in key_parts
        )
        + ")"
    )
    columns_used = sorted(
        {position for position, _slot in binds}
        | {position for pair in checks for position in pair}
    )
    hoisted_slots = [
        slot for slot in range(width) if slot not in bound_slot_columns
    ]
    # Rows are *tuple* displays: nothing downstream mutates a built row
    # (each step builds fresh ones), so skipping the list->tuple
    # conversion at the pipeline edge is free.
    row_elems = (
        "("
        + "".join(
            (
                f"_c{bound_slot_columns[slot]}[_r], "
                if slot in bound_slot_columns
                else f"_v{slot}, "
            )
            for slot in range(width)
        )
        + ")"
    )
    filters = "".join(
        f" if _c{position}[_r] == _c{bound_at}[_r]"
        for position, bound_at in checks
    )

    def flush(indent: str) -> List[str]:
        """Filter a full output block through the comparison closures,
        account it, and hand it downstream."""
        out = []
        if has_comparisons:
            out += [
                f"{indent}for _check in _comps:",
                f"{indent}    _out = [_row for _row in _out if _check(_row)]",
                f"{indent}    if not _out:",
                f"{indent}        break",
            ]
        out += [
            f"{indent}if _out:",
            f"{indent}    _stats.probe_survivors += len(_out)",
            f"{indent}    yield _out",
            f"{indent}    _out = []",
        ]
        return out

    lines = [
        "def _drive(_stream, _lookup, _columns, _mask, _stats, _comps):",
    ]
    lines += [f"    _c{p} = _columns[{p}]" for p in columns_used]
    lines += [
        "    _restrict = None if _mask is None else _mask.restrict",
        "    _out = []",
        "    for _block in _stream:",
        "        for _values in _block:",
        f"            _rows = _lookup({key_expr})",
        "            if not _rows:",
        "                continue",
        "            if _restrict is not None:",
        "                _rows = _restrict(_rows)",
        "                if not _rows:",
        "                    continue",
        "            _stats.probe_rows += len(_rows)",
    ]
    lines += [
        f"            _v{slot} = _values[{slot}]" for slot in hoisted_slots
    ]
    lines += [
        "            _n = len(_rows)",
        f"            if _n <= {_PROBE_BLOCK}:",
        f"                _out += [{row_elems} for _r in _rows{filters}]",
        "            else:",
        "                _i = 0",
        "                while _i < _n:",
        f"                    _chunk = _rows[_i:_i + {_PROBE_BLOCK}]",
        f"                    _i += {_PROBE_BLOCK}",
        f"                    _out += [{row_elems} "
        f"for _r in _chunk{filters}]",
        f"                    if len(_out) >= {_PROBE_BLOCK}:",
    ]
    lines += flush("                        ")
    lines += [
        f"            if len(_out) >= {_PROBE_BLOCK}:",
    ]
    lines += flush("                ")
    lines += [
        "    if _out:",
    ]
    lines += flush("        ")
    source = "\n".join(lines)
    driver = _DRIVER_CACHE.get(source)
    if driver is None:
        namespace: Dict[str, object] = {}
        exec(compile(source, "<block-join>", "exec"), namespace)  # noqa: S102
        driver = namespace["_drive"]
        _DRIVER_CACHE[source] = driver
    return driver


def _compile_comparison(comparison: Comparison, slot_of, pool: TermPool):
    """A comparison as a closure over the encoded slot array.

    Decodes the (at most two) operands and delegates to the decoded
    ground check, so typing semantics (nulls never order) are shared
    with the reference pipeline by construction.
    """
    decode = pool.decode
    left, right = comparison.left, comparison.right
    left_slot = slot_of[left] if isinstance(left, Variable) else None
    right_slot = slot_of[right] if isinstance(right, Variable) else None
    op = comparison.op

    def check(values) -> bool:
        ground = Comparison(
            op,
            left if left_slot is None else decode(values[left_slot]),
            right if right_slot is None else decode(values[right_slot]),
        )
        try:
            return ground.evaluate()
        except TypingError:
            return False

    return check


class _EncodedPlan:
    """A :class:`CompiledQuery` lowered onto one term pool.

    Bindings become fixed-width slot arrays over ``varlist`` (the
    query's bound and fresh variables in name order — the same order the
    chase's canonical trigger/varlist sorting uses), join keys become
    tuples of ints probing :meth:`ColumnarInstance.encoded_index`, and
    negations become pre-filled recursive encoded plans.  The decoded
    and encoded pipelines share the compile (join order, schedules), so
    they enumerate the same matches by construction — the differential
    suite then checks the construction.
    """

    __slots__ = (
        "query",
        "pool",
        "varlist",
        "slot_of",
        "width",
        "steps",
        "seed_comparisons",
        "negations",
        "_single_probe",
        "_fill_cache",
    )

    def __init__(self, query: "CompiledQuery", pool: TermPool) -> None:
        self.query = query
        self.pool = pool
        self.varlist: Tuple[Variable, ...] = tuple(
            sorted(query.bound | query._fresh)
        )
        self.slot_of: Dict[Variable, int] = {
            v: i for i, v in enumerate(self.varlist)
        }
        self.width = len(self.varlist)
        self.seed_comparisons = tuple(
            _compile_comparison(c, self.slot_of, pool)
            for c in query.seed_comparisons
        )
        self.steps = tuple(
            _EncodedStep(step, self.slot_of, pool, self.width)
            for step in query.steps
        )
        # Each negation evaluates as not-exists of an encoded sub-plan
        # seeded with every outer variable (mirroring _finalize, which
        # seeds the full binding), so the compile-cache key matches the
        # decoded path's and the same inner plan object serves both.
        outer = frozenset(self.varlist)
        negations = []
        for negation in query.negations:
            inner = compile_query(negation.inner, outer).encoded(pool)
            fill = tuple(
                (inner.slot_of[v], slot) for v, slot in self.slot_of.items()
            )
            negations.append((inner, fill))
        self.negations = tuple(negations)
        self._single_probe = query._single_probe
        # outer-varlist tuple -> ((inner slot, outer row index), ...) for
        # correlated probes from the chase (satisfaction checks).
        self._fill_cache: Dict[Tuple[Variable, ...], Tuple[Tuple[int, int], ...]] = {}

    def fill_for(
        self, outer_varlist: Tuple[Variable, ...]
    ) -> Tuple[Tuple[int, int], ...]:
        """How to seed this plan from a row aligned to ``outer_varlist``."""
        fill = self._fill_cache.get(outer_varlist)
        if fill is None:
            fill = tuple(
                (self.slot_of[v], i)
                for i, v in enumerate(outer_varlist)
                if v in self.slot_of
            )
            self._fill_cache[outer_varlist] = fill
        return fill

    # -- evaluation --------------------------------------------------------

    def rows(
        self,
        store,
        seed_values: Iterable[Tuple[int, int]] = (),
        delta=None,
    ) -> Iterator[Tuple[int, ...]]:
        """Lazily yield result rows (code tuples aligned to ``varlist``).

        Per-row convenience over :meth:`blocks` — hot materializing
        consumers should drain blocks directly (one generator resume
        per block instead of per row).
        """
        for block in self.blocks(store, seed_values, delta):
            yield from block

    def blocks(
        self,
        store,
        seed_values: Iterable[Tuple[int, int]] = (),
        delta=None,
    ) -> Iterator[List[Tuple[int, ...]]]:
        """Lazily yield result rows in blocks of ~:data:`_PROBE_BLOCK`.

        ``seed_values`` are (slot, code) pairs for the query's bound
        variables; ``delta`` restricts the first join step to the given
        row ids — a :class:`RowMask` or any row-id collection (wrapped
        here, so hot callers should pre-build one mask per pass).
        Consumers that mutate the store while iterating must
        materialize first (the chase does).
        """
        if delta is not None:
            if not delta:
                return
            if not isinstance(delta, RowMask):
                delta = RowMask(delta)
        values = [0] * self.width
        for slot, code in seed_values:
            values[slot] = code
        for check in self.seed_comparisons:
            if not check(values):
                return
        if _ROW_PROBE_MODE:
            stream: Iterator[List[int]] = iter((values,))
            for step_index, step in enumerate(self.steps):
                stream = self._join_rows(
                    stream, step, store, delta if step_index == 0 else None
                )
            # Chunk the row pipeline into blocks so row mode keeps the
            # same block-granular laziness as the drivers.
            block: List[Tuple[int, ...]] = []
            for row in self._finalize_rows(stream, store):
                block.append(row)
                if len(block) >= _PROBE_BLOCK:
                    yield block
                    block = []
            if block:
                yield block
            return
        # Seed the pipeline with the row as a tuple: the drivers only
        # read their input rows, and downstream (negation probes,
        # consumers) then sees tuples uniformly — even on zero-step
        # plans where the seed block reaches _finalize untouched.
        blocks: Iterator[List[Tuple[int, ...]]] = iter(([tuple(values)],))
        for step_index, step in enumerate(self.steps):
            blocks = self._join(
                blocks, step, store, delta if step_index == 0 else None
            )
        yield from self._finalize(blocks, store)

    def _join(
        self,
        blocks: Iterator[List[Tuple[int, ...]]],
        step: _EncodedStep,
        store,
        delta: Optional[RowMask],
    ) -> Iterator[List[Tuple[int, ...]]]:
        """One block-pipeline join step via the step's generated driver.

        Streams between steps carry *blocks* of slot-array rows, so the
        per-step generator hand-off costs one resume per block.
        """
        columns = store.columns(step.relation)
        if not columns:
            # No table for this relation yet — the index is empty, so
            # the join yields nothing (the driver hoists column locals
            # up front and must not index a zero-column table).
            return iter(())
        return step.driver(
            blocks,
            store.encoded_index(step.relation, step.positions).get,
            columns,
            delta,
            store.kernel_stats,
            step.comparisons,
        )

    def _join_rows(
        self,
        stream: Iterator[List[int]],
        step: _EncodedStep,
        store,
        delta: Optional[RowMask],
    ) -> Iterator[List[int]]:
        """Row-at-a-time probe loop (pre-vectorization semantics).

        Kept verbatim as the differential baseline for the block
        drivers: the e14 bench races the two, and the block/row
        differential suite asserts identical streams and counters.
        """
        index = store.encoded_index(step.relation, step.positions)
        lookup = index.get
        columns = store.columns(step.relation)
        key_parts = step.key_parts
        binds = step.binds
        checks = step.checks
        comparisons = step.comparisons
        stats = store.kernel_stats
        for values in stream:
            key = tuple(values[v] if s else v for s, v in key_parts)
            rows = lookup(key)
            if not rows:
                continue
            if delta is not None:
                rows = [r for r in rows if r in delta]
                if not rows:
                    continue
            stats.probe_rows += len(rows)
            for row_id in rows:
                ok = True
                for position, bound_at in checks:
                    if columns[position][row_id] != columns[bound_at][row_id]:
                        ok = False
                        break
                if not ok:
                    continue
                extended = values[:]
                for position, slot in binds:
                    extended[slot] = columns[position][row_id]
                for check in comparisons:
                    if not check(extended):
                        ok = False
                        break
                if ok:
                    stats.probe_survivors += 1
                    yield extended

    def _finalize(
        self, blocks: Iterator[List[Tuple[int, ...]]], store
    ) -> Iterator[List[Tuple[int, ...]]]:
        """Negation filter over the block pipeline, block in, block out.

        The common shape — no negations — passes blocks straight
        through: the drivers already build result tuples, so the only
        per-block cost here is one generator resume.
        """
        unscheduled = self.query.unscheduled
        negations = self.negations
        if unscheduled:
            for block in blocks:
                if block:
                    # Safety should prevent this; raised only when a
                    # row actually reaches the unbound comparisons,
                    # matching the materialized evaluator.
                    raise UnsafeDependencyError(
                        f"comparisons {list(unscheduled)} have unbound "
                        f"variables in {self.query.body}"
                    )
            return
        if not negations:
            yield from blocks
            return
        for block in blocks:
            kept = [
                values
                for values in block
                if not any(
                    inner.exists_filled(store, fill, values)
                    for inner, fill in negations
                )
            ]
            if kept:
                yield kept

    def _finalize_rows(
        self, stream: Iterator[List[int]], store
    ) -> Iterator[Tuple[int, ...]]:
        """Row-pipeline finalize (pre-vectorization semantics, used
        under :func:`row_probe_mode`)."""
        unscheduled = self.query.unscheduled
        negations = self.negations
        for values in stream:
            if unscheduled:
                raise UnsafeDependencyError(
                    f"comparisons {list(unscheduled)} have unbound "
                    f"variables in {self.query.body}"
                )
            ok = True
            for inner, fill in negations:
                if inner.exists_filled(store, fill, values):
                    ok = False
                    break
            if ok:
                yield tuple(values)

    def exists_filled(self, store, fill, outer_values) -> bool:
        """Not-exists probe seeded from an outer slot array via ``fill``
        ((inner slot, outer index) pairs)."""
        values = [0] * self.width
        for inner_slot, outer_index in fill:
            values[inner_slot] = outer_values[outer_index]
        return self.exists_values(store, values)

    def exists_values(self, store, values) -> bool:
        """Whether at least one row extends the pre-filled slot array.

        Short-circuits at the first surviving row: the single-probe
        fast path is one hash lookup, and the block pipeline stops
        after its first flushed block.
        """
        for check in self.seed_comparisons:
            if not check(values):
                return False
        if self._single_probe:
            step = self.steps[0]
            key = tuple(values[v] if s else v for s, v in step.key_parts)
            return key in store.encoded_index(step.relation, step.positions)
        if _ROW_PROBE_MODE:
            stream: Iterator[List[int]] = iter((values,))
            for step in self.steps:
                stream = self._join_rows(stream, step, store, None)
            for _ in self._finalize_rows(stream, store):
                return True
            return False
        blocks: Iterator[List[Tuple[int, ...]]] = iter(([tuple(values)],))
        for step in self.steps:
            blocks = self._join(blocks, step, store, None)
        for block in self._finalize(blocks, store):
            if block:
                return True
        return False


class CompiledQuery:
    """A conjunction compiled against a set of statically-bound variables.

    The compile captures everything that does not depend on the data:
    the join order, each step's index-key positions, the fresh-variable
    bind/check schedule, and the comparison schedule.  Evaluating is then
    a chain of index probes with no per-call planning.

    Plans are data-independent for correctness; relation sizes are only a
    tie-break heuristic captured at compile time, so one compiled query
    is safely reusable across instances and chase rounds.
    """

    __slots__ = (
        "body",
        "bound",
        "relations",
        "steps",
        "seed_comparisons",
        "unscheduled",
        "negations",
        "_fresh",
        "_single_probe",
        "_encoded",
    )

    def __init__(
        self,
        body: Conjunction,
        bound: Iterable[Variable] = (),
        instance: Optional[Instance] = None,
        first_atom: Optional[int] = None,
    ) -> None:
        self.body = body
        self.bound = frozenset(bound)
        self.relations = frozenset(a.relation for a in body.atoms)

        atoms = body.atoms
        bound_now: Set[Variable] = set(self.bound)
        pending = list(body.comparisons)
        self.seed_comparisons = tuple(
            c for c in pending if _comparison_ready(c, bound_now)
        )
        pending = [c for c in pending if c not in self.seed_comparisons]

        remaining = list(range(len(atoms)))
        order: List[int] = []
        if first_atom is not None:
            remaining.remove(first_atom)
            order.append(first_atom)
        while remaining:
            def score(i: int) -> Tuple[float, int]:
                atom = atoms[i]
                positions = tuple(
                    p
                    for p, t in enumerate(atom.terms)
                    if not isinstance(t, Variable) or t in bound_now
                )
                if instance is None:
                    return (0.0, -len(positions))
                size = instance.size(atom.relation)
                if positions:
                    # Estimated bucket size of a probe on these positions:
                    # relation size over distinct keys.  A near-key probe
                    # (T_Product on pid: ~1) beats a low-cardinality one
                    # (T_Store on (store, location): ~n/stores) even
                    # though the latter binds more positions.
                    keys = instance.key_count(atom.relation, positions)
                    estimate = size / keys if keys else 0.0
                else:
                    estimate = float(size)
                return (estimate, -len(positions))

            # Greedy: the order is scored incrementally, so variables bound
            # by earlier picks count as bound for later ones.  (Scoring
            # must happen before the pick mutates ``bound_now``, hence the
            # two-phase loop.)
            best = min(remaining, key=score)
            remaining.remove(best)
            order.append(best)
            for variable in atoms[best].variables():
                bound_now.add(variable)

        # Second pass: with the order fixed, lay out each step's statics.
        bound_now = set(self.bound)
        steps: List[_Step] = []
        for atom_index in order:
            atom = atoms[atom_index]
            positions: List[int] = []
            key_terms: List[Term] = []
            binds: List[Tuple[int, Variable]] = []
            checks: List[Tuple[int, int]] = []
            first_position: Dict[Variable, int] = {}
            for i, t in enumerate(atom.terms):
                if not isinstance(t, Variable) or t in bound_now:
                    positions.append(i)
                    key_terms.append(t)
                elif t in first_position:
                    checks.append((i, first_position[t]))
                else:
                    first_position[t] = i
                    binds.append((i, t))
            bound_now |= first_position.keys()
            ready = tuple(c for c in pending if _comparison_ready(c, bound_now))
            pending = [c for c in pending if c not in ready]
            steps.append(
                _Step(
                    atom.relation,
                    tuple(positions),
                    tuple(key_terms),
                    tuple(binds),
                    tuple(checks),
                    ready,
                )
            )
        self.steps = tuple(steps)
        self.unscheduled = tuple(pending)
        self.negations = body.negations
        # Variables the plan treats as fresh (bound by a join step).  A
        # runtime seed may not bind any of these: the plan would silently
        # overwrite the seed value instead of equality-checking it.
        self._fresh = frozenset(v for step in steps for _p, v in step.binds)
        # Fast-probe eligibility: a single atom whose fresh variables are
        # all distinct, no negation and no post-seed comparisons — then
        # existence is exactly hash-index key membership (the probe side
        # of a hash anti-join), independent of relation size.
        self._single_probe = (
            len(self.steps) == 1
            and not self.negations
            and not self.unscheduled
            and not self.steps[0].checks
            and not self.steps[0].comparisons
        )
        # Lazily-lowered columnar twin of this plan (pool-specific).
        self._encoded: Optional[_EncodedPlan] = None

    def encoded(self, pool: TermPool) -> _EncodedPlan:
        """This plan lowered onto ``pool`` (cached; rebuilt only if a
        different pool shows up, which only tests do)."""
        plan = self._encoded
        if plan is None or plan.pool is not pool:
            plan = _EncodedPlan(self, pool)
            self._encoded = plan
        return plan

    # -- evaluation --------------------------------------------------------

    def bindings(
        self,
        instance: Instance,
        seed: Optional[Binding] = None,
        delta: Optional[Set[Atom]] = None,
    ) -> Iterator[Binding]:
        """Lazily yield every binding of the body's variables.

        ``delta`` restricts the *first* join step to the given facts (the
        anchor of a delta-evaluation plan).  Consumers that mutate the
        instance while iterating must materialize first; the chase does.
        """
        store = _columnar_store(instance)
        if store is not None and not _REFERENCE_MODE:
            return self._bindings_columnar(store, seed, delta)
        binding: Binding = dict(seed) if seed else {}
        if binding and not self._fresh.isdisjoint(binding):
            raise UnsafeDependencyError(
                f"seed binds {sorted(v.name for v in self._fresh & binding.keys())} "
                f"which this plan was compiled to treat as fresh; recompile "
                f"with the seed's variables in `bound`"
            )
        for comparison in self.seed_comparisons:
            if not _check_comparison(comparison, binding):
                return iter(())
        stream: Iterator[Binding] = iter((binding,))
        for step_index, step in enumerate(self.steps):
            stream = self._join(
                stream, step, instance, delta if step_index == 0 else None
            )
        return self._finalize(stream, instance)

    @staticmethod
    def _join(
        stream: Iterator[Binding],
        step: _Step,
        instance: Instance,
        delta: Optional[Set[Atom]],
    ) -> Iterator[Binding]:
        index = instance.index(step.relation, step.positions)
        lookup = index.get
        key_terms = step.key_terms
        binds = step.binds
        checks = step.checks
        comparisons = step.comparisons
        for binding in stream:
            get = binding.get
            key = tuple(
                get(t) if isinstance(t, Variable) else t for t in key_terms
            )
            for fact in lookup(key, ()):
                if delta is not None and fact not in delta:
                    continue
                terms = fact.terms
                ok = True
                for position, bound_at in checks:
                    if terms[position] != terms[bound_at]:
                        ok = False
                        break
                if not ok:
                    continue
                extended = dict(binding)
                for position, variable in binds:
                    extended[variable] = terms[position]
                for comparison in comparisons:
                    if not _check_comparison(comparison, extended):
                        ok = False
                        break
                if ok:
                    yield extended

    def _finalize(
        self, stream: Iterator[Binding], instance: Instance
    ) -> Iterator[Binding]:
        for binding in stream:
            if self.unscheduled:
                # Safety should prevent this; treat unbound comparisons as
                # failures (raised only when a binding actually reaches
                # them, matching the materialized evaluator).
                raise UnsafeDependencyError(
                    f"comparisons {list(self.unscheduled)} have unbound "
                    f"variables in {self.body}"
                )
            if all(
                not exists(negation.inner, instance, seed=binding)
                for negation in self.negations
            ):
                yield binding

    def _seed_values(self, store, plan: _EncodedPlan, seed: Optional[Binding]):
        """Encode a decoded seed as (slot, code) pairs, with the same
        fresh-variable safety check as the decoded pipeline."""
        if not seed:
            return ()
        if not self._fresh.isdisjoint(seed):
            raise UnsafeDependencyError(
                f"seed binds {sorted(v.name for v in self._fresh & seed.keys())} "
                f"which this plan was compiled to treat as fresh; recompile "
                f"with the seed's variables in `bound`"
            )
        encode = store.encode_term
        slot_of = plan.slot_of
        return [(slot_of[v], encode(t)) for v, t in seed.items()]

    def _bindings_columnar(
        self,
        store,
        seed: Optional[Binding],
        delta: Optional[Set[Atom]],
    ) -> Iterator[Binding]:
        """Decoded-surface evaluation over the columnar kernel: encode
        the seed (and delta facts) at the edge, run the encoded plan,
        decode result rows back to bindings."""
        plan = self.encoded(store.pool)
        seed_values = self._seed_values(store, plan, seed)
        delta_rows: Optional[Set[int]] = None
        if delta is not None:
            delta_rows = set()
            if self.steps:
                first_relation = self.steps[0].relation
                row_id_of = store.row_id_of
                for fact in delta:
                    if fact.relation == first_relation:
                        row_id = row_id_of(fact)
                        if row_id is not None:
                            delta_rows.add(row_id)
        varlist = plan.varlist
        decode = store.decode_term
        for row in plan.rows(store, seed_values, delta_rows):
            yield {v: decode(code) for v, code in zip(varlist, row)}

    def exists(self, instance: Instance, seed: Optional[Binding] = None) -> bool:
        """Whether at least one binding exists — stops at the first match."""
        store = _columnar_store(instance)
        if store is not None and not _REFERENCE_MODE:
            plan = self.encoded(store.pool)
            values = [0] * plan.width
            for slot, code in self._seed_values(store, plan, seed):
                values[slot] = code
            return plan.exists_values(store, values)
        if self._single_probe:
            binding = seed or {}
            if binding and not self._fresh.isdisjoint(binding):
                for _ in self.bindings(instance, seed):  # raises the mismatch
                    return True
            for comparison in self.seed_comparisons:
                if not _check_comparison(comparison, binding):
                    return False
            step = self.steps[0]
            get = binding.get
            key = tuple(
                get(t) if isinstance(t, Variable) else t for t in step.key_terms
            )
            return key in instance.index(step.relation, step.positions)
        return any(True for _ in self.bindings(instance, seed))


_COMPILE_CACHE: Dict[Tuple[Conjunction, frozenset, Optional[int]], CompiledQuery] = {}
_COMPILE_CACHE_LIMIT = 4096


def compile_query(
    body: Conjunction,
    bound: Iterable[Variable] = (),
    instance: Optional[Instance] = None,
    first_atom: Optional[int] = None,
) -> CompiledQuery:
    """Compile (or fetch the cached compile of) a conjunction.

    The cache key is the body, the set of seed-bound variables and the
    optional anchor atom; the instance only supplies selectivity hints
    for join ordering, so a cached plan is reused across instances.
    (The chase additionally keeps per-dependency compiled objects so its
    plans can be recompiled as relations grow.)
    """
    key = (body, frozenset(bound), first_atom)
    compiled = _COMPILE_CACHE.get(key)
    if compiled is None:
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_LIMIT:
            _COMPILE_CACHE.clear()
        compiled = CompiledQuery(body, bound, instance, first_atom)
        _COMPILE_CACHE[key] = compiled
    return compiled


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

_REFERENCE_MODE = False


class reference_evaluator:
    """Context manager switching every entry point to the materialized
    reference evaluator (differential-testing support)."""

    def __enter__(self) -> None:
        global _REFERENCE_MODE
        self._previous = _REFERENCE_MODE
        _REFERENCE_MODE = True

    def __exit__(self, *_exc) -> None:
        global _REFERENCE_MODE
        _REFERENCE_MODE = self._previous


def reference_mode_active() -> bool:
    return _REFERENCE_MODE


_ROW_PROBE_MODE = False


class row_probe_mode:
    """Context manager switching encoded joins to the row-at-a-time
    probe loop (:meth:`_EncodedPlan._join_rows`).

    The block drivers' differential baseline: the e14 bench times both
    sides under it, and the probe differential suite asserts the two
    paths produce identical rows and counters.
    """

    def __enter__(self) -> None:
        global _ROW_PROBE_MODE
        self._previous = _ROW_PROBE_MODE
        _ROW_PROBE_MODE = True

    def __exit__(self, *_exc) -> None:
        global _ROW_PROBE_MODE
        _ROW_PROBE_MODE = self._previous


def evaluate_iter(
    body: Conjunction,
    instance: Instance,
    seed: Optional[Binding] = None,
) -> Iterator[Binding]:
    """Lazily iterate the bindings of ``body`` satisfying it in ``instance``.

    The generator does work only as it is consumed, so callers that stop
    early (violation scans, existence checks) never pay for the full
    join.  Do not mutate ``instance`` while consuming.
    """
    if _REFERENCE_MODE:
        return iter(_evaluate_reference(body, instance, seed=seed))
    compiled = compile_query(body, seed or (), instance)
    return compiled.bindings(instance, seed)


def evaluate(
    body: Conjunction,
    instance: Instance,
    seed: Optional[Binding] = None,
    limit: Optional[int] = None,
) -> List[Binding]:
    """All bindings of ``body``'s variables satisfying it in ``instance``.

    ``seed`` pre-binds variables (used for correlated sub-queries and for
    checking specific premise matches); ``limit`` stops the underlying
    generator pipeline as soon as that many bindings were produced.
    """
    if _REFERENCE_MODE:
        return _evaluate_reference(body, instance, seed=seed, limit=limit)
    stream = evaluate_iter(body, instance, seed=seed)
    if limit is not None:
        return list(islice(stream, limit))
    return list(stream)


def evaluate_delta(
    body: Conjunction,
    instance: Instance,
    delta: Set[Atom],
    seed: Optional[Binding] = None,
) -> List[Binding]:
    """Bindings of ``body`` that use at least one fact from ``delta``.

    Implements the classical delta-join: for each positive atom position
    ``i``, join with atom ``i`` restricted to ``delta`` and all other
    atoms unrestricted, then deduplicate.  Negations are evaluated against
    the full instance (their non-monotonicity is the rewriter's concern,
    not the evaluator's).
    """
    if _REFERENCE_MODE:
        return _evaluate_delta_reference(body, instance, delta, seed=seed)
    if not body.atoms:
        return evaluate(body, instance, seed=seed)
    relations_in_delta = {f.relation for f in delta}
    out: List[Binding] = []
    seen: Set[Tuple[Tuple[Variable, Term], ...]] = set()
    bound = frozenset(seed or ())
    for anchor_index, anchor in enumerate(body.atoms):
        if anchor.relation not in relations_in_delta:
            continue
        compiled = compile_query(body, bound, instance, first_atom=anchor_index)
        for binding in compiled.bindings(instance, seed, delta=delta):
            key = tuple(sorted(binding.items()))
            if key not in seen:
                seen.add(key)
                out.append(binding)
    return out


def exists(
    body: Conjunction, instance: Instance, seed: Optional[Binding] = None
) -> bool:
    """Whether ``body`` has at least one match in ``instance``.

    Short-circuits at the first match: the compiled pipeline stops after
    one index probe for single-atom bodies, and after the first complete
    join row otherwise.
    """
    if _REFERENCE_MODE:
        return bool(_evaluate_reference(body, instance, seed=seed, limit=1))
    compiled = compile_query(body, seed or (), instance)
    return compiled.exists(instance, seed)


def bindings_to_substitutions(bindings: Iterable[Binding]) -> List[Substitution]:
    """Convert raw binding dicts to :class:`Substitution` objects."""
    return [Substitution(b) for b in bindings]


# ---------------------------------------------------------------------------
# Reference implementation (materialized; kept for differential testing)
# ---------------------------------------------------------------------------


def _join_step_reference(
    solutions: List[Binding],
    atom: Atom,
    instance: Instance,
    bound_before: Set[Variable],
    delta: Optional[Set[Atom]] = None,
) -> List[Binding]:
    """Extend each binding with matches of ``atom`` against the instance."""
    bound_positions = [
        i
        for i, t in enumerate(atom.terms)
        if not isinstance(t, Variable) or t in bound_before
    ]
    unbound = [
        (i, t)
        for i, t in enumerate(atom.terms)
        if isinstance(t, Variable) and t not in bound_before
    ]
    index = instance.index(atom.relation, bound_positions)
    out: List[Binding] = []
    for binding in solutions:
        key = tuple(
            _resolve(atom.terms[i], binding) for i in bound_positions
        )
        for fact in index.get(key, ()):  # type: ignore[call-overload]
            if delta is not None and fact not in delta:
                continue
            extended = dict(binding)
            ok = True
            # Repeated fresh variables within the atom need an equality
            # check, which the dict-get below performs.
            for position, variable in unbound:
                value = fact.terms[position]
                current = extended.get(variable)
                if current is None:
                    extended[variable] = value
                elif current != value:
                    ok = False
                    break
            if ok:
                out.append(extended)
    return out


def _evaluate_reference(
    body: Conjunction,
    instance: Instance,
    seed: Optional[Binding] = None,
    limit: Optional[int] = None,
) -> List[Binding]:
    seed_binding: Binding = dict(seed or {})
    bound_now: Set[Variable] = set(seed_binding)
    pending_comparisons = list(body.comparisons)

    solutions: List[Binding] = [seed_binding]
    applied: List[Comparison] = []
    for comparison in pending_comparisons:
        if _comparison_ready(comparison, bound_now):
            solutions = [b for b in solutions if _check_comparison(comparison, b)]
            applied.append(comparison)
    pending_comparisons = [c for c in pending_comparisons if c not in applied]

    atoms = body.atoms
    remaining = list(range(len(atoms)))
    while remaining:
        def score(i: int) -> Tuple[int, int]:
            atom = atoms[i]
            bound_positions = sum(
                1
                for t in atom.terms
                if not isinstance(t, Variable) or t in bound_now
            )
            return (-bound_positions, instance.size(atom.relation))

        best = min(remaining, key=score)
        remaining.remove(best)
        atom = atoms[best]
        solutions = _join_step_reference(solutions, atom, instance, bound_now)
        for variable in atom.variables():
            bound_now.add(variable)
        if not solutions:
            return []
        ready = [c for c in pending_comparisons if _comparison_ready(c, bound_now)]
        for comparison in ready:
            solutions = [b for b in solutions if _check_comparison(comparison, b)]
            pending_comparisons.remove(comparison)

    if pending_comparisons:
        raise UnsafeDependencyError(
            f"comparisons {pending_comparisons} have unbound variables in {body}"
        )

    out: List[Binding] = []
    for binding in solutions:
        if all(
            not bool(_evaluate_reference(negation.inner, instance, seed=binding, limit=1))
            for negation in body.negations
        ):
            out.append(binding)
    if limit is not None:
        out = out[:limit]
    return out


def _evaluate_delta_reference(
    body: Conjunction,
    instance: Instance,
    delta: Set[Atom],
    seed: Optional[Binding] = None,
) -> List[Binding]:
    if not body.atoms:
        return _evaluate_reference(body, instance, seed=seed)
    relations_in_delta = {f.relation for f in delta}
    out: List[Binding] = []
    seen: Set[Tuple[Tuple[Variable, Term], ...]] = set()
    for anchor_index, anchor in enumerate(body.atoms):
        if anchor.relation not in relations_in_delta:
            continue
        seed_binding: Binding = dict(seed or {})
        bound_now: Set[Variable] = set(seed_binding)
        solutions = _join_step_reference(
            [seed_binding], anchor, instance, bound_now, delta=delta
        )
        if not solutions:
            continue
        for variable in anchor.variables():
            bound_now.add(variable)
        rest = [a for i, a in enumerate(body.atoms) if i != anchor_index]
        rest_body = Conjunction(rest, body.comparisons, body.negations)
        for binding in solutions:
            for full in _evaluate_reference(rest_body, instance, seed=binding):
                key = tuple(sorted(full.items()))
                if key not in seen:
                    seen.add(key)
                    out.append(full)
    return out
