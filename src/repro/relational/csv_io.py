"""Loading and saving instances as directories of CSV files.

One file per relation, named ``<relation>.csv``, with a header row of
attribute names.  Labeled nulls serialize as ``#N<id>`` and round-trip.
This gives benchmark scenarios and examples a durable on-disk form
without requiring an external database.
"""

from __future__ import annotations

import csv
import re
from pathlib import Path
from typing import Union

from repro.errors import SchemaError
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null, Term
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.types import DataType, parse_literal

__all__ = ["save_instance", "load_instance"]

_NULL_PATTERN = re.compile(r"^#N(\d+)(?:_(.*))?$")


def _render(term: Term) -> str:
    if isinstance(term, Null):
        return f"#N{term.id}_{term.hint}" if term.hint else f"#N{term.id}"
    assert isinstance(term, Constant)
    return str(term.value)


def _parse(text: str, dtype: DataType) -> Term:
    match = _NULL_PATTERN.match(text)
    if match:
        return Null(int(match.group(1)), match.group(2) or "")
    return parse_literal(text, dtype)


def save_instance(instance: Instance, directory: Union[str, Path]) -> None:
    """Write one CSV per non-empty relation into ``directory``."""
    if instance.schema is None:
        raise SchemaError("saving requires an instance with a schema")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for relation_name in instance.relations():
        relation = instance.schema.relation(relation_name)
        with open(path / f"{relation_name}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([a.name for a in relation.attributes])
            for fact in sorted(instance.facts(relation_name), key=str):
                writer.writerow([_render(t) for t in fact.terms])


def load_instance(schema: Schema, directory: Union[str, Path]) -> Instance:
    """Read every ``<relation>.csv`` found in ``directory`` for ``schema``."""
    path = Path(directory)
    instance = Instance(schema)
    for relation in schema:
        file_path = path / f"{relation.name}.csv"
        if not file_path.exists():
            continue
        with open(file_path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            if [h.strip() for h in header] != [a.name for a in relation.attributes]:
                raise SchemaError(
                    f"{file_path}: header {header} does not match "
                    f"relation {relation.name}"
                )
            for row in reader:
                if not row:
                    continue
                terms = tuple(
                    _parse(text, attribute.dtype)
                    for text, attribute in zip(row, relation.attributes)
                )
                instance.add(Atom(relation.name, terms))
    return instance
