"""Relational substrate: typed schemas, instances with nulls, evaluation.

This package replaces the PostgreSQL backing store of the original
Llunatic-based implementation with an in-memory engine exposing the same
algebraic behaviour: hash-indexed joins, anti-joins for safe negation,
comparison predicates, and delta-restricted evaluation for chase rounds.
"""

from repro.relational.csv_io import load_instance, save_instance
from repro.relational.delta import DeltaPlans, GenerationWindow, PlanCache
from repro.relational.instance import Instance
from repro.relational.query import evaluate, evaluate_delta, exists
from repro.relational.schema import Attribute, FunctionalDependency, Relation, Schema
from repro.relational.types import DataType

__all__ = [
    "Attribute",
    "DataType",
    "DeltaPlans",
    "FunctionalDependency",
    "GenerationWindow",
    "Instance",
    "PlanCache",
    "Relation",
    "Schema",
    "evaluate",
    "evaluate_delta",
    "exists",
    "load_instance",
    "save_instance",
]
