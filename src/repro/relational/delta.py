"""Shared semi-naive delta-evaluation engine.

This module is the incremental layer both chase enforcement and Datalog
view materialization stand on.  PR 2 grew the machinery inside
``chase/compiled.py`` — anchored delta plans, generation-windowed fact
iteration, recompile-on-growth — and this module extracts it so the two
consumers of the paper's hot loop share one implementation:

* :class:`~repro.chase.compiled.CompiledDependency` finds premise
  matches of tgds/egds/denials against the round's new facts, and
* :func:`repro.datalog.evaluate.materialize` runs rule bodies against
  each fixpoint iteration's new facts (classical semi-naive evaluation
  of ``Υ(I)``).

Three pieces:

:class:`PlanCache`
    Compiled-plan storage with the *recompile policy*.  A
    :class:`~repro.relational.query.CompiledQuery` join order is chosen
    from selectivity statistics captured at compile time; the cache
    recompiles a plan when the data has outgrown those statistics —
    either the watched relations doubled in size (the PR 2 rule, keeps
    recompiles logarithmic) or a probed key-set's *bucket estimate*
    (relation size over distinct keys) drifted by :data:`DRIFT_FACTOR`
    in either direction.  Drift checks use only the per-index
    distinct-key counts :class:`~repro.relational.instance.Instance`
    maintains incrementally, so a cache fetch costs O(plan steps), not a
    relation scan.

:class:`DeltaPlans`
    One conjunction's full plan plus one *anchored* plan per positive
    atom.  ``delta_matches`` implements the delta-join: for each atom
    whose relation gained facts, evaluate with that atom first and
    restricted to the delta, then deduplicate bindings across anchors.
    Every match found this way uses at least one delta fact, which is
    exactly the semi-naive guarantee (no old-old recombination).

:class:`GenerationWindow`
    A window over an instance's per-generation insertion log.  ``advance``
    returns the facts inserted since the window last moved and bumps the
    instance's generation, so consumers iterate "what changed since I
    last looked" in O(|delta|) without materializing snapshots.

All three respect :func:`repro.relational.query.reference_evaluator`
mode, falling back to the materialized reference evaluator so the
differential suites compare the full incremental pipeline against the
naive one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.logic.atoms import Atom, Conjunction
from repro.logic.terms import Term, Variable
from repro.relational.instance import Instance
from repro.relational.kernel import ColumnarInstance, RowMask
from repro.relational import query as _query
from repro.relational.query import (
    Binding,
    CompiledQuery,
    evaluate,
    evaluate_delta,
    exists,
)

__all__ = [
    "PlanCache",
    "DeltaPlans",
    "GenerationWindow",
    "group_rows",
    "mask_rows",
]

#: Encoded delta: relation -> set of row ids inserted this window.
RowDelta = Dict[str, Set[int]]


def group_rows(rows: Iterable[Tuple[str, int]]) -> RowDelta:
    """Group (relation, row id) pairs into the encoded delta shape."""
    grouped: RowDelta = {}
    for relation, row_id in rows:
        grouped.setdefault(relation, set()).add(row_id)
    return grouped


def mask_rows(delta_rows: RowDelta) -> Dict[str, RowMask]:
    """Wrap an encoded delta's row-id sets as :class:`RowMask` windows.

    A mask precomputes its span/contiguity once, so every anchored probe
    in the pass restricts index buckets by identity or bisect slice
    instead of per-row membership — build the masks once per round (or
    fixpoint pass) and hand the dict to every plan that evaluates
    against that delta.
    """
    return {
        relation: rows if isinstance(rows, RowMask) else RowMask(rows)
        for relation, rows in delta_rows.items()
    }


class PlanCache:
    """Compiled plans plus the shared recompile policy.

    Plans are keyed by an arbitrary hashable ``key`` chosen by the
    consumer (a dependency keys its premise, anchors and disjunct
    probes; the materializer keys each rule's body and anchors).  A
    cached plan is returned as long as its compile-time statistics are
    still trustworthy:

    * **growth** — the watched relations' total size is below twice the
      size at compile time (with a floor so tiny instances never churn);
    * **selectivity** — no probed key-set's bucket estimate
      (``size / distinct keys``) moved by more than
      :data:`DRIFT_FACTOR` either way.  Sizes can stay inside the
      doubling budget while a key collapses (many duplicates on a
      formerly near-unique column); the drift rule catches that case,
      which pure size tracking cannot (ROADMAP "Plan statistics").
    """

    __slots__ = ("_plans", "compiles", "recompiles", "served")

    #: Below this many facts any plan is fine; avoids churn on tiny data.
    RECOMPILE_FLOOR = 8

    #: Bucket-estimate ratio past which a plan's join order is distrusted.
    DRIFT_FACTOR = 4.0

    def __init__(self) -> None:
        # key -> (plan, total size at compile, per-step bucket estimates)
        self._plans: Dict[
            object,
            Tuple[CompiledQuery, int, Dict[Tuple[str, Tuple[int, ...]], float]],
        ] = {}
        #: Plans built from scratch / rebuilt under the recompile policy /
        #: served from cache — the ``plan.*`` metrics the flight recorder
        #: harvests (a recompile counts in both ``compiles`` and
        #: ``recompiles``).
        self.compiles = 0
        self.recompiles = 0
        self.served = 0

    def plan(
        self,
        key: object,
        body: Conjunction,
        bound: frozenset,
        instance: Instance,
        first_atom: Optional[int] = None,
    ) -> CompiledQuery:
        entry = self._plans.get(key)
        size = instance.size
        current = sum(size(r) for r in {a.relation for a in body.atoms})
        if entry is not None:
            plan, compiled_at, estimates = entry
            if current < 2 * max(compiled_at, self.RECOMPILE_FLOOR) and not (
                self._drifted(estimates, instance)
            ):
                self.served += 1
                return plan
            self.recompiles += 1
        self.compiles += 1
        plan = CompiledQuery(body, bound, instance, first_atom)
        self._plans[key] = (plan, current, self._snapshot(plan, instance))
        return plan

    def _snapshot(
        self, plan: CompiledQuery, instance: Instance
    ) -> Dict[Tuple[str, Tuple[int, ...]], float]:
        """Bucket estimates of every index probe the plan performs."""
        out: Dict[Tuple[str, Tuple[int, ...]], float] = {}
        for step in plan.steps:
            if not step.positions:
                continue
            keys = instance.key_count(step.relation, step.positions)
            if keys:
                out[(step.relation, step.positions)] = (
                    instance.size(step.relation) / keys
                )
        return out

    def _drifted(
        self,
        estimates: Dict[Tuple[str, Tuple[int, ...]], float],
        instance: Instance,
    ) -> bool:
        """Whether any probed key-set's selectivity left its trust band.

        Consults only statistics that are O(1) to read (live index key
        counts or version-fresh cached scans) — a fetch must never scan.
        """
        for (relation, positions), compiled_estimate in estimates.items():
            size = instance.size(relation)
            if size < self.RECOMPILE_FLOOR:
                continue
            keys = instance.cached_key_count(relation, positions)
            if not keys:
                continue
            estimate = size / keys
            low, high = sorted((estimate, max(compiled_estimate, 1.0)))
            if high >= low * self.DRIFT_FACTOR:
                return True
        return False

    def __len__(self) -> int:
        return len(self._plans)


class DeltaPlans:
    """Full and per-anchor delta plans for one conjunction.

    ``bound`` names the variables a runtime seed will always bind (the
    chase seeds satisfaction probes with premise variables; rule bodies
    bind nothing).  Plans live in a :class:`PlanCache` — pass a shared
    one to give several conjunctions (e.g. all plans of one dependency)
    a single recompile policy, or omit it for a private cache.
    """

    __slots__ = ("body", "bound", "_cache", "_key")

    def __init__(
        self,
        body: Conjunction,
        bound: Iterable[Variable] = (),
        cache: Optional[PlanCache] = None,
        key: object = None,
    ) -> None:
        self.body = body
        self.bound = frozenset(bound)
        self._cache = cache if cache is not None else PlanCache()
        self._key = key if key is not None else id(self)

    # -- evaluation --------------------------------------------------------

    def matches(
        self, instance: Instance, seed: Optional[Binding] = None
    ) -> List[Binding]:
        """All bindings of the body (no delta restriction)."""
        if _query.reference_mode_active():
            return evaluate(self.body, instance, seed=seed)
        plan = self._cache.plan((self._key, "full"), self.body, self.bound, instance)
        return list(plan.bindings(instance, seed))

    def delta_matches(
        self,
        instance: Instance,
        delta: Set[Atom],
        seed: Optional[Binding] = None,
    ) -> List[Binding]:
        """Bindings using at least one ``delta`` fact (the semi-naive join).

        One anchored plan per positive atom whose relation gained facts;
        bindings are deduplicated across anchors (a match touching two
        delta facts is found once per anchor).
        """
        if _query.reference_mode_active():
            return evaluate_delta(self.body, instance, delta, seed=seed)
        if not self.body.atoms:
            return self.matches(instance, seed)
        relations_in_delta = {fact.relation for fact in delta}
        out: List[Binding] = []
        seen: Set[Tuple[Tuple[Variable, Term], ...]] = set()
        for anchor_index, anchor in enumerate(self.body.atoms):
            if anchor.relation not in relations_in_delta:
                continue
            plan = self._cache.plan(
                (self._key, "anchor", anchor_index),
                self.body,
                self.bound,
                instance,
                first_atom=anchor_index,
            )
            for binding in plan.bindings(instance, seed, delta=delta):
                key = tuple(sorted(binding.items()))
                if key not in seen:
                    seen.add(key)
                    out.append(binding)
        return out

    def anchor_matches(
        self,
        instance: Instance,
        anchor_index: int,
        restrict: Set[Atom],
        seed: Optional[Binding] = None,
    ) -> List[Binding]:
        """Raw bindings of the plan anchored at one atom, the anchor
        restricted to ``restrict``.

        This is one shard of :meth:`delta_matches`: the union over all
        anchors (whose relation gained facts) of the union over a
        partition of the delta equals the full delta-match set.  No
        cross-anchor deduplication happens here — the caller merging
        shards owns it — which is what lets the parallel chase hand each
        (anchor, delta-chunk) pair to a different worker.
        """
        plan = self._cache.plan(
            (self._key, "anchor", anchor_index),
            self.body,
            self.bound,
            instance,
            first_atom=anchor_index,
        )
        return list(plan.bindings(instance, seed, delta=restrict))

    def warm(self, instance: Instance) -> None:
        """Compile every anchored plan and build the indexes it probes.

        The parallel chase calls this on the parent *before* forking its
        replica workers: plans and hash indexes are inherited
        copy-on-write, so N workers don't each rebuild the same indexes
        that the serial chase builds once.  Over the columnar kernel the
        encoded plans are lowered here too, which interns every literal
        the body mentions — forked workers then never grow the pool.
        """
        columnar = isinstance(instance, ColumnarInstance)
        for anchor_index in range(len(self.body.atoms)):
            plan = self._cache.plan(
                (self._key, "anchor", anchor_index),
                self.body,
                self.bound,
                instance,
                first_atom=anchor_index,
            )
            if columnar:
                encoded = plan.encoded(instance.pool)
                for step in encoded.steps:
                    instance.encoded_index(step.relation, step.positions)
            else:
                for step in plan.steps:
                    instance.index(step.relation, step.positions)

    # -- encoded evaluation (columnar kernel fast path) --------------------

    def varlist(self, store) -> Tuple[Variable, ...]:
        """Result-row layout of the encoded plans (bound + fresh
        variables in name order; identical across anchors)."""
        plan = self._cache.plan((self._key, "full"), self.body, self.bound, store)
        return plan.encoded(store.pool).varlist

    def matches_encoded(self, store) -> List[Tuple[int, ...]]:
        """All result rows as code tuples (no Atom or dict objects)."""
        plan = self._cache.plan((self._key, "full"), self.body, self.bound, store)
        out: List[Tuple[int, ...]] = []
        for block in plan.encoded(store.pool).blocks(store):
            out += block
        return out

    def delta_matches_encoded(
        self, store, delta_rows: RowDelta
    ) -> List[Tuple[int, ...]]:
        """Encoded semi-naive join: rows touching at least one delta row,
        deduplicated across anchors by raw row tuple (the row is the
        binding, in varlist order, so tuple equality is binding
        equality).  ``delta_rows`` values may be row-id sets or
        pre-built :class:`RowMask` windows (see :func:`mask_rows`);
        sets are wrapped here, once per relation, shared across a
        self-join's anchors."""
        if not self.body.atoms:
            return self.matches_encoded(store)
        masks: Dict[str, RowMask] = {}
        out: List[Tuple[int, ...]] = []
        seen: Set[Tuple[int, ...]] = set()
        for anchor_index, anchor in enumerate(self.body.atoms):
            rows = masks.get(anchor.relation)
            if rows is None:
                rows = delta_rows.get(anchor.relation)
                if not rows:
                    continue
                if not isinstance(rows, RowMask):
                    rows = RowMask(rows)
                masks[anchor.relation] = rows
            plan = self._cache.plan(
                (self._key, "anchor", anchor_index),
                self.body,
                self.bound,
                store,
                first_atom=anchor_index,
            )
            add = seen.add
            append = out.append
            for block in plan.encoded(store.pool).blocks(store, delta=rows):
                for row in block:
                    if row not in seen:
                        add(row)
                        append(row)
        return out

    def anchor_matches_encoded(
        self, store, anchor_index: int, restrict
    ) -> List[Tuple[int, ...]]:
        """One shard of :meth:`delta_matches_encoded` (no cross-anchor
        dedup — the merging caller owns it, as in :meth:`anchor_matches`).

        ``restrict`` is a row-id set or a pre-built :class:`RowMask`
        (sharder chunks arrive as sets and are wrapped by the encoded
        plan)."""
        plan = self._cache.plan(
            (self._key, "anchor", anchor_index),
            self.body,
            self.bound,
            store,
            first_atom=anchor_index,
        )
        out: List[Tuple[int, ...]] = []
        for block in plan.encoded(store.pool).blocks(store, delta=restrict):
            out += block
        return out

    def exists_encoded(
        self, store, outer_varlist: Tuple[Variable, ...], row: Tuple[int, ...]
    ) -> bool:
        """Existence probe seeded from an encoded outer row (the chase's
        satisfaction check: ``row`` is aligned to ``outer_varlist``)."""
        plan = self._cache.plan((self._key, "full"), self.body, self.bound, store)
        encoded = plan.encoded(store.pool)
        return encoded.exists_filled(
            store, encoded.fill_for(outer_varlist), row
        )

    def exists(self, instance: Instance, seed: Optional[Binding] = None) -> bool:
        """Whether the body has at least one match (short-circuits)."""
        if _query.reference_mode_active():
            return exists(self.body, instance, seed=seed)
        plan = self._cache.plan((self._key, "full"), self.body, self.bound, instance)
        return plan.exists(instance, seed)

    def relations(self) -> frozenset:
        """Relations of the positive atoms (delta anchors can only be these)."""
        return frozenset(atom.relation for atom in self.body.atoms)


class GenerationWindow:
    """A moving window over an instance's insertion generations.

    Each :meth:`advance` call returns the facts inserted since the
    window last advanced (initially: since ``since``) and opens a fresh
    generation, so facts the consumer inserts *after* the call land in
    the next window.  This is the iteration discipline of both the chase
    round loop and the semi-naive fixpoint loop: evaluate against the
    previous iteration's insertions only.
    """

    __slots__ = ("instance", "_since")

    def __init__(self, instance: Instance, since: Optional[int] = None) -> None:
        self.instance = instance
        self._since = instance.current_generation if since is None else since

    def advance(self) -> Set[Atom]:
        """Facts inserted since the last advance; opens a new generation."""
        delta = set(self.instance.facts_since(self._since))
        self._since = self.instance.bump_generation()
        return delta

    def advance_rows(self) -> List[Tuple[str, int]]:
        """Encoded :meth:`advance`: (relation, row id) pairs instead of
        decoded atoms (columnar instances only)."""
        rows = self.instance.rows_since(self._since)
        self._since = self.instance.bump_generation()
        return rows

    @property
    def since(self) -> int:
        return self._since
