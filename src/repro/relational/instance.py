"""Database instances: sets of facts with labeled nulls and hash indexes.

An :class:`Instance` stores ground atoms (facts) per relation.  It is the
in-memory substrate that replaces the PostgreSQL backend of Llunatic in
the original system: the chase and the query evaluator only need

* fast insertion with duplicate elimination,
* hash indexes on arbitrary column subsets (built lazily, invalidated on
  write),
* *generation* tracking, so the chase can restrict premise evaluation to
  matches involving recently-added facts (the delta trick), and
* bulk null replacement, the mutation performed by egd chase steps.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import SchemaError
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null, Term
from repro.relational.schema import Schema

__all__ = ["Instance", "ProbeView"]

_IndexKey = Tuple[str, Tuple[int, ...]]


class Instance:
    """A set of ground facts, organised per relation.

    Facts are :class:`~repro.logic.atoms.Atom` objects whose terms are
    constants or labeled nulls (never variables).  The instance optionally
    validates facts against a :class:`~repro.relational.schema.Schema`.
    """

    def __init__(self, schema: Optional[Schema] = None) -> None:
        self.schema = schema
        self._facts: Dict[str, Set[Atom]] = defaultdict(set)
        # Generation at which each fact was inserted (for delta evaluation).
        self._generation: Dict[Atom, int] = {}
        self._current_generation = 0
        # Per-generation insertion lists: generation -> facts recorded at
        # that generation.  Entries are never removed eagerly (removal is
        # rare); readers filter through ``_generation``, which is the
        # source of truth for liveness and current generation of a fact.
        self._insertion_log: Dict[int, List[Atom]] = defaultdict(list)
        self._indexes: Dict[_IndexKey, Dict[Tuple[Term, ...], List[Atom]]] = {}
        self._version = 0
        self._index_versions: Dict[_IndexKey, int] = {}
        # Relation -> index keys kept incrementally up to date by add().
        self._live_index_keys: Dict[str, List[_IndexKey]] = {}
        # Per-relation write counters: index validity is per relation, so
        # writes to one relation never invalidate another's indexes.
        self._relation_versions: Dict[str, int] = defaultdict(int)
        # Scan-derived distinct-key counts, stamped with the relation
        # version they were computed at.  Live indexes supersede this
        # cache (their key count is just len(index), maintained on every
        # insert); the cache only serves key-sets nobody probes.
        self._key_count_cache: Dict[_IndexKey, Tuple[int, int]] = {}
        # Guards lazy index construction only.  Reads of a built index
        # are lock-free; the parallel chase fans read-only enumeration
        # across threads, and two threads lazily building the same index
        # must not both register it as live (add() would then append new
        # facts to it twice).
        self._index_lock = threading.Lock()
        #: Lazy index constructions performed by this instance — the
        #: ``instance.index_builds`` metric (rebuild churn is one of the
        #: costs the columnar-kernel work needs visibility into).
        self.index_builds = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_index_lock"]  # locks do not pickle
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._index_lock = threading.Lock()

    # -- mutation ----------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Insert a fact; returns True when it was new."""
        if not fact.is_ground():
            raise SchemaError(f"cannot insert non-ground atom {fact}")
        if self.schema is not None and fact.relation in self.schema:
            self.schema.relation(fact.relation).check_fact(fact.terms)
        elif self.schema is not None:
            raise SchemaError(
                f"fact {fact} does not belong to schema {self.schema.name!r}"
            )
        bucket = self._facts[fact.relation]
        if fact in bucket:
            return False
        bucket.add(fact)
        self._generation[fact] = self._current_generation
        self._insertion_log[self._current_generation].append(fact)
        self._version += 1
        self._relation_versions[fact.relation] += 1
        # Maintain live indexes incrementally: a full rebuild per write
        # would make the chase quadratic (one satisfaction probe per
        # inserted fact, each rebuilding O(relation) indexes).
        for key in self._live_index_keys.get(fact.relation, ()):  # type: ignore[union-attr]
            index = self._indexes[key]
            index[tuple(fact.terms[i] for i in key[1])].append(fact)
            self._index_versions[key] = self._relation_versions[fact.relation]
        return True

    def add_all(self, facts: Iterable[Atom]) -> int:
        """Insert many facts; returns how many were new."""
        added = 0
        for fact in facts:
            if self.add(fact):
                added += 1
        return added

    def add_row(self, relation: str, *values) -> bool:
        """Convenience: insert a fact from raw Python values / terms."""
        terms = tuple(
            v if isinstance(v, (Constant, Null)) else Constant(v) for v in values
        )
        return self.add(Atom(relation, terms))

    def remove(self, fact: Atom) -> bool:
        """Delete a fact; returns True when it was present."""
        bucket = self._facts.get(fact.relation)
        if bucket is None or fact not in bucket:
            return False
        bucket.remove(fact)
        self._generation.pop(fact, None)
        self._version += 1
        self._relation_versions[fact.relation] += 1
        self._drop_indexes(fact.relation)
        return True

    def _drop_indexes(self, relation: str) -> None:
        """Invalidate cached indexes of one relation (removals are rare;
        insertions are maintained incrementally instead)."""
        for key in self._live_index_keys.pop(relation, ()):
            self._indexes.pop(key, None)
            self._index_versions.pop(key, None)

    def bump_generation(self) -> int:
        """Start a new insertion generation; returns the new generation id.

        Facts inserted from now on are "newer than" the returned id minus
        one; :meth:`facts_since` retrieves them.
        """
        self._current_generation += 1
        return self._current_generation

    # -- inspection -----------------------------------------------------------

    def relations(self) -> List[str]:
        """Relation names with at least one fact."""
        return [name for name, bucket in self._facts.items() if bucket]

    def facts(self, relation: str) -> FrozenSet[Atom]:
        return frozenset(self._facts.get(relation, ()))

    def _log_entries(self, generation: int) -> Iterable[Atom]:
        """Facts recorded at exactly ``generation`` (may contain stale or
        duplicate entries; :meth:`facts_since` filters).  Kept as a hook so
        tests can instrument how much work a delta scan performs."""
        return self._insertion_log.get(generation, ())

    def facts_since(self, generation: int, relation: Optional[str] = None) -> List[Atom]:
        """Facts inserted at or after ``generation``.

        O(|delta|): reads the per-generation insertion lists instead of
        scanning the whole instance, so chase rounds pay for what the
        previous round created, not for everything ever inserted.
        """
        current_generation = self._generation.get
        out: List[Atom] = []
        seen: Set[Atom] = set()
        for gen in range(max(generation, 0), self._current_generation + 1):
            for fact in self._log_entries(gen):
                if current_generation(fact) != gen or fact in seen:
                    continue
                if relation is not None and fact.relation != relation:
                    continue
                seen.add(fact)
                out.append(fact)
        return out

    def generation_of(self, fact: Atom) -> int:
        return self._generation.get(fact, 0)

    @property
    def current_generation(self) -> int:
        return self._current_generation

    @property
    def version(self) -> int:
        """Monotone write counter (used for index invalidation)."""
        return self._version

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts.get(fact.relation, ())

    def __iter__(self) -> Iterator[Atom]:
        for bucket in self._facts.values():
            yield from bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._facts.values())

    def size(self, relation: Optional[str] = None) -> int:
        if relation is None:
            return len(self)
        return len(self._facts.get(relation, ()))

    def nulls(self) -> Set[Null]:
        """All labeled nulls occurring anywhere in the instance."""
        out: Set[Null] = set()
        for fact in self:
            for term in fact.terms:
                if isinstance(term, Null):
                    out.add(term)
        return out

    def is_ground_complete(self) -> bool:
        """True when the instance contains no labeled nulls."""
        return not any(
            isinstance(t, Null) for fact in self for t in fact.terms
        )

    # -- indexes -----------------------------------------------------------------

    def index(
        self, relation: str, positions: Sequence[int]
    ) -> Mapping[Tuple[Term, ...], List[Atom]]:
        """A hash index mapping value-tuples at ``positions`` to facts.

        Indexes are cached and rebuilt lazily when the instance changed
        since the index was built.
        """
        key: _IndexKey = (relation, tuple(positions))
        if self._index_versions.get(key) == self._relation_versions[relation]:
            return self._indexes[key]
        with self._index_lock:
            # Re-check under the lock: another thread may have built the
            # index while this one waited (parallel match enumeration).
            if self._index_versions.get(key) == self._relation_versions[relation]:
                return self._indexes[key]
            built: Dict[Tuple[Term, ...], List[Atom]] = defaultdict(list)
            for fact in self._facts.get(relation, ()):
                built[tuple(fact.terms[i] for i in key[1])].append(fact)
            self.index_builds += 1
            self._indexes[key] = built
            self._index_versions[key] = self._relation_versions[relation]
            live = self._live_index_keys.setdefault(relation, [])
            if key not in live:
                live.append(key)
            return built

    def key_count(self, relation: str, positions: Sequence[int]) -> int:
        """Distinct value-tuples at ``positions`` — a selectivity estimate.

        ``size(relation) / key_count`` approximates the bucket a probe on
        those positions will scan; the query planner uses it to prefer
        near-key probes over low-cardinality ones, and the shared
        recompile policy (:class:`repro.relational.delta.PlanCache`)
        watches it for selectivity drift.

        Reuses a cached index when one is current, but never *builds*
        one: planning scores many candidate position sets that will never
        be probed, and a full index per candidate would be registered as
        live and then maintained on every future insert.  Scan results
        are memoized against the relation's write version, so repeated
        planner calls between writes cost O(1).
        """
        key: _IndexKey = (relation, tuple(positions))
        version = self._relation_versions[relation]
        if self._index_versions.get(key) == version:
            return len(self._indexes[key])
        cached = self._key_count_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        seen: Set[Tuple[Term, ...]] = set()
        for fact in self._facts.get(relation, ()):
            seen.add(tuple(fact.terms[i] for i in key[1]))
        self._key_count_cache[key] = (version, len(seen))
        return len(seen)

    def cached_key_count(
        self, relation: str, positions: Sequence[int]
    ) -> Optional[int]:
        """Distinct-key count if it is O(1) to read, else ``None``.

        A live hash index *is* an incrementally-maintained distinct-key
        count (``len(index)`` — :meth:`add` appends to it on every
        insert), and a version-fresh scan memo is equally free.  Callers
        on hot paths — the plan cache's per-fetch drift check — use this
        so statistics reads never degenerate into relation scans.
        """
        key: _IndexKey = (relation, tuple(positions))
        version = self._relation_versions[relation]
        if self._index_versions.get(key) == version:
            return len(self._indexes[key])
        cached = self._key_count_cache.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        return None

    # -- null handling -------------------------------------------------------------

    def apply_null_map(self, mapping: Mapping[Null, Term]) -> int:
        """Replace nulls throughout the instance; returns #facts rewritten.

        This is the bulk mutation behind egd chase steps: when an egd
        equates a null with another term, every occurrence of the null is
        replaced.  Facts that become duplicates collapse (set semantics).
        """
        if not mapping:
            return 0
        rewritten = 0
        for relation, bucket in list(self._facts.items()):
            replacements: List[Tuple[Atom, Atom, int]] = []
            for fact in bucket:
                new_terms = tuple(
                    mapping.get(t, t) if isinstance(t, Null) else t
                    for t in fact.terms
                )
                if new_terms != fact.terms:
                    generation = self._generation.get(fact, self._current_generation)
                    replacements.append((fact, Atom(relation, new_terms), generation))
            for old, _new, _generation in replacements:
                bucket.remove(old)
                self._generation.pop(old, None)
            for _old, new, generation in replacements:
                if new not in bucket:
                    bucket.add(new)
                    self._generation[new] = generation
                    self._insertion_log[generation].append(new)
                else:
                    # Collapsed onto an existing fact; keep the earliest
                    # generation so delta evaluation never misses it.
                    kept = min(self._generation.get(new, generation), generation)
                    if kept != self._generation.get(new):
                        self._insertion_log[kept].append(new)
                    self._generation[new] = kept
                rewritten += 1
            if replacements:
                self._version += 1
                self._relation_versions[relation] += 1
                self._drop_indexes(relation)
        return rewritten

    # -- copies / conversion -------------------------------------------------------

    def copy(self) -> "Instance":
        """An independent copy sharing the (immutable) facts."""
        clone = Instance(self.schema)
        for relation, bucket in self._facts.items():
            clone._facts[relation] = set(bucket)
        clone._generation = dict(self._generation)
        for generation, inserted in self._insertion_log.items():
            clone._insertion_log[generation] = list(inserted)
        clone._current_generation = self._current_generation
        clone._version = self._version
        return clone

    def restricted_to(self, relations: Iterable[str]) -> "Instance":
        """A copy containing only the given relations (schema dropped)."""
        keep = set(relations)
        clone = Instance()
        for relation in keep:
            for fact in self._facts.get(relation, ()):
                clone.add(fact)
        return clone

    def to_atoms(self) -> List[Atom]:
        return list(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        mine = {r: b for r, b in self._facts.items() if b}
        theirs = {r: b for r, b in other._facts.items() if b}
        return mine == theirs

    def __str__(self) -> str:
        lines = []
        for relation in sorted(self._facts):
            bucket = self._facts[relation]
            if not bucket:
                continue
            lines.append(f"{relation} ({len(bucket)} facts)")
            for fact in sorted(bucket, key=str)[:20]:
                lines.append(f"  {fact}")
            if len(bucket) > 20:
                lines.append(f"  ... {len(bucket) - 20} more")
        return "\n".join(lines) if lines else "(empty instance)"

    def __repr__(self) -> str:
        return f"Instance({len(self)} facts, {len(self.relations())} relations)"

    def probe_view(self) -> "ProbeView":
        """A read-only view of this instance for parallel enumeration."""
        return ProbeView(self)


class ProbeView:
    """Read-only facade over an :class:`Instance` for chase workers.

    The parallel chase's enumerate phase hands the working instance to
    worker threads (or, via a forked replica, worker processes).  Workers
    must never mutate it — enforcement is the serial merge phase's job —
    so they receive this view, which exposes exactly the query surface
    the compiled evaluator and plan cache consume (hash indexes, sizes,
    key counts, generation-window reads) and nothing that writes facts.

    Lazy *internal* caching (index builds, key-count memos) still happens
    on the underlying instance; those paths are idempotent and guarded by
    the instance's index lock, so concurrent readers are safe.
    """

    __slots__ = ("_instance",)

    def __init__(self, instance: Instance) -> None:
        self._instance = instance

    # -- the query surface (delegates) -------------------------------------

    def index(
        self, relation: str, positions: Sequence[int]
    ) -> Mapping[Tuple[Term, ...], List[Atom]]:
        return self._instance.index(relation, positions)

    def size(self, relation: Optional[str] = None) -> int:
        return self._instance.size(relation)

    def key_count(self, relation: str, positions: Sequence[int]) -> int:
        return self._instance.key_count(relation, positions)

    def cached_key_count(
        self, relation: str, positions: Sequence[int]
    ) -> Optional[int]:
        return self._instance.cached_key_count(relation, positions)

    def facts(self, relation: str) -> FrozenSet[Atom]:
        return self._instance.facts(relation)

    def facts_since(
        self, generation: int, relation: Optional[str] = None
    ) -> List[Atom]:
        return self._instance.facts_since(generation, relation)

    def relations(self) -> List[str]:
        return self._instance.relations()

    @property
    def current_generation(self) -> int:
        return self._instance.current_generation

    @property
    def version(self) -> int:
        return self._instance.version

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._instance

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._instance)

    def __len__(self) -> int:
        return len(self._instance)

    # -- the encoded surface (columnar kernel delegates) -------------------
    #
    # When the underlying store is a ColumnarInstance these expose the
    # encoded probe surface to workers; over a set-based Instance they
    # simply fail with AttributeError, which no caller reaches because
    # plan dispatch picks the encoded path only for columnar stores.

    @property
    def pool(self):
        return self._instance.pool

    @property
    def kernel_stats(self):
        return self._instance.kernel_stats

    def encoded_index(self, relation: str, positions: Sequence[int]):
        return self._instance.encoded_index(relation, positions)

    def columns(self, relation: str):
        return self._instance.columns(relation)

    def row_values(self, relation: str, row_id: int):
        return self._instance.row_values(relation, row_id)

    def live_row_ids(self, relation: str) -> List[int]:
        return self._instance.live_row_ids(relation)

    def rows_since(
        self, generation: int, relation: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        return self._instance.rows_since(generation, relation)

    def export_rows(self, rows):
        return self._instance.export_rows(rows)

    def decode_term(self, code: int) -> Term:
        return self._instance.decode_term(code)

    def encode_term(self, term: Term) -> int:
        # Interning is append-only and thread-safe; encoding through a
        # read-only view does not mutate any fact state.
        return self._instance.encode_term(term)

    def row_id_of(self, fact: Atom) -> Optional[int]:
        return self._instance.row_id_of(fact)

    def __repr__(self) -> str:
        return f"ProbeView({self._instance!r})"
