"""Substitutions: finite maps from variables to terms.

A substitution drives every symbolic operation in the system: applying a
homomorphism found by the chase, unfolding a view body, standardizing a
dependency apart, or unifying two atoms.  Substitutions are immutable;
all "mutating" operations return a new substitution.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.errors import LogicError
from repro.logic.atoms import Atom, Comparison, Conjunction, Equality, NegatedConjunction
from repro.logic.terms import Term, Variable

__all__ = ["Substitution", "unify_atoms", "match_atom"]


class Substitution:
    """An immutable map ``Variable -> Term``.

    Application is *non-recursive*: the image of a variable is used as-is,
    it is not itself substituted again.  Use :meth:`compose` to chain.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None) -> None:
        self._map: Dict[Variable, Term] = dict(mapping or {})
        for key in self._map:
            if not isinstance(key, Variable):
                raise LogicError(f"substitution keys must be variables, got {key!r}")

    # -- basic protocol ------------------------------------------------------

    def __contains__(self, variable: Variable) -> bool:
        return variable in self._map

    def __getitem__(self, variable: Variable) -> Term:
        return self._map[variable]

    def get(self, variable: Variable, default: Optional[Term] = None):
        return self._map.get(variable, default)

    def __len__(self) -> int:
        return len(self._map)

    def __iter__(self):
        return iter(self._map)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and other._map == self._map

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def items(self) -> Iterable[Tuple[Variable, Term]]:
        return self._map.items()

    def domain(self) -> frozenset:
        return frozenset(self._map)

    def __repr__(self) -> str:
        inside = ", ".join(f"{k}->{v}" for k, v in sorted(self._map.items()))
        return f"{{{inside}}}"

    # -- construction ----------------------------------------------------------

    @classmethod
    def empty(cls) -> "Substitution":
        return cls()

    def bind(self, variable: Variable, term: Term) -> "Substitution":
        """Return a copy with ``variable -> term`` added.

        Raises :class:`LogicError` on a conflicting existing binding.
        """
        existing = self._map.get(variable)
        if existing is not None and existing != term:
            raise LogicError(
                f"conflicting binding for {variable}: {existing} vs {term}"
            )
        new_map = dict(self._map)
        new_map[variable] = term
        return Substitution(new_map)

    def try_bind(self, variable: Variable, term: Term) -> Optional["Substitution"]:
        """Like :meth:`bind` but returns ``None`` on conflict."""
        existing = self._map.get(variable)
        if existing is not None:
            return self if existing == term else None
        new_map = dict(self._map)
        new_map[variable] = term
        return Substitution(new_map)

    def merge(self, other: "Substitution") -> Optional["Substitution"]:
        """Union of two substitutions, or ``None`` if they conflict."""
        new_map = dict(self._map)
        for variable, term in other.items():
            existing = new_map.get(variable)
            if existing is not None and existing != term:
                return None
            new_map[variable] = term
        return Substitution(new_map)

    def compose(self, then: "Substitution") -> "Substitution":
        """``self`` followed by ``then``: ``x -> then(self(x))``.

        Variables bound only in ``then`` are carried over.
        """
        new_map: Dict[Variable, Term] = {}
        for variable, term in self._map.items():
            new_map[variable] = then.apply_term(term)
        for variable, term in then.items():
            new_map.setdefault(variable, term)
        return Substitution(new_map)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Keep only bindings for ``variables``."""
        keep = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v in keep})

    # -- application -----------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        if isinstance(term, Variable):
            return self._map.get(term, term)
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        return Atom(atom.relation, tuple(self.apply_term(t) for t in atom.terms))

    def apply_comparison(self, comparison: Comparison) -> Comparison:
        return Comparison(
            comparison.op,
            self.apply_term(comparison.left),
            self.apply_term(comparison.right),
        )

    def apply_equality(self, equality: Equality) -> Equality:
        return Equality(self.apply_term(equality.left), self.apply_term(equality.right))

    def apply_conjunction(self, conjunction: Conjunction) -> Conjunction:
        return Conjunction(
            tuple(self.apply_atom(a) for a in conjunction.atoms),
            tuple(self.apply_comparison(c) for c in conjunction.comparisons),
            tuple(self.apply_negation(n) for n in conjunction.negations),
        )

    def apply_negation(self, negation: NegatedConjunction) -> NegatedConjunction:
        return NegatedConjunction(self.apply_conjunction(negation.inner))

    def apply(
        self,
        obj: Union[Term, Atom, Comparison, Equality, Conjunction, NegatedConjunction],
    ):
        """Polymorphic application, dispatched on the argument type."""
        if isinstance(obj, Atom):
            return self.apply_atom(obj)
        if isinstance(obj, Comparison):
            return self.apply_comparison(obj)
        if isinstance(obj, Equality):
            return self.apply_equality(obj)
        if isinstance(obj, Conjunction):
            return self.apply_conjunction(obj)
        if isinstance(obj, NegatedConjunction):
            return self.apply_negation(obj)
        return self.apply_term(obj)


def match_atom(
    pattern: Atom, fact: Atom, seed: Optional[Substitution] = None
) -> Optional[Substitution]:
    """One-way matching of ``pattern`` against a ground ``fact``.

    Extends ``seed`` so that ``seed(pattern) == fact``, treating constants
    and nulls in the pattern as rigid.  Returns ``None`` when no such
    extension exists.  This is the elementary operation of premise
    evaluation and homomorphism search.
    """
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return None
    current = seed if seed is not None else Substitution.empty()
    for pattern_term, fact_term in zip(pattern.terms, fact.terms):
        if isinstance(pattern_term, Variable):
            bound = current.try_bind(pattern_term, fact_term)
            if bound is None:
                return None
            current = bound
        elif pattern_term != fact_term:
            return None
    return current


def unify_atoms(left: Atom, right: Atom) -> Optional[Substitution]:
    """Syntactic unification of two atoms (no occurs-check needed: terms
    are flat, so unification either fails or yields a most general unifier
    mapping variables to variables/constants/nulls)."""
    if left.relation != right.relation or left.arity != right.arity:
        return None
    bindings: Dict[Variable, Term] = {}

    def resolve(term: Term) -> Term:
        while isinstance(term, Variable) and term in bindings:
            term = bindings[term]
        return term

    for l_term, r_term in zip(left.terms, right.terms):
        l_res, r_res = resolve(l_term), resolve(r_term)
        if l_res == r_res:
            continue
        if isinstance(l_res, Variable):
            bindings[l_res] = r_res
        elif isinstance(r_res, Variable):
            bindings[r_res] = l_res
        else:
            return None
    # Flatten chains so application is single-step.
    flat = {v: _chase_term(bindings, v) for v in bindings}
    return Substitution(flat)


def _chase_term(bindings: Dict[Variable, Term], variable: Variable) -> Term:
    term: Term = variable
    while isinstance(term, Variable) and term in bindings:
        term = bindings[term]
    return term
