"""Embedded dependencies: tgds, egds, denials, and disjunctive deds.

Following the paper, the mapping language is the language of *disjunctive
embedded dependencies* (deds), which subsume all the others:

* a **tgd** (tuple-generating dependency) has one disjunct of relational
  atoms: ``∀x̄ (premise → ∃ȳ atoms)``;
* an **egd** (equality-generating dependency) has one disjunct made of
  equalities: ``∀x̄ (premise → x1 = x2)``;
* a **denial** has an empty conclusion: ``∀x̄ (premise → ⊥)``; the chase
  fails when its premise matches;
* a **ded** has several disjuncts, each mixing atoms and equalities —
  the paper's ``d0`` is ``TProduct(...), TProduct(...) → (pid1 = pid2) |
  TRating(rid, pid1, '0') | TRating(rid, pid2, '0')``.

One class, :class:`Dependency`, represents all of them; :attr:`kind`
reports the classification the rest of the system dispatches on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Sequence, Tuple

from repro.errors import UnsafeDependencyError
from repro.logic.atoms import Atom, Comparison, Conjunction, Equality
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, VariableFactory

__all__ = ["DependencyKind", "Disjunct", "Dependency", "tgd", "egd", "denial", "ded"]


class DependencyKind(enum.Enum):
    """Syntactic classification of a dependency."""

    TGD = "tgd"
    EGD = "egd"
    DENIAL = "denial"
    DED = "ded"
    MIXED = "mixed"  # single disjunct with both atoms and equalities

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Disjunct:
    """One conclusion alternative of a dependency.

    A disjunct may require relational atoms to exist (``atoms``, with
    existential variables), equalities to hold (``equalities``, enforced by
    unification), and comparisons to be satisfied (``comparisons``, checked
    only — a disjunct whose comparisons fail under the premise match is
    unusable and the chase must pick another branch).
    """

    atoms: Tuple[Atom, ...] = ()
    equalities: Tuple[Equality, ...] = ()
    comparisons: Tuple[Comparison, ...] = ()

    def __init__(
        self,
        atoms: Sequence[Atom] = (),
        equalities: Sequence[Equality] = (),
        comparisons: Sequence[Comparison] = (),
    ) -> None:
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "equalities", tuple(equalities))
        object.__setattr__(self, "comparisons", tuple(comparisons))

    def is_empty(self) -> bool:
        return not (self.atoms or self.equalities or self.comparisons)

    def variables(self) -> FrozenSet[Variable]:
        out = set()
        for atom in self.atoms:
            out.update(atom.variables())
        for equality in self.equalities:
            out.update(equality.variables())
        for comparison in self.comparisons:
            out.update(comparison.variables())
        return frozenset(out)

    def relations(self) -> FrozenSet[str]:
        return frozenset(a.relation for a in self.atoms)

    def apply(self, substitution: Substitution) -> "Disjunct":
        return Disjunct(
            tuple(substitution.apply_atom(a) for a in self.atoms),
            tuple(substitution.apply_equality(e) for e in self.equalities),
            tuple(substitution.apply_comparison(c) for c in self.comparisons),
        )

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms]
        parts += [str(e) for e in self.equalities]
        parts += [str(c) for c in self.comparisons]
        return ", ".join(parts) if parts else "false"


@dataclass(frozen=True)
class Dependency:
    """A disjunctive embedded dependency ``∀x̄ (premise → D1 | ... | Dn)``.

    ``premise`` is a conjunction of relational atoms, comparisons and
    (for intermediate, pre-rewriting forms) negated conjunctions.  The
    rewriter guarantees that *output* dependencies fed to the chase have
    negation-free premises.
    """

    premise: Conjunction
    disjuncts: Tuple[Disjunct, ...] = ()
    name: str = ""

    def __init__(
        self,
        premise: Conjunction,
        disjuncts: Sequence[Disjunct] = (),
        name: str = "",
    ) -> None:
        object.__setattr__(self, "premise", premise)
        object.__setattr__(self, "disjuncts", tuple(disjuncts))
        object.__setattr__(self, "name", name)

    # -- classification ------------------------------------------------------

    @property
    def kind(self) -> DependencyKind:
        if not self.disjuncts:
            return DependencyKind.DENIAL
        if len(self.disjuncts) > 1:
            return DependencyKind.DED
        only = self.disjuncts[0]
        if only.atoms and only.equalities:
            return DependencyKind.MIXED
        if only.equalities:
            return DependencyKind.EGD
        return DependencyKind.TGD

    def is_ded(self) -> bool:
        return self.kind is DependencyKind.DED

    def is_standard(self) -> bool:
        """True for tgds/egds/denials — chaseable by the classical chase."""
        return self.kind is not DependencyKind.DED

    # -- variables -----------------------------------------------------------

    def frontier(self) -> FrozenSet[Variable]:
        """Premise variables that also occur in some disjunct."""
        premise_vars = self.premise.variables()
        conclusion_vars = set()
        for disjunct in self.disjuncts:
            conclusion_vars |= disjunct.variables()
        return premise_vars & frozenset(conclusion_vars)

    def existential_variables(self, disjunct: Disjunct) -> FrozenSet[Variable]:
        """Variables of ``disjunct`` not bound by the premise."""
        return disjunct.variables() - self.premise.variables()

    def variables(self) -> FrozenSet[Variable]:
        out = set(self.premise.variables())
        for disjunct in self.disjuncts:
            out |= disjunct.variables()
        return frozenset(out)

    def relations(self) -> FrozenSet[str]:
        """All relations mentioned in premise or conclusions."""
        names = set(self.premise.relations())
        for disjunct in self.disjuncts:
            names |= disjunct.relations()
        return frozenset(names)

    # -- safety --------------------------------------------------------------

    def check_safety(self) -> None:
        """Raise :class:`UnsafeDependencyError` on a violation.

        The conditions (standard for executable dependencies):

        * every premise-comparison variable occurs in a positive premise atom;
        * every free variable of a premise negation occurs in a positive
          premise atom (safe negation);
        * every equality variable of a disjunct occurs in a positive premise
          atom (egds never invent values);
        * disjunct comparisons only use premise variables (they are checks,
          not constraints on invented nulls).
        """
        positive = self.premise.positive_variables()
        for comparison in self.premise.comparisons:
            for variable in comparison.variables():
                if variable not in positive:
                    raise UnsafeDependencyError(
                        f"{self.describe()}: comparison variable {variable} "
                        f"not bound by a positive premise atom"
                    )
        conclusion_vars = set()
        for disjunct in self.disjuncts:
            conclusion_vars |= disjunct.variables()
        for negation in self.premise.negations:
            # Negation variables are either local (existential inside the
            # negation) or shared with the positive context.  A variable
            # that leaks from a negation into a conclusion without a
            # positive binding would be unsafe.
            for variable in negation.inner.variables() & conclusion_vars:
                if variable not in positive:
                    raise UnsafeDependencyError(
                        f"{self.describe()}: variable {variable} occurs in a "
                        f"negation and a conclusion but has no positive binding"
                    )
        for disjunct in self.disjuncts:
            for equality in disjunct.equalities:
                for variable in equality.variables():
                    if variable not in positive:
                        raise UnsafeDependencyError(
                            f"{self.describe()}: equality variable {variable} "
                            f"not bound by a positive premise atom"
                        )
            for comparison in disjunct.comparisons:
                for variable in comparison.variables():
                    if variable not in positive:
                        raise UnsafeDependencyError(
                            f"{self.describe()}: disjunct comparison variable "
                            f"{variable} not bound by the premise"
                        )

    # -- transformation --------------------------------------------------------

    def apply(self, substitution: Substitution) -> "Dependency":
        return Dependency(
            substitution.apply_conjunction(self.premise),
            tuple(d.apply(substitution) for d in self.disjuncts),
            self.name,
        )

    def rename_apart(self, factory: VariableFactory) -> "Dependency":
        """Rename all variables to fresh ones (for safe instantiation)."""
        mapping = {}
        for variable in sorted(self.variables()):
            mapping[variable] = factory.fresh(hint=variable.name)
        return self.apply(Substitution(mapping))

    def with_name(self, name: str) -> "Dependency":
        return Dependency(self.premise, self.disjuncts, name)

    def select_branch(self, index: int, name_suffix: str = "") -> "Dependency":
        """The standard dependency obtained by keeping only disjunct ``index``.

        This is the elementary move of the greedy ded chase: a ded with k
        disjuncts yields k standard dependencies, each capturing one branch.
        """
        if not 0 <= index < len(self.disjuncts):
            raise IndexError(f"branch {index} out of range for {self.describe()}")
        suffix = name_suffix or f"[{index}]"
        return Dependency(self.premise, (self.disjuncts[index],),
                          f"{self.name}{suffix}" if self.name else "")

    # -- rendering -------------------------------------------------------------

    def describe(self) -> str:
        return self.name or f"<{self.kind}>"

    def __str__(self) -> str:
        conclusion = " | ".join(str(d) for d in self.disjuncts) or "false"
        prefix = f"{self.name}: " if self.name else ""
        return f"{prefix}{self.premise} -> {conclusion}"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def tgd(
    premise: Conjunction,
    conclusion: Sequence[Atom],
    name: str = "",
    comparisons: Sequence[Comparison] = (),
) -> Dependency:
    """Build a tuple-generating dependency."""
    return Dependency(premise, (Disjunct(atoms=conclusion, comparisons=comparisons),), name)


def egd(
    premise: Conjunction, equalities: Sequence[Equality], name: str = ""
) -> Dependency:
    """Build an equality-generating dependency."""
    if not equalities:
        raise UnsafeDependencyError("an egd needs at least one equality")
    return Dependency(premise, (Disjunct(equalities=equalities),), name)


def denial(premise: Conjunction, name: str = "") -> Dependency:
    """Build a denial constraint ``premise → ⊥``."""
    return Dependency(premise, (), name)


def ded(
    premise: Conjunction,
    disjuncts: Sequence[Disjunct],
    name: str = "",
) -> Dependency:
    """Build a disjunctive embedded dependency."""
    return Dependency(premise, tuple(disjuncts), name)
