"""Human-oriented rendering of logical objects.

The default ``str()`` forms are compact ASCII.  This module adds the
publication-style rendering used in reports and the CLI: implication
arrows, logical symbols, per-line disjuncts, and side-by-side dependency
listings — the textual counterpart of the paper's view browser.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.logic.atoms import Conjunction
from repro.logic.dependencies import Dependency, DependencyKind

__all__ = ["render_conjunction", "render_dependency", "render_dependencies"]

_ARROW = "→"
_BOTTOM = "⊥"
_NOT = "¬"
_OR = " | "


def render_conjunction(conjunction: Conjunction, unicode: bool = True) -> str:
    """Render a conjunction with ``¬(...)`` for nested negations."""
    neg = _NOT if unicode else "not "
    parts: List[str] = [str(a) for a in conjunction.atoms]
    parts += [str(c) for c in conjunction.comparisons]
    for negation in conjunction.negations:
        parts.append(f"{neg}({render_conjunction(negation.inner, unicode)})")
    return ", ".join(parts) if parts else "true"


def render_dependency(dependency: Dependency, unicode: bool = True) -> str:
    """One-line, paper-style rendering of a dependency."""
    arrow = _ARROW if unicode else "->"
    bottom = _BOTTOM if unicode else "false"
    premise = render_conjunction(dependency.premise, unicode)
    if not dependency.disjuncts:
        conclusion = bottom
    else:
        branches = []
        for disjunct in dependency.disjuncts:
            pieces = [str(a) for a in disjunct.atoms]
            pieces += [f"({e})" for e in disjunct.equalities]
            pieces += [str(c) for c in disjunct.comparisons]
            branches.append(", ".join(pieces) if pieces else "true")
        conclusion = _OR.join(branches) if unicode else " | ".join(branches)
    label = f"{dependency.name}: " if dependency.name else ""
    return f"{label}{premise} {arrow} {conclusion}"


def render_dependencies(
    dependencies: Iterable[Dependency], unicode: bool = True
) -> str:
    """Multi-line listing, grouped by kind in a stable order."""
    order = [
        DependencyKind.TGD,
        DependencyKind.MIXED,
        DependencyKind.EGD,
        DependencyKind.DED,
        DependencyKind.DENIAL,
    ]
    by_kind = {kind: [] for kind in order}
    for dependency in dependencies:
        by_kind.setdefault(dependency.kind, []).append(dependency)
    lines: List[str] = []
    for kind in order:
        group = by_kind.get(kind, [])
        if not group:
            continue
        lines.append(f"-- {kind.value}s ({len(group)})")
        for dependency in group:
            lines.append("  " + render_dependency(dependency, unicode))
    return "\n".join(lines)
