"""Homomorphisms between sets of atoms / facts.

A homomorphism ``h`` from a set of atoms A to a set of atoms B maps
variables and labeled nulls of A to terms of B such that ``h(a) ∈ B`` for
every ``a ∈ A``, leaving constants fixed.  Homomorphisms are the semantic
yard-stick of data exchange: *universal* solutions are exactly the
solutions that map homomorphically into every other solution, and the
restricted chase checks homomorphism extension before firing a tgd.

The search is backtracking over indexed facts, ordering the pending
atoms most-constrained-first.  Candidate facts are fetched through a
two-level index: by relation, and — for pattern atoms with *rigid*
positions (constants or frozen terms, which must match exactly) — by a
lazily-built hash index keyed on those positions, so rigid atoms probe a
bucket instead of scanning the whole relation.  That is adequate for the
dependency-sized and verification-sized problems the library solves (the
bulk data path goes through :mod:`repro.relational.query` instead).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.logic.atoms import Atom
from repro.logic.terms import Null, Term, Variable

__all__ = [
    "Assignment",
    "find_homomorphism",
    "exists_homomorphism",
    "all_homomorphisms",
    "homomorphically_equivalent",
    "apply_assignment",
]

MappableTerm = Union[Variable, Null]
Assignment = Dict[MappableTerm, Term]
"""A homomorphism under construction: maps variables/nulls to terms."""


def apply_assignment(assignment: Mapping[MappableTerm, Term], atom: Atom) -> Atom:
    """Apply a homomorphism to an atom (constants stay fixed)."""
    new_terms = []
    for term in atom.terms:
        if isinstance(term, (Variable, Null)):
            new_terms.append(assignment.get(term, term))
        else:
            new_terms.append(term)
    return Atom(atom.relation, tuple(new_terms))


class _TargetIndex:
    """Relation- and rigidity-indexed view of the target fact set.

    ``candidates`` returns the facts a pattern atom can possibly map onto:
    all facts of its relation, narrowed — when the atom has rigid
    positions — to the hash bucket matching the rigid values.  Keyed
    indexes are built lazily per (relation, positions) shape and preserve
    relation-list order, so the search visits surviving candidates in the
    same order a full scan would.
    """

    def __init__(self, atoms: Iterable[Atom]) -> None:
        self._by_relation: Dict[str, List[Atom]] = defaultdict(list)
        for atom in atoms:
            self._by_relation[atom.relation].append(atom)
        self._keyed: Dict[
            tuple, Dict[tuple, List[Atom]]
        ] = {}

    def candidates(
        self, relation: str, positions: tuple, key: tuple
    ) -> Sequence[Atom]:
        if not positions:
            return self._by_relation.get(relation, ())
        index_key = (relation, positions)
        keyed = self._keyed.get(index_key)
        if keyed is None:
            keyed = defaultdict(list)
            for fact in self._by_relation.get(relation, ()):
                if len(fact.terms) > positions[-1]:
                    keyed[tuple(fact.terms[i] for i in positions)].append(fact)
            self._keyed[index_key] = keyed
        return keyed.get(key, ())


def _mappable(term: Term, frozen: FrozenSet[Term]) -> bool:
    return isinstance(term, (Variable, Null)) and term not in frozen


def _order_atoms(atoms: Sequence[Atom], frozen: FrozenSet[Term]) -> List[Atom]:
    """Most-constrained-first ordering heuristic.

    Atoms with more rigid positions (constants / frozen terms) are matched
    first; this prunes the backtracking tree early.
    """
    def rigidity(atom: Atom) -> int:
        return sum(1 for t in atom.terms if not _mappable(t, frozen))

    return sorted(atoms, key=rigidity, reverse=True)


def _try_match(
    pattern: Atom,
    fact: Atom,
    assignment: Assignment,
    frozen: FrozenSet[Term],
) -> Optional[Assignment]:
    """Extend ``assignment`` so the pattern atom maps onto ``fact``."""
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return None
    extension: Assignment = {}
    for p_term, f_term in zip(pattern.terms, fact.terms):
        if _mappable(p_term, frozen):
            current = assignment.get(p_term, extension.get(p_term))
            if current is None:
                extension[p_term] = f_term
            elif current != f_term:
                return None
        elif p_term != f_term:
            return None
    if not extension:
        return assignment
    merged = dict(assignment)
    merged.update(extension)
    return merged


def _probe_spec(atom: Atom, frozen: FrozenSet[Term]) -> Tuple[tuple, tuple]:
    """The rigid positions of a pattern atom and their (static) key.

    Rigid terms — constants and frozen variables/nulls — must map to
    themselves, so the key they probe with never depends on the current
    assignment and can be computed once per search.
    """
    positions = tuple(
        i for i, t in enumerate(atom.terms) if not _mappable(t, frozen)
    )
    key = tuple(atom.terms[i] for i in positions)
    return positions, key


def _search(
    pending: List[Tuple[Atom, tuple, tuple]],
    index: _TargetIndex,
    assignment: Assignment,
    frozen: FrozenSet[Term],
    collect: Optional[List[Assignment]],
    limit: Optional[int],
) -> Optional[Assignment]:
    if not pending:
        if collect is not None:
            collect.append(dict(assignment))
            return None if limit is None or len(collect) < limit else assignment
        return assignment
    (atom, positions, key), rest = pending[0], pending[1:]
    for fact in index.candidates(atom.relation, positions, key):
        extended = _try_match(atom, fact, assignment, frozen)
        if extended is None:
            continue
        found = _search(rest, index, extended, frozen, collect, limit)
        if found is not None:
            return found
    return None


def find_homomorphism(
    source: Iterable[Atom],
    target: Iterable[Atom],
    seed: Optional[Mapping[MappableTerm, Term]] = None,
    frozen: Iterable[Term] = (),
) -> Optional[Assignment]:
    """Find one homomorphism from ``source`` into ``target``.

    ``seed`` pre-binds some variables/nulls; ``frozen`` lists terms that
    must map to themselves (used e.g. when checking that a solution is
    universal *relative to* the source constants).  Returns ``None`` when
    no homomorphism exists.
    """
    source_atoms = list(source)
    frozen_set = frozenset(frozen)
    index = _TargetIndex(target)
    ordered = [
        (atom, *_probe_spec(atom, frozen_set))
        for atom in _order_atoms(source_atoms, frozen_set)
    ]
    return _search(ordered, index, dict(seed or {}), frozen_set, None, None)


def exists_homomorphism(
    source: Iterable[Atom],
    target: Iterable[Atom],
    seed: Optional[Mapping[MappableTerm, Term]] = None,
    frozen: Iterable[Term] = (),
) -> bool:
    """Whether some homomorphism from ``source`` into ``target`` exists."""
    return find_homomorphism(source, target, seed, frozen) is not None


def all_homomorphisms(
    source: Iterable[Atom],
    target: Iterable[Atom],
    limit: Optional[int] = None,
    frozen: Iterable[Term] = (),
) -> List[Assignment]:
    """All homomorphisms from ``source`` into ``target`` (up to ``limit``)."""
    source_atoms = list(source)
    frozen_set = frozenset(frozen)
    index = _TargetIndex(target)
    ordered = [
        (atom, *_probe_spec(atom, frozen_set))
        for atom in _order_atoms(source_atoms, frozen_set)
    ]
    collected: List[Assignment] = []
    _search(ordered, index, {}, frozen_set, collected, limit)
    return collected


def homomorphically_equivalent(
    left: Iterable[Atom], right: Iterable[Atom]
) -> bool:
    """Whether homomorphisms exist in both directions.

    Two universal solutions of the same scenario are always
    homomorphically equivalent; this predicate backs tests and the
    core-minimization module.
    """
    left_atoms, right_atoms = list(left), list(right)
    return exists_homomorphism(left_atoms, right_atoms) and exists_homomorphism(
        right_atoms, left_atoms
    )
