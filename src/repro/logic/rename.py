"""Variable renaming utilities (standardize-apart).

Unfolding a view body into a dependency, or instantiating two copies of
the same view atom in an egd premise (as in the paper's ``e0``), requires
renaming the body's local variables so they cannot capture variables of
the enclosing formula.  These helpers centralize that discipline.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.logic.atoms import Conjunction
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, VariableFactory

__all__ = ["standardize_apart", "renaming_for"]


def renaming_for(
    locals_: Iterable[Variable],
    factory: VariableFactory,
) -> Substitution:
    """A substitution renaming each variable in ``locals_`` to a fresh one.

    Fresh names keep the original name as a hint, so renamed formulas stay
    readable in traces (``store`` becomes e.g. ``store_3``).
    """
    mapping = {}
    for variable in sorted(set(locals_)):
        mapping[variable] = factory.fresh(hint=variable.name)
    return Substitution(mapping)


def standardize_apart(
    conjunction: Conjunction,
    keep: Iterable[Variable],
    factory: VariableFactory,
) -> Tuple[Conjunction, Substitution]:
    """Rename every variable of ``conjunction`` not listed in ``keep``.

    Returns the renamed conjunction together with the renaming used, so
    callers can apply the same renaming to companion formulas.
    """
    keep_set = frozenset(keep)
    locals_ = conjunction.variables() - keep_set
    renaming = renaming_for(locals_, factory)
    return renaming.apply_conjunction(conjunction), renaming
