"""Logic kernel: terms, atoms, substitutions, homomorphisms, dependencies.

Everything in the system — view definitions, mappings, rewritten
dependencies, chase steps — is expressed with the vocabulary defined
here.
"""

from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import (
    Dependency,
    DependencyKind,
    Disjunct,
    ded,
    denial,
    egd,
    tgd,
)
from repro.logic.homomorphism import (
    all_homomorphisms,
    exists_homomorphism,
    find_homomorphism,
    homomorphically_equivalent,
)
from repro.logic.rename import renaming_for, standardize_apart
from repro.logic.substitution import Substitution, match_atom, unify_atoms
from repro.logic.terms import (
    Constant,
    Null,
    NullFactory,
    Term,
    Variable,
    VariableFactory,
)

__all__ = [
    "Atom",
    "Comparison",
    "Conjunction",
    "Equality",
    "NegatedConjunction",
    "Dependency",
    "DependencyKind",
    "Disjunct",
    "ded",
    "denial",
    "egd",
    "tgd",
    "Constant",
    "Null",
    "NullFactory",
    "Term",
    "Variable",
    "VariableFactory",
    "Substitution",
    "match_atom",
    "unify_atoms",
    "find_homomorphism",
    "exists_homomorphism",
    "all_homomorphisms",
    "homomorphically_equivalent",
    "renaming_for",
    "standardize_apart",
]
