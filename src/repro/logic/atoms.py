"""Atoms and conjunctive formulas of the mapping language.

The building blocks are:

* :class:`Atom` — a relational atom ``R(t1, ..., tk)``;
* :class:`Comparison` — a comparison atom ``t1 op t2`` with
  ``op ∈ {=, !=, <, <=, >, >=}`` (the paper's tgds-with-comparisons);
* :class:`Equality` — an *enforced* equality used in egd/ded conclusions
  (distinct from a :class:`Comparison`, which is merely checked);
* :class:`Conjunction` — a conjunction of atoms, comparisons and negated
  sub-conjunctions, used for rule bodies, dependency premises and the
  interior of negations;
* :class:`NegatedConjunction` — a negated existential conjunction
  ``¬ ∃ z̄ (...)``, the shape negation takes after view unfolding.

Negation may nest arbitrarily (a negated conjunction may itself contain
negated conjunctions), which is what makes the view language of the paper
-- non-recursive Datalog with negation over base *and derived* atoms --
strictly harder than conjunctive views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Sequence, Tuple

from repro.errors import LogicError, TypingError
from repro.logic.terms import Constant, Null, Term, Variable

__all__ = [
    "Atom",
    "Comparison",
    "Equality",
    "Conjunction",
    "NegatedConjunction",
    "COMPARISON_OPS",
]

COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

_NEGATED_OP = {
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


@dataclass(frozen=True, order=True)
class Atom:
    """A relational atom ``relation(terms...)``."""

    relation: str
    terms: Tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Term]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        if not relation:
            raise LogicError("atom relation name must be non-empty")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        """Yield variables left-to-right, with repetition."""
        for term in self.terms:
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[Constant]:
        for term in self.terms:
            if isinstance(term, Constant):
                yield term

    def nulls(self) -> Iterator[Null]:
        for term in self.terms:
            if isinstance(term, Null):
                yield term

    def is_ground(self) -> bool:
        """True when the atom contains no variables (a *fact*)."""
        return all(not isinstance(t, Variable) for t in self.terms)

    def __str__(self) -> str:
        inside = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inside})"


def _comparable(left: object, right: object) -> bool:
    """Whether two constant values can be order-compared meaningfully."""
    numeric = (int, float, bool)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return True
    return isinstance(left, str) and isinstance(right, str)


@dataclass(frozen=True, order=True)
class Comparison:
    """A checked comparison atom ``left op right``.

    Comparisons restrict when a premise matches; they never create values.
    Equality/inequality also work on labeled nulls (by null identity, the
    standard semantics for instances with nulls); order comparisons require
    constants of comparable types.
    """

    op: str
    left: Term
    right: Term

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise LogicError(f"unknown comparison operator {self.op!r}")

    def variables(self) -> Iterator[Variable]:
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term

    def negated(self) -> "Comparison":
        """The complementary comparison (used when negation pushes inward)."""
        return Comparison(_NEGATED_OP[self.op], self.left, self.right)

    def is_ground(self) -> bool:
        return not any(isinstance(t, Variable) for t in (self.left, self.right))

    def evaluate(self) -> bool:
        """Evaluate a ground comparison.

        Raises :class:`TypingError` when the comparison is not ground or
        order-compares nulls / incomparable constants.
        """
        if not self.is_ground():
            raise TypingError(f"comparison {self} is not ground")
        if self.op == "=":
            return self.left == self.right
        if self.op == "!=":
            return self.left != self.right
        if isinstance(self.left, Null) or isinstance(self.right, Null):
            raise TypingError(f"cannot order-compare labeled nulls in {self}")
        lval = self.left.value  # type: ignore[union-attr]
        rval = self.right.value  # type: ignore[union-attr]
        if not _comparable(lval, rval):
            raise TypingError(
                f"cannot compare {type(lval).__name__} with "
                f"{type(rval).__name__} in {self}"
            )
        if self.op == "<":
            return lval < rval
        if self.op == "<=":
            return lval <= rval
        if self.op == ">":
            return lval > rval
        return lval >= rval

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, order=True)
class Equality:
    """An *enforced* equality in an egd or ded conclusion.

    Unlike :class:`Comparison`, chasing an :class:`Equality` actively
    unifies the two sides (or fails when they are distinct constants).
    """

    left: Term
    right: Term

    def variables(self) -> Iterator[Variable]:
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term

    def is_trivial(self) -> bool:
        """True when both sides are syntactically identical."""
        return self.left == self.right

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Conjunction:
    """A conjunction of atoms, comparisons and negated sub-conjunctions.

    ``Conjunction`` is the workhorse formula shape: Datalog rule bodies,
    dependency premises and the interiors of negations are all
    conjunctions.  The empty conjunction is *true*.
    """

    atoms: Tuple[Atom, ...] = ()
    comparisons: Tuple[Comparison, ...] = ()
    negations: Tuple["NegatedConjunction", ...] = ()

    def __init__(
        self,
        atoms: Sequence[Atom] = (),
        comparisons: Sequence[Comparison] = (),
        negations: Sequence["NegatedConjunction"] = (),
    ) -> None:
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "comparisons", tuple(comparisons))
        object.__setattr__(self, "negations", tuple(negations))

    # -- structure ---------------------------------------------------------

    def is_empty(self) -> bool:
        """True for the trivially-true conjunction."""
        return not (self.atoms or self.comparisons or self.negations)

    def is_positive(self) -> bool:
        """True when the conjunction contains no negation at any depth."""
        return not self.negations

    def negation_depth(self) -> int:
        """Maximum nesting depth of negation (0 for positive formulas)."""
        if not self.negations:
            return 0
        return 1 + max(n.inner.negation_depth() for n in self.negations)

    def relations(self) -> FrozenSet[str]:
        """All relation names mentioned at any depth."""
        names = {a.relation for a in self.atoms}
        for negation in self.negations:
            names |= negation.inner.relations()
        return frozenset(names)

    # -- variables ---------------------------------------------------------

    def positive_variables(self) -> FrozenSet[Variable]:
        """Variables occurring in a positive relational atom (the *range*).

        These are the variables a safe evaluation can bind; comparison and
        negation variables must be covered by them or be local.
        """
        return frozenset(v for a in self.atoms for v in a.variables())

    def variables(self) -> FrozenSet[Variable]:
        """All variables at any depth, including inside negations."""
        out = set(self.positive_variables())
        for comparison in self.comparisons:
            out.update(comparison.variables())
        for negation in self.negations:
            out.update(negation.inner.variables())
        return frozenset(out)

    def constants(self) -> FrozenSet[Constant]:
        out = {c for a in self.atoms for c in a.constants()}
        for comparison in self.comparisons:
            for term in (comparison.left, comparison.right):
                if isinstance(term, Constant):
                    out.add(term)
        for negation in self.negations:
            out |= negation.inner.constants()
        return frozenset(out)

    # -- combination -------------------------------------------------------

    def extend(self, other: "Conjunction") -> "Conjunction":
        """The conjunction of ``self`` and ``other`` (order-preserving)."""
        return Conjunction(
            self.atoms + other.atoms,
            self.comparisons + other.comparisons,
            self.negations + other.negations,
        )

    def with_atoms(self, atoms: Iterable[Atom]) -> "Conjunction":
        return Conjunction(
            self.atoms + tuple(atoms), self.comparisons, self.negations
        )

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms]
        parts += [str(c) for c in self.comparisons]
        parts += [str(n) for n in self.negations]
        if not parts:
            return "true"
        return ", ".join(parts)


@dataclass(frozen=True)
class NegatedConjunction:
    """A negated existential conjunction ``¬ ∃ z̄ inner``.

    The existential variables ``z̄`` are, by convention, exactly the
    variables of ``inner`` that do not occur in the enclosing positive
    context; they are not stored explicitly.  This matches the semantics
    of safe stratified negation after unfolding.
    """

    inner: Conjunction

    def variables(self) -> FrozenSet[Variable]:
        return self.inner.variables()

    def local_variables(self, outer: Iterable[Variable]) -> FrozenSet[Variable]:
        """Variables existentially quantified inside this negation."""
        return self.inner.variables() - frozenset(outer)

    def __str__(self) -> str:
        return f"not ({self.inner})"
