"""Terms of the mapping language: constants, variables and labeled nulls.

Data-exchange instances mix *constants* (ordinary database values) with
*labeled nulls* (placeholders invented by the chase for existentially
quantified variables).  Dependencies additionally use *variables*.  All
three are immutable and hashable so they can live in sets, dict keys and
frozen facts.

The classes deliberately carry no behaviour beyond identity, ordering and
rendering; all logic that interprets terms (substitution, unification,
homomorphisms) lives in sibling modules.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Union

__all__ = [
    "Constant",
    "Variable",
    "Null",
    "Term",
    "VariableFactory",
    "NullFactory",
    "is_ground",
    "constants_in",
    "variables_in",
    "nulls_in",
]


@dataclass(frozen=True, order=True)
class Constant:
    """An ordinary database value (int, float, bool or str).

    Values of different Python types never compare equal as constants,
    mirroring typed relational attributes: ``Constant(1) != Constant("1")``.
    """

    value: Union[int, float, bool, str]

    def __post_init__(self) -> None:
        if not isinstance(self.value, (int, float, bool, str)):
            raise TypeError(
                f"constant values must be int/float/bool/str, got "
                f"{type(self.value).__name__}"
            )

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"


@dataclass(frozen=True, order=True)
class Variable:
    """A universally or existentially quantified variable in a formula."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True)
class Null:
    """A labeled null: a chase-invented placeholder value.

    Nulls are identified by an integer id; two nulls with the same id are
    the same null.  The optional ``hint`` records the variable the null was
    invented for, which makes chase traces readable; it does not take part
    in equality.
    """

    id: int
    hint: str = ""

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Null) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("Null", self.id))

    def __lt__(self, other: "Null") -> bool:
        if not isinstance(other, Null):
            return NotImplemented
        return self.id < other.id

    def __str__(self) -> str:
        if self.hint:
            return f"#N{self.id}_{self.hint}"
        return f"#N{self.id}"

    def __repr__(self) -> str:
        return f"Null({self.id}, {self.hint!r})" if self.hint else f"Null({self.id})"


Term = Union[Constant, Variable, Null]
"""Any term: constant, variable, or labeled null."""


class VariableFactory:
    """Produces fresh variables that cannot clash with a given vocabulary.

    Used by standardize-apart renaming and by the rewriter when it invents
    existential variables while unfolding view bodies.
    """

    def __init__(self, prefix: str = "v", avoid: Iterable[Variable] = ()) -> None:
        self._prefix = prefix
        self._taken = {v.name for v in avoid}
        self._counter = itertools.count()

    def avoid(self, variables: Iterable[Variable]) -> None:
        """Additionally avoid clashing with ``variables``."""
        self._taken.update(v.name for v in variables)

    def fresh(self, hint: str = "") -> Variable:
        """Return a variable whose name has never been handed out before."""
        base = hint or self._prefix
        while True:
            name = f"{base}_{next(self._counter)}"
            if name not in self._taken:
                self._taken.add(name)
                return Variable(name)


class NullFactory:
    """Thread-safe producer of globally fresh labeled nulls.

    A single factory is shared by one chase run so that every invented null
    is distinct.  Factories can be seeded past an existing instance's nulls
    with :meth:`advance_past`.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._lock = threading.Lock()

    def fresh(self, hint: str = "") -> Null:
        """Return a null with a never-used id."""
        with self._lock:
            null_id = self._next
            self._next += 1
        return Null(null_id, hint)

    def advance_past(self, nulls: Iterable[Null]) -> None:
        """Make sure future ids are larger than any id in ``nulls``."""
        with self._lock:
            for null in nulls:
                if null.id >= self._next:
                    self._next = null.id + 1

    def advance_to(self, next_id: int) -> None:
        """Jump the counter forward to ``next_id`` (never backward).

        Used by the speculative disjunctive chase when it commits a
        prefetched node: the node consumed ``k`` ids starting from the
        factory's state at commit time, so the shared factory jumps to
        exactly where a serial run of the node would have left it.
        """
        with self._lock:
            if next_id > self._next:
                self._next = next_id

    @property
    def next_id(self) -> int:
        """The id the next fresh null would receive."""
        return self._next


def is_ground(terms: Iterable[Term]) -> bool:
    """True when no term is a :class:`Variable` (nulls are allowed)."""
    return all(not isinstance(t, Variable) for t in terms)


def constants_in(terms: Iterable[Term]) -> Iterator[Constant]:
    """Yield the constants occurring in ``terms`` (with repetition)."""
    for term in terms:
        if isinstance(term, Constant):
            yield term


def variables_in(terms: Iterable[Term]) -> Iterator[Variable]:
    """Yield the variables occurring in ``terms`` (with repetition)."""
    for term in terms:
        if isinstance(term, Variable):
            yield term


def nulls_in(terms: Iterable[Term]) -> Iterator[Null]:
    """Yield the labeled nulls occurring in ``terms`` (with repetition)."""
    for term in terms:
        if isinstance(term, Null):
            yield term
