"""Command-line interface: the non-graphical face of GROM.

The demo paper drives GROM through a GUI (mapping designer, view
browser, rewriter, chase engine — Figure 3); this CLI exposes the same
workflow over DSL scenario files::

    grom analyze  scenario.grom      # ded prediction + problematic views
    grom lint     scenario.grom      # static diagnostics + termination class
    grom rewrite  scenario.grom      # print Σ_ST ∪ Σ_T
    grom chase    scenario.grom      # rewrite + chase + verify
    grom demo                        # run the paper's Section 2 example
    grom batch    [corpus]           # a whole generated corpus, pooled
    grom profile  trace.jsonl        # phase table from a --trace file

Scenario files may embed an ``instance source { ... }`` section; the
``--csv DIR`` option loads the source instance from CSV files instead.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.core.analysis import predict_deds
from repro.core.rewriter import rewrite
from repro.dsl.parser import ParsedDocument, parse_scenario
from repro.dsl.serializer import serialize_scenario
from repro.logic.pretty import render_dependencies
from repro.pipeline import run_scenario
from repro.relational.csv_io import load_instance
from repro.relational.instance import Instance
from repro.reporting import Table

__all__ = ["main", "build_argument_parser"]


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grom",
        description="GROM: rewrite and execute semantic schema mappings",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    analyze = subparsers.add_parser(
        "analyze", help="predict deds and highlight problematic views"
    )
    analyze.add_argument("scenario", type=Path, help="DSL scenario file")

    lint = subparsers.add_parser(
        "lint",
        help="run the static analyzer: termination class, fire schedule "
             "and coded diagnostics; non-zero exit on error diagnostics",
    )
    lint.add_argument(
        "scenarios", nargs="*", type=Path,
        help="DSL scenario files to lint",
    )
    lint.add_argument(
        "--corpus", default=None, metavar="NAME",
        help="also lint every scenario of a generated corpus",
    )
    lint.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="write the full machine-readable report to this file",
    )
    lint.add_argument(
        "--quiet", action="store_true",
        help="only print warnings and errors (suppress info diagnostics)",
    )

    rewrite_cmd = subparsers.add_parser(
        "rewrite", help="print the rewritten source-to-target dependencies"
    )
    rewrite_cmd.add_argument("scenario", type=Path)
    rewrite_cmd.add_argument(
        "--ascii", action="store_true", help="ASCII arrows instead of unicode"
    )

    chase_cmd = subparsers.add_parser(
        "chase", help="rewrite, chase and verify a scenario end to end"
    )
    chase_cmd.add_argument("scenario", type=Path)
    chase_cmd.add_argument(
        "--csv", type=Path, default=None,
        help="directory of <relation>.csv files for the source instance",
    )
    chase_cmd.add_argument(
        "--max-scenarios", type=int, default=256,
        help="budget for the greedy ded chase",
    )
    chase_cmd.add_argument(
        "--parallelism", default="serial", metavar="MODE",
        help="shard premise-match enumeration: serial (default), "
             "thread[:N] or process[:N]",
    )
    chase_cmd.add_argument(
        "--branch-parallelism", default="serial", metavar="MODE",
        help="race the disjunctive search's derived scenarios: serial "
             "(default), thread[:N] or process[:N]; results are "
             "bit-identical to the serial sweep",
    )
    chase_cmd.add_argument(
        "--kernel", default="columnar", choices=("columnar", "reference"),
        metavar="KERNEL",
        help="working-instance storage: columnar (interned struct-of-"
             "arrays, default) or reference (set-based Instance)",
    )
    chase_cmd.add_argument(
        "--no-verify", action="store_true", help="skip the soundness check"
    )
    chase_cmd.add_argument(
        "--show-target", action="store_true", help="print the produced instance"
    )
    chase_cmd.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="record a flight-recorder trace (spans + metrics) of the "
             "run as JSONL; render it with 'grom profile PATH'",
    )

    subparsers.add_parser("demo", help="run the paper's running example")

    export = subparsers.add_parser(
        "export-example", help="write the running example as a DSL file"
    )
    export.add_argument("output", type=Path)

    batch = subparsers.add_parser(
        "batch",
        help="run a generated scenario corpus through the whole pipeline",
    )
    batch.add_argument(
        "corpus", nargs="?", default=None,
        help="corpus name (default: the built-in mixed workload)",
    )
    batch.add_argument(
        "--list", action="store_true", help="list available corpora and exit"
    )
    batch.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial; >1 uses a multiprocessing pool)",
    )
    batch.add_argument(
        "--parallelism", default="serial", metavar="MODE",
        help="intra-chase sharding per task (serial, thread[:N], "
             "process[:N]); capped so jobs x branch workers x chase "
             "workers <= cpu count",
    )
    batch.add_argument(
        "--branch-parallelism", default="serial", metavar="MODE",
        help="branch racing of each task's disjunctive search (serial, "
             "thread[:N], process[:N]); shares the cpu budget with "
             "--jobs and --parallelism",
    )
    batch.add_argument(
        "--timeout", type=float, default=None,
        help="per-scenario wall-clock budget in seconds",
    )
    batch.add_argument(
        "--limit", type=int, default=None,
        help="only run the first N scenarios of the corpus",
    )
    batch.add_argument(
        "--cache-dir", type=Path, default=None,
        help="directory for the on-disk rewrite cache (shared by workers "
             "and by repeat runs)",
    )
    batch.add_argument(
        "--no-cache", action="store_true",
        help="disable the content-addressed rewrite cache",
    )
    batch.add_argument(
        "--results", type=Path, default=None,
        help="write one JSONL task record per scenario to this file",
    )
    batch.add_argument(
        "--max-scenarios", type=int, default=256,
        help="budget for the greedy ded chase",
    )
    batch.add_argument(
        "--no-verify", action="store_true", help="skip the soundness check"
    )
    batch.add_argument(
        "--trace", type=Path, default=None, metavar="PATH",
        help="trace every task with the flight recorder and write the "
             "merged span/metric stream as JSONL; render it with "
             "'grom profile PATH'",
    )

    profile = subparsers.add_parser(
        "profile",
        help="render a flight-recorder trace as a self-time phase table",
    )
    profile.add_argument(
        "trace", type=Path, help="JSONL trace written by --trace"
    )
    profile.add_argument(
        "--top", type=int, default=20,
        help="show at most this many phases (default 20)",
    )
    return parser


def _load(path: Path) -> ParsedDocument:
    return parse_scenario(path.read_text())


def _source_instance(document: ParsedDocument, csv_dir: Optional[Path]) -> Instance:
    if csv_dir is not None:
        return load_instance(document.scenario.source_schema, csv_dir)
    if document.source_instance is not None:
        return document.source_instance
    print("warning: no source instance (empty input)", file=sys.stderr)
    return Instance(document.scenario.source_schema)


def _cmd_analyze(args: argparse.Namespace) -> int:
    document = _load(args.scenario)
    prediction = predict_deds(document.scenario)
    print(f"scenario: {document.scenario.name}")
    print(f"may produce deds: {'YES' if prediction.may_have_deds else 'no'}")
    if prediction.culprits:
        table = Table("Offending dependencies", ["dependency", "views to revisit"])
        for origin, views in prediction.culprits.items():
            table.add(origin, ", ".join(views))
        table.print()
    diagnostics = Table(
        "View diagnostics",
        ["view", "union", "negation", "depth", "problematic"],
    )
    for diagnostic in prediction.view_diagnostics.values():
        diagnostics.add(
            diagnostic.name,
            diagnostic.union,
            diagnostic.direct_negation,
            diagnostic.negation_depth,
            diagnostic.problematic,
        )
    diagnostics.print()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import (
        Severity,
        lint_file,
        lint_scenario,
        render_report,
        reports_payload,
    )

    reports = []
    for path in args.scenarios:
        reports.append(lint_file(path))
    if args.corpus is not None:
        from repro.runtime.corpus import get_corpus

        try:
            corpus = get_corpus(args.corpus)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        for spec in corpus:
            generated = spec.build()
            reports.append(
                lint_scenario(
                    generated.scenario,
                    source=f"{corpus.name}:{spec.label}",
                )
            )
    if not reports:
        print("error: nothing to lint (pass scenario files or --corpus)",
              file=sys.stderr)
        return 2

    minimum = Severity.WARNING if args.quiet else Severity.INFO
    clean = 0
    for report in reports:
        rendered = render_report(report, minimum=minimum)
        if rendered:
            print(rendered)
        if report.ok:
            clean += 1
    payload = reports_payload(reports)
    if args.json is not None:
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote lint report to {args.json}")
    totals = payload["totals"]
    print(
        f"linted {len(reports)} scenario(s): {clean} clean, "
        f"{totals['error']} error(s), {totals['warning']} warning(s)"
    )
    return 0 if payload["ok"] else 1


def _cmd_rewrite(args: argparse.Namespace) -> int:
    document = _load(args.scenario)
    result = rewrite(document.scenario)
    print(render_dependencies(result.dependencies, unicode=not args.ascii))
    counts = ", ".join(f"{k}: {v}" for k, v in sorted(result.counts().items()))
    print(f"\n{len(result.dependencies)} dependencies ({counts})")
    if result.has_deds:
        print(f"deds present; problematic views: {result.problematic_views()}")
    return 0


def _write_trace_file(path: Path, payload, meta: dict) -> None:
    """Merge a flight-recorder payload and write it as a JSONL trace."""
    from repro.obs.jsonl import write_trace
    from repro.obs.recorder import FlightRecorder

    recorder = FlightRecorder()
    recorder.merge_payload(payload)
    written = write_trace(path, recorder, meta=meta)
    print(f"wrote {written} trace records to {path}")


def _cmd_chase(args: argparse.Namespace) -> int:
    import time

    from repro.chase.engine import ChaseConfig
    from repro.obs.recorder import TraceConfig

    document = _load(args.scenario)
    source = _source_instance(document, args.csv)
    trace_config = TraceConfig(enabled=True) if args.trace is not None else None
    config = (
        ChaseConfig(
            parallelism=args.parallelism,
            branch_parallelism=args.branch_parallelism,
            kernel=args.kernel,
            trace=trace_config,
        )
        if args.parallelism != "serial"
        or args.branch_parallelism != "serial"
        or args.kernel != "columnar"
        or trace_config is not None
        else None
    )
    begin = time.perf_counter()
    outcome = run_scenario(
        document.scenario,
        source,
        verify=not args.no_verify,
        config=config,
        max_scenarios=args.max_scenarios,
    )
    wall = time.perf_counter() - begin
    if args.trace is not None:
        _write_trace_file(
            args.trace,
            outcome.trace,
            {
                "command": "chase",
                "scenario": document.scenario.name,
                "wall_seconds": round(wall, 6),
            },
        )
    print(f"rewriting: {outcome.rewrite!r}")
    print(f"chase:     {outcome.chase}")
    print(f"sharding:  {outcome.chase.sharding}")
    if outcome.chase.branch_racing != "serial":
        print(f"racing:    {outcome.chase.branch_racing}")
    if outcome.chase.branch_selection:
        print(f"branches:  {outcome.chase.branch_selection} "
              f"(after {outcome.chase.scenarios_tried} scenarios)")
    if outcome.verification is not None:
        print(f"verify:    {outcome.verification}")
    if args.show_target and outcome.chase.ok:
        print()
        print(outcome.target)
    return 0 if outcome.ok else 1


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.scenarios.running_example import (
        build_scenario,
        generate_source_instance,
    )

    scenario = build_scenario()
    source = generate_source_instance(products=12, seed=7, benign_name_pairs=1)
    result = rewrite(scenario)
    print("== Rewritten dependencies (note e0 -> the paper's ded d0) ==")
    print(render_dependencies(result.dependencies, unicode=False))
    outcome = run_scenario(scenario, source)
    print()
    print(f"chase:  {outcome.chase}")
    print(f"verify: {outcome.verification}")
    sizes = {r: outcome.target.size(r) for r in sorted(outcome.target.relations())}
    print(f"target sizes: {sizes}")
    return 0 if outcome.ok else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.reporting import (
        batch_family_table,
        batch_slowest_table,
        batch_summary_table,
    )
    from repro.runtime.corpus import DEFAULT_CORPUS, describe_corpora, get_corpus
    from repro.runtime.executor import BatchOptions, run_batch
    from repro.runtime.results import write_jsonl

    if args.list:
        table = Table("Available corpora", ["name", "scenarios", "description"])
        for name, size, description in describe_corpora():
            table.add(name, size, description)
        table.print()
        return 0

    try:
        corpus = get_corpus(args.corpus or DEFAULT_CORPUS)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.limit is not None:
        corpus = corpus.limited(args.limit)

    options = BatchOptions(
        jobs=args.jobs,
        parallelism=args.parallelism,
        branch_parallelism=args.branch_parallelism,
        timeout=args.timeout,
        verify=not args.no_verify,
        max_scenarios=args.max_scenarios,
        use_cache=not args.no_cache,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
        trace=args.trace is not None,
    )
    report = run_batch(corpus, options)

    if args.results is not None:
        written = write_jsonl(report.records, args.results)
        print(f"wrote {written} task records to {args.results}")
    if args.trace is not None:
        from repro.obs.jsonl import write_trace
        from repro.obs.recorder import FlightRecorder

        merged = FlightRecorder()
        for record in report.records:
            # Pooled tasks ran concurrently in separate processes, so
            # their spans must not share the coordinator's "main" label
            # (that would double-count their self time against wall);
            # serial tasks genuinely are the coordinator's own time.
            merged.merge_payload(
                record.trace,
                worker=f"task-{record.index}" if report.mode == "pool" else None,
            )
        written = write_trace(
            args.trace,
            merged,
            meta={
                "command": "batch",
                "corpus": report.corpus,
                "mode": report.mode,
                "jobs": report.jobs,
                "tasks": len(report.records),
                "wall_seconds": round(report.wall_seconds, 6),
            },
        )
        print(f"wrote {written} trace records to {args.trace}")
    batch_summary_table(report).print()
    batch_family_table(report.records).print()
    batch_slowest_table(report.records).print()

    summary = report.summary
    if not summary.clean:
        for record in report.records:
            if record.error:
                print(
                    f"problem: {record.label}: {record.status}: {record.error}",
                    file=sys.stderr,
                )
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.jsonl import TraceFormatError, read_trace
    from repro.obs.profile import profile_trace, render_profile

    try:
        trace = read_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        print(f"error: {args.trace}: {exc}", file=sys.stderr)
        return 2
    report = profile_trace(trace)
    print(render_profile(report, trace, top=args.top))
    return 0


def _cmd_export_example(args: argparse.Namespace) -> int:
    from repro.scenarios.running_example import (
        build_scenario,
        generate_source_instance,
    )

    text = serialize_scenario(
        build_scenario(),
        source_instance=generate_source_instance(products=8, seed=0),
    )
    args.output.write_text(text)
    print(f"wrote {args.output}")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = build_argument_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "lint": _cmd_lint,
        "rewrite": _cmd_rewrite,
        "chase": _cmd_chase,
        "demo": _cmd_demo,
        "export-example": _cmd_export_example,
        "batch": _cmd_batch,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
