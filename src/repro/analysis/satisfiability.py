"""Static satisfiability of premise comparison sets.

A premise only matches bindings that satisfy *all* of its comparisons,
so a contradictory comparison set (``x < 2, x > 4``) makes the whole
dependency dead code — no instance, however large, can ever fire it.
:func:`contradiction_reason` detects the decidable fragment of this:

* ground comparisons that evaluate to false;
* reflexive impossibilities (``x < x``, ``x != x``);
* opposite variable-pair constraints (``x < y`` together with ``y <= x``,
  ``x = y`` together with ``x != y``);
* an empty constant interval per variable (lower/upper bounds, pinned
  values and exclusions).

The analysis is sound for instances with labeled nulls: order
comparisons are only satisfied by comparable constants, and ``=`` on
nulls is null identity, so a binding that escapes the constant-level
contradiction still fails at least one comparison directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic.atoms import Comparison, Conjunction
from repro.logic.terms import Constant, Variable

__all__ = ["contradiction_reason"]

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def _render(comparison: Comparison) -> str:
    def term(t: object) -> str:
        if isinstance(t, Variable):
            return t.name
        if isinstance(t, Constant):
            return repr(t.value)
        return str(t)

    return f"{term(comparison.left)} {comparison.op} {term(comparison.right)}"


def _same(a: object, b: object) -> bool:
    """Typed equality: values of different Python types never match."""
    return type(a) is type(b) and a == b


def _comparable(a: object, b: object) -> bool:
    """Same-type values (bool kept apart from int, as typed columns do)."""
    return type(a) is type(b) and not isinstance(a, bool)


class _Interval:
    """Narrowing constant bounds for one variable."""

    def __init__(self) -> None:
        self.lower: Optional[Tuple[object, bool]] = None  # (bound, inclusive)
        self.upper: Optional[Tuple[object, bool]] = None
        self.pinned: Optional[Tuple[object]] = None
        self.excluded: List[object] = []

    def constrain(self, op: str, value: object) -> bool:
        """Apply ``var op value``; False when the interval became empty."""
        if op == "=":
            if self.pinned is not None and not _same(self.pinned[0], value):
                return False
            self.pinned = (value,)
        elif op == "!=":
            self.excluded.append(value)
        elif op in ("<", "<="):
            inclusive = op == "<="
            if self.upper is None:
                self.upper = (value, inclusive)
            elif _comparable(value, self.upper[0]) and (
                value < self.upper[0]
                or (value == self.upper[0] and not inclusive)
            ):
                self.upper = (value, inclusive)
        else:  # > / >=
            inclusive = op == ">="
            if self.lower is None:
                self.lower = (value, inclusive)
            elif _comparable(value, self.lower[0]) and (
                value > self.lower[0]
                or (value == self.lower[0] and not inclusive)
            ):
                self.lower = (value, inclusive)
        return self._consistent()

    def _consistent(self) -> bool:
        lo, hi = self.lower, self.upper
        if lo and hi and _comparable(lo[0], hi[0]):
            if lo[0] > hi[0]:
                return False
            if lo[0] == hi[0] and not (lo[1] and hi[1]):
                return False
        if self.pinned is not None:
            value = self.pinned[0]
            if any(_same(value, other) for other in self.excluded):
                return False
            if (
                lo
                and _comparable(value, lo[0])
                and (value < lo[0] or (value == lo[0] and not lo[1]))
            ):
                return False
            if (
                hi
                and _comparable(value, hi[0])
                and (value > hi[0] or (value == hi[0] and not hi[1]))
            ):
                return False
        return True


def contradiction_reason(premise: Conjunction) -> Optional[str]:
    """A human-readable reason when the comparisons can never all hold.

    ``None`` means "no contradiction found", not "satisfiable" — the
    check is deliberately incomplete (it ignores transitive chains like
    ``x < y, y < z, z < x``).
    """
    intervals: Dict[Variable, _Interval] = {}
    pair_ops: Dict[Tuple[Variable, Variable], List[Tuple[str, Comparison]]] = {}

    for comparison in premise.comparisons:
        left, right, op = comparison.left, comparison.right, comparison.op
        if comparison.is_ground():
            if not comparison.evaluate():
                return f"comparison {_render(comparison)} is false"
            continue
        if isinstance(left, Constant) and isinstance(right, Variable):
            left, right, op = right, left, _FLIP[op]
        if isinstance(left, Variable) and isinstance(right, Constant):
            interval = intervals.setdefault(left, _Interval())
            if not interval.constrain(op, right.value):
                return (
                    f"comparisons on {left.name} are contradictory "
                    f"(at {_render(comparison)})"
                )
            continue
        if isinstance(left, Variable) and isinstance(right, Variable):
            if left == right and op in ("<", ">", "!="):
                return f"comparison {_render(comparison)} can never hold"
            if left == right:
                continue
            key, keyed_op = (left, right), op
            if (right, left) in pair_ops or right.name < left.name:
                key, keyed_op = (right, left), _FLIP[op]
            seen = pair_ops.setdefault(key, [])
            for prior_op, prior in seen:
                if _opposed(prior_op, keyed_op):
                    return (
                        f"comparisons {_render(prior)} and "
                        f"{_render(comparison)} are contradictory"
                    )
            seen.append((keyed_op, comparison))
    return None


_OPPOSED = {
    ("<", ">"), ("<", ">="), ("<", "="),
    ("<=", ">"), ("=", ">"), ("=", "!="),
}


def _opposed(a: str, b: str) -> bool:
    return (a, b) in _OPPOSED or (b, a) in _OPPOSED
