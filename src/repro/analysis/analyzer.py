"""The mapping analyzer: one pass, every verdict.

:func:`analyze_dependencies` runs the termination ladder and the firing
analysis over a rewritten dependency set and folds the results into a
:class:`MappingAnalysis` — the single object the pipeline attaches to
results, the engine consults for guard dropping and dead-dependency
pruning, and ``grom lint`` renders for humans and CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic, has_errors, sort_diagnostics
from repro.analysis.firing import FiringReport, analyze_firing
from repro.analysis.satisfiability import contradiction_reason
from repro.analysis.termination import (
    TerminationClass,
    TerminationReport,
    classify_termination,
)
from repro.errors import UnsafeDependencyError
from repro.logic.dependencies import Dependency

__all__ = ["MappingAnalysis", "analyze_dependencies"]

_AUX_PREFIX = "_grom_req_"
"""Mirror of ``repro.core.rewriter.AUX_PREFIX``.

Kept literal so the analysis layer depends only on ``repro.logic``;
``tests/test_analysis.py`` asserts the two constants agree.
"""


@dataclass(frozen=True)
class MappingAnalysis:
    """Everything the static analyzer knows about one scenario."""

    termination: TerminationReport
    firing: FiringReport
    diagnostics: Tuple[Diagnostic, ...]

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    def counters(self) -> Dict[str, int]:
        """``analysis.*`` counters for the flight recorder."""
        severities = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            severities[diagnostic.severity.value] += 1
        return {
            "analysis.proven_terminating": int(self.termination.proven),
            "analysis.dead_dependencies": len(self.firing.dead_dependencies),
            "analysis.strata": len(self.firing.strata),
            "analysis.diagnostics.error": severities["error"],
            "analysis.diagnostics.warning": severities["warning"],
            "analysis.diagnostics.info": severities["info"],
        }

    def to_payload(self) -> Dict[str, object]:
        return {
            "termination": self.termination.to_payload(),
            "firing": self.firing.to_payload(),
            "diagnostics": [d.to_payload() for d in self.diagnostics],
            "ok": self.ok,
        }


def _schedule_text(firing: FiringReport) -> str:
    rendered = [
        "{" + ", ".join(str(index) for index in stratum) + "}"
        for stratum in firing.strata
    ]
    return " → ".join(rendered) if rendered else "∅"


def _name_of(dependency: Dependency, index: int) -> str:
    return dependency.name or f"dependency[{index}]"


def _origin_of(dependency: Dependency, index: int) -> str:
    """User-level mapping/constraint a rewritten dependency came from.

    The rewriter encodes provenance in names: ``m0`` unfolds to
    ``m0.g1``, ded branches to ``m0.b2`` / ``m0.b2.g0`` and split egds
    to ``k0#p1``.  Anonymous dependencies are their own origin.
    """
    name = dependency.name
    if not name:
        return f"dependency[{index}]"
    return name.split(".", 1)[0].split("#", 1)[0]


def _produces_facts(dependency: Dependency) -> bool:
    return any(disjunct.atoms for disjunct in dependency.disjuncts)


def analyze_dependencies(
    dependencies: Iterable[Dependency],
    source_relations: Iterable[str],
    target_relations: Optional[Iterable[str]] = None,
) -> MappingAnalysis:
    """Analyze a rewritten dependency set against its source schema.

    ``source_relations`` are assumed populated (the static base of the
    firing fixpoint); ``target_relations``, when given, suppress the
    never-consumed warning for relations the scenario is *supposed* to
    materialize.
    """
    dependencies = list(dependencies)
    base = sorted(set(source_relations))
    targets = None if target_relations is None else set(target_relations)

    diagnostics: List[Diagnostic] = []
    for index, dependency in enumerate(dependencies):
        try:
            dependency.check_safety()
        except UnsafeDependencyError as error:
            diagnostics.append(
                Diagnostic(
                    code="GROM103",
                    message=str(error),
                    subject=_name_of(dependency, index),
                )
            )

    termination = classify_termination(dependencies)
    firing = analyze_firing(dependencies, base)

    diagnostics.append(
        Diagnostic(
            code="GROM001",
            message=(
                f"termination: {termination.classification} "
                f"({termination.detail})"
            ),
            subject=str(termination.classification),
        )
    )
    diagnostics.append(
        Diagnostic(
            code="GROM002",
            message=(
                f"fire schedule: {len(firing.strata)} strata "
                f"{_schedule_text(firing)}"
            ),
            subject="schedule",
        )
    )

    # Triage dead dependencies by user-level origin.  A dead *branch*
    # of an otherwise-live mapping is expected rewriter output (the
    # engine prunes it); a mapping whose every rewritten form is dead
    # can never move data; a constraint that can never fire is merely
    # vacuous.
    origin_members: Dict[str, List[int]] = {}
    for index, dependency in enumerate(dependencies):
        origin_members.setdefault(_origin_of(dependency, index), []).append(index)
    dead = set(firing.dead_dependencies)
    for index in firing.dead_dependencies:
        dependency = dependencies[index]
        missing = sorted(
            relation
            for relation in {a.relation for a in dependency.premise.atoms}
            if relation not in firing.populatable
        )
        if missing:
            reason = (
                f"relation(s) {', '.join(missing)} can never be populated"
            )
        else:
            reason = (
                contradiction_reason(dependency.premise)
                or "premise can never match"
            )
        siblings = origin_members[_origin_of(dependency, index)]
        if any(sibling not in dead for sibling in siblings):
            code = "GROM003"
            message = f"dead rewritten branch, pruned: {reason}"
        elif any(_produces_facts(dependencies[s]) for s in siblings):
            code = "GROM101"
            message = f"premise can never match: {reason}"
        else:
            code = "GROM204"
            message = f"constraint can never fire: {reason}"
        diagnostics.append(
            Diagnostic(
                code=code,
                message=message,
                subject=_name_of(dependency, index),
            )
        )

    for index, dependency in enumerate(dependencies):
        for negation in dependency.premise.negations:
            vacuous = sorted(
                relation
                for relation in {a.relation for a in negation.inner.atoms}
                if relation not in firing.populatable
            )
            if vacuous:
                diagnostics.append(
                    Diagnostic(
                        code="GROM102",
                        message=(
                            f"negated relation(s) {', '.join(vacuous)} can "
                            f"never be populated; the negation is vacuously "
                            f"true"
                        ),
                        subject=_name_of(dependency, index),
                    )
                )

    if not termination.proven:
        diagnostics.append(
            Diagnostic(
                code="GROM201",
                message=(
                    "termination unproven; the chase runs under a step "
                    "budget" + (f" ({termination.detail})" if termination.detail else "")
                ),
                subject=str(TerminationClass.UNPROVEN),
            )
        )

    ded_count = sum(1 for d in dependencies if d.is_ded())
    if ded_count:
        diagnostics.append(
            Diagnostic(
                code="GROM202",
                message=(
                    f"{ded_count} disjunctive dependencies: the greedy ded "
                    f"search sweeps branch selections"
                ),
                subject="deds",
            )
        )

    if targets is not None:
        consumed = {
            atom.relation
            for dependency in dependencies
            for atom in dependency.premise.atoms
        }
        for relation in sorted(firing.populatable - set(base)):
            if (
                relation not in consumed
                and relation not in targets
                and not relation.startswith(_AUX_PREFIX)
            ):
                diagnostics.append(
                    Diagnostic(
                        code="GROM203",
                        message=(
                            f"relation {relation} is populated but never "
                            f"consumed and is not in the target schema"
                        ),
                        subject=relation,
                    )
                )

    return MappingAnalysis(
        termination=termination,
        firing=firing,
        diagnostics=sort_diagnostics(diagnostics),
    )
