"""Chase termination criteria: weak, joint, and super-weak acyclicity.

The chase is guaranteed to terminate for *weakly acyclic* dependency
sets (Fagin, Kolaitis, Miller, Popa — the paper's [4]).  That criterion
is the seed of this module; it now sits in a ladder of strictly more
general classes:

``FULL`` ⊂ ``WEAKLY_ACYCLIC`` ⊂ ``JOINTLY_ACYCLIC`` ⊂ ``SUPER_WEAKLY_ACYCLIC``

* **full** — no existential variables anywhere; the chase is bounded by
  the active domain regardless of policy.
* **weak acyclicity** — no cycle through a special edge of the position
  graph; sound for tgds *and* egds, and for every chase policy
  (including the oblivious chase).
* **joint acyclicity** (Krötzsch & Rudolph) — per-existential ``Mov``
  position sets; acyclicity of the existential-dependency graph proves
  termination of the skolem chase, hence of the restricted chase.
* **super-weak acyclicity** (Marnette) — place-level refinement of
  joint acyclicity that can see constants: a head place only feeds a
  body place when the two atoms unify, so constant clashes break flow
  that the position-level criteria must assume.

Two soundness caps are deliberate:

* Joint and super-weak acyclicity are only attempted on *equality-free*
  sets.  Egd unification can merge nulls into frontier bindings in ways
  the position/place flow does not model; with equalities present the
  ladder stops at weak acyclicity.
* Joint/super-weak proofs do **not** cover the classical oblivious
  chase (one null per full-body trigger): ``R(x,y) → ∃z R(x,z)`` is
  jointly acyclic, yet the oblivious chase re-triggers on every fresh
  null forever.  :meth:`TerminationReport.proven_for` encodes which
  policy a verdict licenses; the engine must consult it before
  dropping guards.

Ded disjuncts are union-edged (every branch contributes flow), so a
verdict is sound for any branch selection the greedy ded chase makes.
Premise negation restricts matches and contributes no value flow; it is
ignored here and vetted separately by the lint layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.graphs import strongly_connected_components
from repro.logic.atoms import Atom
from repro.logic.dependencies import Dependency
from repro.logic.terms import Constant, Variable

__all__ = [
    "Position",
    "PositionGraph",
    "position_graph",
    "is_weakly_acyclic",
    "weak_acyclicity_report",
    "TerminationClass",
    "TerminationReport",
    "classify_termination",
]

Position = Tuple[str, int]
"""(relation, column index)."""


@dataclass
class PositionGraph:
    """The dependency position graph with regular and special edges."""

    regular: Set[Tuple[Position, Position]]
    special: Set[Tuple[Position, Position]]

    def all_edges(self) -> List[Tuple[Position, Position, bool]]:
        out = [(a, b, False) for a, b in sorted(self.regular)]
        out += [(a, b, True) for a, b in sorted(self.special)]
        return out


def position_graph(dependencies: Iterable[Dependency]) -> PositionGraph:
    """Build the position graph of a dependency set.

    For each dependency, each disjunct is treated as a tgd conclusion:
    for every premise position ``p`` of a frontier variable ``x``:

    * a regular edge ``p → q`` for every conclusion position ``q`` of ``x``;
    * a special edge ``p → q'`` for every conclusion position ``q'`` of an
      existentially quantified variable in the same disjunct.
    """
    regular: Set[Tuple[Position, Position]] = set()
    special: Set[Tuple[Position, Position]] = set()
    for dependency in dependencies:
        premise_positions: Dict[Variable, List[Position]] = {}
        for atom in dependency.premise.atoms:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    premise_positions.setdefault(term, []).append(
                        (atom.relation, index)
                    )
        for disjunct in dependency.disjuncts:
            if not disjunct.atoms:
                continue
            conclusion_positions: Dict[Variable, List[Position]] = {}
            for atom in disjunct.atoms:
                for index, term in enumerate(atom.terms):
                    if isinstance(term, Variable):
                        conclusion_positions.setdefault(term, []).append(
                            (atom.relation, index)
                        )
            frontier = [
                v for v in conclusion_positions if v in premise_positions
            ]
            existential = [
                v for v in conclusion_positions if v not in premise_positions
            ]
            for variable in frontier:
                for source in premise_positions[variable]:
                    for target in conclusion_positions[variable]:
                        regular.add((source, target))
                    for invented in existential:
                        for target in conclusion_positions[invented]:
                            special.add((source, target))
    return PositionGraph(regular, special)


def _rich_position_graph(dependencies: Iterable[Dependency]) -> PositionGraph:
    """The *extended* position graph of Hernich & Schweikardt.

    Like :func:`position_graph`, but special edges start from the
    positions of **every** premise variable, frontier or not: the
    oblivious chase fires once per full-body binding, so a null landing
    in any body position — even one the head never copies — re-triggers
    the rule and mints fresh nulls.  Acyclicity of this graph (*rich
    acyclicity*) is what licenses dropping guards under the oblivious
    policy; ``R(x,y) → ∃z R(x,z)`` is weakly but not richly acyclic.
    """
    dependencies = list(dependencies)
    base = position_graph(dependencies)
    special = set(base.special)
    for dependency in dependencies:
        premise_positions: Dict[Variable, List[Position]] = {}
        for atom in dependency.premise.atoms:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    premise_positions.setdefault(term, []).append(
                        (atom.relation, index)
                    )
        for disjunct in dependency.disjuncts:
            if not disjunct.atoms:
                continue
            existential_positions: List[Position] = []
            for atom in disjunct.atoms:
                for index, term in enumerate(atom.terms):
                    if isinstance(term, Variable) and term not in premise_positions:
                        existential_positions.append((atom.relation, index))
            if not existential_positions:
                continue
            for positions in premise_positions.values():
                for source in positions:
                    for target in existential_positions:
                        special.add((source, target))
    return PositionGraph(set(base.regular), special)


def _cyclic_special_edges(graph: PositionGraph) -> List[Tuple[Position, Position]]:
    """Special edges lying inside a strongly connected component."""
    nodes: List[Position] = sorted(
        {p for edge in graph.regular | graph.special for p in edge}
    )
    edges = sorted(graph.regular | graph.special)
    component_of: Dict[Position, int] = {}
    for index, component in enumerate(strongly_connected_components(nodes, edges)):
        for node in component:
            component_of[node] = index
    return [
        (source, target)
        for source, target in sorted(graph.special)
        if component_of[source] == component_of[target]
    ]


def is_weakly_acyclic(dependencies: Iterable[Dependency]) -> bool:
    """Whether the dependency set is weakly acyclic.

    True iff the position graph has no cycle passing through a special
    edge — equivalently, no strongly connected component contains a
    special edge.
    """
    return not _cyclic_special_edges(position_graph(dependencies))


def weak_acyclicity_report(
    dependencies: Sequence[Dependency],
) -> Tuple[bool, List[Tuple[Position, Position]]]:
    """Weak acyclicity plus the special edges inside cycles (the culprits)."""
    culprits = _cyclic_special_edges(position_graph(dependencies))
    return (not culprits, culprits)


# ---------------------------------------------------------------------------
# Rule view shared by the joint and super-weak analyses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Rule:
    """One (dependency, disjunct) pair seen as a plain existential rule."""

    dep_index: int
    disjunct_index: int
    body: Tuple[Atom, ...]
    head: Tuple[Atom, ...]

    @property
    def rule_id(self) -> Tuple[int, int]:
        return (self.dep_index, self.disjunct_index)

    def body_positions(self) -> Dict[Variable, FrozenSet[Position]]:
        out: Dict[Variable, Set[Position]] = {}
        for atom in self.body:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    out.setdefault(term, set()).add((atom.relation, index))
        return {variable: frozenset(positions) for variable, positions in out.items()}

    def head_positions(self) -> Dict[Variable, FrozenSet[Position]]:
        out: Dict[Variable, Set[Position]] = {}
        for atom in self.head:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    out.setdefault(term, set()).add((atom.relation, index))
        return {variable: frozenset(positions) for variable, positions in out.items()}


def _rules(dependencies: Sequence[Dependency]) -> List[_Rule]:
    """Flatten deds into one rule per atom-bearing disjunct.

    Equality-only disjuncts create no atoms and contribute no value
    flow; denials have no disjuncts at all.  Both vanish here.
    """
    rules: List[_Rule] = []
    for dep_index, dependency in enumerate(dependencies):
        for disjunct_index, disjunct in enumerate(dependency.disjuncts):
            if disjunct.atoms:
                rules.append(
                    _Rule(
                        dep_index,
                        disjunct_index,
                        dependency.premise.atoms,
                        disjunct.atoms,
                    )
                )
    return rules


def _has_cycle(nodes: Sequence, edges: Set[Tuple]) -> bool:
    """True iff the graph has a directed cycle (self-loops included)."""
    if any(source == target for source, target in edges):
        return True
    return any(
        len(component) > 1
        for component in strongly_connected_components(nodes, sorted(edges))
    )


# ---------------------------------------------------------------------------
# Joint acyclicity (Krötzsch & Rudolph)
# ---------------------------------------------------------------------------


def _is_jointly_acyclic(rules: Sequence[_Rule]) -> bool:
    """Joint acyclicity of an equality-free rule set.

    For each existential variable ``y``, ``Mov(y)`` is the least set of
    positions containing every head position of ``y`` and closed under:
    if ALL body positions of a frontier variable ``x`` (of any rule) are
    in ``Mov(y)``, then all head positions of ``x`` are too.  The
    existential-dependency graph has an edge ``(r, y) → (r', y')`` iff
    some frontier variable of ``r'`` has all its body positions inside
    ``Mov(y)``; the set is jointly acyclic iff that graph is acyclic.
    """
    body_of = {rule.rule_id: rule.body_positions() for rule in rules}
    head_of = {rule.rule_id: rule.head_positions() for rule in rules}
    frontier_of = {
        rule.rule_id: sorted(
            set(body_of[rule.rule_id]) & set(head_of[rule.rule_id])
        )
        for rule in rules
    }

    existentials: List[Tuple[Tuple[int, int], Variable]] = []
    for rule in rules:
        for variable in sorted(
            set(head_of[rule.rule_id]) - set(body_of[rule.rule_id])
        ):
            existentials.append((rule.rule_id, variable))

    def movement(rule_id: Tuple[int, int], variable: Variable) -> FrozenSet[Position]:
        mov: Set[Position] = set(head_of[rule_id][variable])
        changed = True
        while changed:
            changed = False
            for rule in rules:
                for frontier_var in frontier_of[rule.rule_id]:
                    if body_of[rule.rule_id][frontier_var] <= mov:
                        added = head_of[rule.rule_id][frontier_var] - mov
                        if added:
                            mov |= added
                            changed = True
        return frozenset(mov)

    mov_of = {node: movement(*node) for node in existentials}
    edges: Set[Tuple[Tuple, Tuple]] = set()
    for source in existentials:
        mov = mov_of[source]
        for rule in rules:
            if not any(
                body_of[rule.rule_id][frontier_var] <= mov
                for frontier_var in frontier_of[rule.rule_id]
            ):
                continue
            for target in existentials:
                if target[0] == rule.rule_id:
                    edges.add((source, target))
    return not _has_cycle(existentials, edges)


# ---------------------------------------------------------------------------
# Super-weak acyclicity (Marnette)
# ---------------------------------------------------------------------------

_Place = Tuple[Tuple[int, int], str, int, int]
"""(rule id, "body" | "head", atom index, position index)."""


def _atoms_unify(left: Atom, right: Atom) -> bool:
    """Conservative atom unification: only constant clashes refute it.

    Repeated-variable constraints are ignored, which over-approximates
    real unifiability — extra flow can only make the criterion *fail*
    to prove termination, never prove it wrongly.
    """
    if left.relation != right.relation or len(left.terms) != len(right.terms):
        return False
    return not any(
        isinstance(term_left, Constant)
        and isinstance(term_right, Constant)
        and term_left != term_right
        for term_left, term_right in zip(left.terms, right.terms)
    )


def _is_super_weakly_acyclic(rules: Sequence[_Rule]) -> bool:
    """Super-weak acyclicity of an equality-free rule set.

    Places are variable occurrences in atoms.  ``Move(r)`` is the least
    place set containing the head places of ``r``'s existential
    variables and closed under transfer: if SOME body place of a
    frontier variable ``x`` unifies with a place in the set, all head
    places of ``x`` join it.  ``r ≺ r'`` iff a body-variable place of
    ``r'`` unifies with a place in ``Move(r)``; super-weak acyclicity
    is acyclicity of ``≺``.
    """
    atom_at: Dict[Tuple[Tuple[int, int], str, int], Atom] = {}
    body_places: Dict[Tuple[int, int], Dict[Variable, List[_Place]]] = {}
    head_places: Dict[Tuple[int, int], Dict[Variable, List[_Place]]] = {}
    for rule in rules:
        body_places[rule.rule_id] = {}
        head_places[rule.rule_id] = {}
        for part, atoms, registry in (
            ("body", rule.body, body_places[rule.rule_id]),
            ("head", rule.head, head_places[rule.rule_id]),
        ):
            for atom_index, atom in enumerate(atoms):
                atom_at[(rule.rule_id, part, atom_index)] = atom
                for position, term in enumerate(atom.terms):
                    if isinstance(term, Variable):
                        registry.setdefault(term, []).append(
                            (rule.rule_id, part, atom_index, position)
                        )

    def places_unify(left: _Place, right: _Place) -> bool:
        if left[3] != right[3]:
            return False
        return _atoms_unify(atom_at[left[:3]], atom_at[right[:3]])

    def move(rule: _Rule) -> List[_Place]:
        current: List[_Place] = []
        for variable in sorted(set(head_places[rule.rule_id]) - set(body_places[rule.rule_id])):
            current.extend(head_places[rule.rule_id][variable])
        seen = set(current)
        changed = True
        while changed:
            changed = False
            for other in rules:
                other_frontier = set(body_places[other.rule_id]) & set(
                    head_places[other.rule_id]
                )
                for variable in sorted(other_frontier):
                    if any(
                        places_unify(body_place, move_place)
                        for body_place in body_places[other.rule_id][variable]
                        for move_place in current
                    ):
                        for head_place in head_places[other.rule_id][variable]:
                            if head_place not in seen:
                                seen.add(head_place)
                                current.append(head_place)
                                changed = True
        return current

    move_of = {rule.rule_id: move(rule) for rule in rules}
    edges: Set[Tuple[Tuple[int, int], Tuple[int, int]]] = set()
    for rule in rules:
        source_move = move_of[rule.rule_id]
        if not source_move:
            continue
        for other in rules:
            if any(
                places_unify(body_place, move_place)
                for variable in sorted(body_places[other.rule_id])
                for body_place in body_places[other.rule_id][variable]
                for move_place in source_move
            ):
                edges.add((rule.rule_id, other.rule_id))
    rule_ids = [rule.rule_id for rule in rules]
    return not _has_cycle(rule_ids, edges)


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------


class TerminationClass(enum.Enum):
    """The cheapest criterion that proves the chase terminates."""

    FULL = "full"
    WEAKLY_ACYCLIC = "weakly_acyclic"
    JOINTLY_ACYCLIC = "jointly_acyclic"
    SUPER_WEAKLY_ACYCLIC = "super_weakly_acyclic"
    UNPROVEN = "unproven"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TerminationReport:
    """Outcome of the termination ladder over one dependency set."""

    classification: TerminationClass
    proven: bool
    weakly_acyclic: Optional[bool] = None
    jointly_acyclic: Optional[bool] = None
    super_weakly_acyclic: Optional[bool] = None
    richly_acyclic: Optional[bool] = None
    has_existentials: bool = False
    has_equalities: bool = False
    has_deds: bool = False
    culprits: Tuple[Tuple[Position, Position], ...] = field(default_factory=tuple)
    detail: str = ""

    def proven_for(self, policy: str) -> bool:
        """Whether the verdict licenses dropping guards under ``policy``.

        The oblivious chase fires once per *full-body* trigger, so a
        null landing in any body position re-triggers the rule — weak
        acyclicity does not bound it (``R(x,y) → ∃z R(x,z)``).  Only
        full sets and richly acyclic equality-free sets drop guards
        there.  The restricted chase terminates whenever the skolem
        chase does, so every proven class applies.
        """
        if not self.proven:
            return False
        if policy == "oblivious":
            if self.classification is TerminationClass.FULL:
                return True
            return bool(self.richly_acyclic) and not self.has_equalities
        return True

    def to_payload(self) -> Dict[str, object]:
        return {
            "classification": self.classification.value,
            "proven": self.proven,
            "weakly_acyclic": self.weakly_acyclic,
            "jointly_acyclic": self.jointly_acyclic,
            "super_weakly_acyclic": self.super_weakly_acyclic,
            "richly_acyclic": self.richly_acyclic,
            "has_existentials": self.has_existentials,
            "has_equalities": self.has_equalities,
            "has_deds": self.has_deds,
            "culprits": [
                [list(source), list(target)] for source, target in self.culprits
            ],
            "detail": self.detail,
        }


def classify_termination(dependencies: Sequence[Dependency]) -> TerminationReport:
    """Run the termination ladder and report the cheapest proof found."""
    dependencies = list(dependencies)
    has_deds = any(dependency.is_ded() for dependency in dependencies)
    has_equalities = any(
        disjunct.equalities
        for dependency in dependencies
        for disjunct in dependency.disjuncts
    )
    has_existentials = any(
        dependency.existential_variables(disjunct)
        for dependency in dependencies
        for disjunct in dependency.disjuncts
        if disjunct.atoms
    )

    if not has_existentials:
        return TerminationReport(
            classification=TerminationClass.FULL,
            proven=True,
            has_existentials=False,
            has_equalities=has_equalities,
            has_deds=has_deds,
            detail=(
                "no existential variables: every dependency is full and the "
                "chase is bounded by the active domain"
            ),
        )

    weakly, culprits = weak_acyclicity_report(dependencies)
    richly = not _cyclic_special_edges(_rich_position_graph(dependencies))
    if weakly:
        return TerminationReport(
            classification=TerminationClass.WEAKLY_ACYCLIC,
            proven=True,
            weakly_acyclic=True,
            richly_acyclic=richly,
            has_existentials=True,
            has_equalities=has_equalities,
            has_deds=has_deds,
            detail="no cycle through a special edge of the position graph",
        )

    if has_equalities:
        # Egd unification can merge nulls into frontier bindings in ways
        # the flow analyses below do not model; stop at weak acyclicity.
        return TerminationReport(
            classification=TerminationClass.UNPROVEN,
            proven=False,
            weakly_acyclic=False,
            richly_acyclic=richly,
            has_existentials=True,
            has_equalities=True,
            has_deds=has_deds,
            culprits=tuple(culprits),
            detail=(
                "not weakly acyclic; joint/super-weak acyclicity are not "
                "applied to sets with equalities"
            ),
        )

    rules = _rules(dependencies)
    jointly = _is_jointly_acyclic(rules)
    if jointly:
        return TerminationReport(
            classification=TerminationClass.JOINTLY_ACYCLIC,
            proven=True,
            weakly_acyclic=False,
            jointly_acyclic=True,
            richly_acyclic=richly,
            has_existentials=True,
            has_equalities=False,
            has_deds=has_deds,
            culprits=tuple(culprits),
            detail="existential-dependency graph of the Mov sets is acyclic",
        )

    super_weakly = _is_super_weakly_acyclic(rules)
    if super_weakly:
        return TerminationReport(
            classification=TerminationClass.SUPER_WEAKLY_ACYCLIC,
            proven=True,
            weakly_acyclic=False,
            jointly_acyclic=False,
            super_weakly_acyclic=True,
            richly_acyclic=richly,
            has_existentials=True,
            has_equalities=False,
            has_deds=has_deds,
            culprits=tuple(culprits),
            detail="place-level trigger relation is acyclic",
        )

    return TerminationReport(
        classification=TerminationClass.UNPROVEN,
        proven=False,
        weakly_acyclic=False,
        jointly_acyclic=False,
        super_weakly_acyclic=False,
        richly_acyclic=richly,
        has_existentials=True,
        has_equalities=False,
        has_deds=has_deds,
        culprits=tuple(culprits),
        detail="no termination criterion in the ladder applies",
    )
