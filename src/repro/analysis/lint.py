"""``grom lint``: the analyzer pointed at scenario files and corpora.

A lint run takes a scenario — DSL text, a file, or an in-memory
:class:`~repro.core.scenario.MappingScenario` — through parse → rewrite
→ :func:`~repro.analysis.analyzer.analyze_dependencies` and packages
the diagnostics with best-effort source spans.  Parse and rewrite
failures become diagnostics too (``GROM104``/``GROM105``), so a lint
run never raises on bad input: CI greps the JSON report, humans read
the pretty rendering, and the exit status is the error count.

Spans are best-effort by design: the parser does not thread source
locations through rewriting, so a diagnostic about dependency ``m1`` is
anchored at the first occurrence of the token ``m1`` in the scenario
text (or at the negated/unpopulatable relation's first mention).  A
subject invented by the rewriter simply gets no span.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.analyzer import MappingAnalysis, analyze_dependencies
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    SourceSpan,
    has_errors,
    render_diagnostic,
    sort_diagnostics,
)
from repro.errors import GromError, ParseError

__all__ = [
    "LintReport",
    "lint_text",
    "lint_file",
    "lint_scenario",
    "render_report",
    "reports_payload",
]


@dataclass(frozen=True)
class LintReport:
    """The lint outcome for one scenario."""

    source: str
    scenario: str
    diagnostics: Tuple[Diagnostic, ...]
    analysis: Optional[MappingAnalysis] = None

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)

    def severity_counts(self) -> Dict[str, int]:
        counts = {severity.value: 0 for severity in Severity}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.value] += 1
        return counts

    def to_payload(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "scenario": self.scenario,
            "ok": self.ok,
            "severity_counts": self.severity_counts(),
            "diagnostics": [d.to_payload() for d in self.diagnostics],
            "analysis": self.analysis.to_payload() if self.analysis else None,
        }


def _locate(text: str, token: str) -> Optional[SourceSpan]:
    """First whole-word occurrence of ``token`` in ``text``, 1-based."""
    if not token:
        return None
    pattern = re.compile(rf"\b{re.escape(token)}\b")
    for line_number, line in enumerate(text.splitlines(), start=1):
        match = pattern.search(line)
        if match is not None:
            return SourceSpan(
                line=line_number,
                column=match.start() + 1,
                end_column=match.end() + 1,
            )
    return None


def _attach_spans(
    diagnostics: Sequence[Diagnostic], text: str
) -> Tuple[Diagnostic, ...]:
    out: List[Diagnostic] = []
    for diagnostic in diagnostics:
        span = diagnostic.span or _locate(text, diagnostic.subject)
        out.append(diagnostic.with_span(span))
    return sort_diagnostics(out)


def lint_scenario(scenario, source: str = "<scenario>") -> LintReport:
    """Lint an in-memory scenario (no source text, hence no spans)."""
    from repro.core.rewriter import rewrite

    try:
        result = rewrite(scenario)
    except GromError as error:
        return LintReport(
            source=source,
            scenario=getattr(scenario, "name", ""),
            diagnostics=(
                Diagnostic(code="GROM105", message=str(error)),
            ),
        )
    analysis = analyze_dependencies(
        result.dependencies,
        result.source_relations(),
        result.target_relations(),
    )
    return LintReport(
        source=source,
        scenario=getattr(scenario, "name", ""),
        diagnostics=analysis.diagnostics,
        analysis=analysis,
    )


def lint_text(text: str, source: str = "<scenario>") -> LintReport:
    """Lint DSL scenario text, attaching best-effort source spans."""
    from repro.dsl.parser import parse_scenario

    try:
        document = parse_scenario(text)
    except ParseError as error:
        span = (
            SourceSpan(line=error.line, column=max(error.column, 1))
            if error.line
            else None
        )
        return LintReport(
            source=source,
            scenario="",
            diagnostics=(
                Diagnostic(code="GROM104", message=str(error), span=span),
            ),
        )
    except GromError as error:
        # Schema/arity validation failures raised while assembling the
        # parsed scenario: still the file's fault, still a diagnostic.
        return LintReport(
            source=source,
            scenario="",
            diagnostics=(
                Diagnostic(code="GROM104", message=str(error)),
            ),
        )
    report = lint_scenario(document.scenario, source=source)
    return LintReport(
        source=report.source,
        scenario=report.scenario,
        diagnostics=_attach_spans(report.diagnostics, text),
        analysis=report.analysis,
    )


def lint_file(path: Path) -> LintReport:
    """Lint one ``.grom`` scenario file."""
    try:
        text = path.read_text()
    except OSError as error:
        return LintReport(
            source=str(path),
            scenario="",
            diagnostics=(
                Diagnostic(code="GROM104", message=f"cannot read file: {error}"),
            ),
        )
    return lint_text(text, source=str(path))


def render_report(report: LintReport, minimum: Severity = Severity.INFO) -> str:
    """Pretty, line-oriented rendering of one report."""
    lines = [
        render_diagnostic(diagnostic, source=report.source)
        for diagnostic in report.diagnostics
        if diagnostic.severity.rank <= minimum.rank
    ]
    counts = report.severity_counts()
    scenario = f" ({report.scenario})" if report.scenario else ""
    lines.append(
        f"{report.source}{scenario}: "
        f"{counts['error']} errors, {counts['warning']} warnings, "
        f"{counts['info']} notes"
    )
    return "\n".join(lines)


def reports_payload(reports: Sequence[LintReport]) -> Dict[str, object]:
    """The machine-readable lint report CI uploads as an artifact."""
    totals = {severity.value: 0 for severity in Severity}
    for report in reports:
        for severity, count in report.severity_counts().items():
            totals[severity] += count
    return {
        "reports": [report.to_payload() for report in reports],
        "totals": totals,
        "ok": all(report.ok for report in reports),
    }
