"""Small deterministic graph kernels for the static analyzer.

The analyzer needs exactly two graph algorithms — strongly connected
components and a condensation-order traversal — over graphs whose nodes
are positions, rules or dependency indices.  They are implemented here
(iterative Tarjan plus a heap-based Kahn order) instead of pulling in a
graph library: the determinism guarantees of the whole repo extend to
the analyzer, so component *numbering* and stratum *order* must be
functions of the input alone, never of hash seeds or import versions.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

__all__ = ["strongly_connected_components", "condensation_order"]


def strongly_connected_components(
    nodes: Sequence[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> List[Tuple[Hashable, ...]]:
    """Tarjan's SCCs, iteratively, in a deterministic order.

    ``nodes`` fixes the DFS root order, so two calls with the same input
    produce the same component list; each component's members are
    returned in ``nodes`` order.  Edges mentioning unknown endpoints are
    ignored (the analyzer's graphs are closed by construction, this is
    belt-and-braces).
    """
    order = {node: position for position, node in enumerate(nodes)}
    adjacency: Dict[Hashable, List[Hashable]] = {node: [] for node in nodes}
    for source, target in edges:
        if source in order and target in order:
            adjacency[source].append(target)
    for successors in adjacency.values():
        successors.sort(key=order.__getitem__)

    index_of: Dict[Hashable, int] = {}
    lowlink: Dict[Hashable, int] = {}
    on_stack: Set[Hashable] = set()
    stack: List[Hashable] = []
    components: List[Tuple[Hashable, ...]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        # Explicit DFS stack of (node, iterator position) frames.
        work: List[Tuple[Hashable, int]] = [(root, 0)]
        while work:
            node, child_at = work.pop()
            if child_at == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            successors = adjacency[node]
            advanced = False
            while child_at < len(successors):
                successor = successors[child_at]
                child_at += 1
                if successor not in index_of:
                    work.append((node, child_at))
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component: List[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.sort(key=order.__getitem__)
                components.append(tuple(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def condensation_order(
    nodes: Sequence[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> List[Tuple[Hashable, ...]]:
    """SCCs in a deterministic topological order of the condensation.

    Kahn's algorithm over the component DAG with a min-heap keyed by
    each component's smallest member (in ``nodes`` order): among the
    components whose predecessors are all emitted, the one containing
    the earliest node comes first.  This is the analyzer's canonical
    stratum order.
    """
    position = {node: index for index, node in enumerate(nodes)}
    components = strongly_connected_components(nodes, edges)
    component_of = {
        node: index
        for index, component in enumerate(components)
        for node in component
    }
    successors: List[Set[int]] = [set() for _ in components]
    indegree = [0] * len(components)
    for source, target in edges:
        if source not in component_of or target not in component_of:
            continue
        from_component = component_of[source]
        to_component = component_of[target]
        if from_component != to_component and to_component not in successors[from_component]:
            successors[from_component].add(to_component)
            indegree[to_component] += 1

    def key(component_index: int) -> int:
        return position[components[component_index][0]]

    ready = [
        (key(index), index)
        for index in range(len(components))
        if indegree[index] == 0
    ]
    heapq.heapify(ready)
    out: List[Tuple[Hashable, ...]] = []
    while ready:
        _, index = heapq.heappop(ready)
        out.append(components[index])
        for successor in sorted(successors[index]):
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(ready, (key(successor), successor))
    return out
