"""Static mapping analysis: termination, firing graphs, diagnostics.

The analyzer decides, before any chase step runs, (1) whether the chase
provably terminates (and under which policy the proof applies), (2)
which dependencies can never fire and in what stratified order the live
ones feed each other, and (3) what a human or CI should be told about
the scenario — as stable-coded diagnostics behind ``grom lint``.
"""

from repro.analysis.analyzer import MappingAnalysis, analyze_dependencies
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    SourceSpan,
    has_errors,
    render_diagnostic,
    severity_of,
    sort_diagnostics,
)
from repro.analysis.firing import (
    FiringReport,
    analyze_firing,
    dead_dependency_indices,
    fire_schedule,
    firing_edges,
    populatable_relations,
)
from repro.analysis.lint import (
    LintReport,
    lint_file,
    lint_scenario,
    lint_text,
    render_report,
    reports_payload,
)
from repro.analysis.satisfiability import contradiction_reason
from repro.analysis.termination import (
    Position,
    PositionGraph,
    TerminationClass,
    TerminationReport,
    classify_termination,
    is_weakly_acyclic,
    position_graph,
    weak_acyclicity_report,
)

__all__ = [
    "MappingAnalysis",
    "analyze_dependencies",
    "CODES",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "has_errors",
    "render_diagnostic",
    "severity_of",
    "sort_diagnostics",
    "FiringReport",
    "analyze_firing",
    "dead_dependency_indices",
    "fire_schedule",
    "firing_edges",
    "populatable_relations",
    "LintReport",
    "lint_file",
    "lint_scenario",
    "lint_text",
    "render_report",
    "reports_payload",
    "contradiction_reason",
    "Position",
    "PositionGraph",
    "TerminationClass",
    "TerminationReport",
    "classify_termination",
    "is_weakly_acyclic",
    "position_graph",
    "weak_acyclicity_report",
]
