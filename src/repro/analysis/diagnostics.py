"""Diagnostics: stable codes, severities, and source spans.

Every verdict the analyzer produces is surfaced as a
:class:`Diagnostic` with a *stable* code — scripts and CI match on the
code, never on message text.  The registry:

======== ======== ======================================================
code     severity meaning
======== ======== ======================================================
GROM001  info     termination verdict for the scenario
GROM002  info     stratified fire schedule
GROM003  info     dead rewritten branch: one of a mapping's rewritten
                  dependencies can never fire (the engine prunes it),
                  but sibling branches keep the mapping alive
GROM101  error    unsatisfiable premise: every rewritten dependency of a
                  fact-producing mapping is dead — the mapping can never
                  move any data
GROM102  error    premise negation over a relation that can never hold a
                  fact — the negation is vacuously true
GROM103  error    unsafe dependency (unbound comparison/equality/negation
                  variable)
GROM104  error    scenario failed to parse
GROM105  error    scenario failed to rewrite
GROM201  warning  termination unproven: the chase runs under a step
                  budget
GROM202  info     disjunctive dependencies present: the greedy ded
                  search will sweep branch selections
GROM203  warning  relation is populated but never consumed and is not
                  part of the target schema
GROM204  warning  vacuous constraint: an egd or denial whose premise can
                  never match is trivially satisfied
======== ======== ======================================================

Codes are append-only: a released code never changes meaning, and a
retired code is never reused.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Severity",
    "SourceSpan",
    "Diagnostic",
    "CODES",
    "severity_of",
    "sort_diagnostics",
    "has_errors",
    "render_diagnostic",
]


class Severity(enum.Enum):
    """Diagnostic severity; ``rank`` orders error < warning < info."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


CODES: Dict[str, Tuple[Severity, str]] = {
    "GROM001": (Severity.INFO, "termination verdict"),
    "GROM002": (Severity.INFO, "fire schedule"),
    "GROM003": (Severity.INFO, "dead rewritten branch"),
    "GROM101": (Severity.ERROR, "unsatisfiable premise"),
    "GROM102": (Severity.ERROR, "vacuous premise negation"),
    "GROM103": (Severity.ERROR, "unsafe dependency"),
    "GROM104": (Severity.ERROR, "parse failure"),
    "GROM105": (Severity.ERROR, "rewrite failure"),
    "GROM201": (Severity.WARNING, "termination unproven"),
    "GROM202": (Severity.INFO, "disjunctive dependencies present"),
    "GROM203": (Severity.WARNING, "relation never consumed"),
    "GROM204": (Severity.WARNING, "vacuous constraint"),
}


def severity_of(code: str) -> Severity:
    return CODES[code][0]


@dataclass(frozen=True)
class SourceSpan:
    """A 1-based location in the scenario source text."""

    line: int
    column: int
    end_column: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def to_payload(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "column": self.column,
            "end_column": self.end_column,
        }


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, addressable by its stable code."""

    code: str
    message: str
    subject: str = ""
    span: Optional[SourceSpan] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> Severity:
        return severity_of(self.code)

    def with_span(self, span: Optional[SourceSpan]) -> "Diagnostic":
        return Diagnostic(self.code, self.message, self.subject, span)

    def to_payload(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "span": self.span.to_payload() if self.span else None,
        }


def sort_diagnostics(diagnostics: Sequence[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """Canonical order: severity, then code, then subject, then message."""
    return tuple(
        sorted(
            diagnostics,
            key=lambda d: (d.severity.rank, d.code, d.subject, d.message),
        )
    )


def has_errors(diagnostics: Sequence[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


def render_diagnostic(diagnostic: Diagnostic, source: str = "") -> str:
    """One pretty line: ``source:line:col: severity GROMnnn: message``."""
    location = source or "<scenario>"
    if diagnostic.span is not None:
        location = f"{location}:{diagnostic.span}"
    subject = f" [{diagnostic.subject}]" if diagnostic.subject else ""
    return (
        f"{location}: {diagnostic.severity.value} {diagnostic.code}: "
        f"{diagnostic.message}{subject}"
    )
