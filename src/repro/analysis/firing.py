"""The firing graph: who can populate whom, and in what order.

Termination (``analysis/termination.py``) asks *whether* the chase
stops; this module asks *which work is worth doing*.  Three artifacts
come out of the predicate-level firing graph of a dependency set:

* the **populatable** fixpoint — relations that can ever hold a fact,
  starting from the non-empty base relations and closing under "if all
  positive premise relations of a dependency are populatable, every
  conclusion relation is too" (deds union their branches: a relation is
  populatable if *some* branch choice can reach it);
* **dead dependencies** — dependencies with a positive premise atom
  over a relation that is not populatable, or whose premise comparisons
  are contradictory (``analysis/satisfiability.py``).  Their premise
  can never match under any branch selection, so the engine skips their
  enumeration entirely;
* the **fire schedule** — the SCC condensation of the dependency-level
  firing graph in deterministic topological order.  A dependency in a
  later stratum can never feed one in an earlier stratum, which is why
  the engine's delta-anchored enumeration retires strata monotonically.

Premise negation restricts matches and never populates anything, so it
is invisible here; only positive premise atoms gate deadness (a
negation over an empty relation is simply satisfied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.analysis.graphs import condensation_order
from repro.analysis.satisfiability import contradiction_reason
from repro.logic.dependencies import Dependency

__all__ = [
    "FiringReport",
    "firing_edges",
    "populatable_relations",
    "dead_dependency_indices",
    "fire_schedule",
    "analyze_firing",
]


def _positive_premise_relations(dependency: Dependency) -> FrozenSet[str]:
    return frozenset(atom.relation for atom in dependency.premise.atoms)


def _conclusion_relations(dependency: Dependency) -> FrozenSet[str]:
    out: Set[str] = set()
    for disjunct in dependency.disjuncts:
        out.update(disjunct.relations())
    return frozenset(out)


def firing_edges(dependencies: Sequence[Dependency]) -> List[Tuple[str, str]]:
    """Predicate-level edges: premise relation → conclusion relation."""
    edges: Set[Tuple[str, str]] = set()
    for dependency in dependencies:
        for source in _positive_premise_relations(dependency):
            for target in _conclusion_relations(dependency):
                edges.add((source, target))
    return sorted(edges)


def populatable_relations(
    dependencies: Sequence[Dependency], base: Iterable[str]
) -> FrozenSet[str]:
    """Relations that can ever hold a fact, starting from ``base``.

    The fixpoint over-approximates reachability for every branch
    selection of every ded, so its complement — the never-populatable
    relations — is exact for deadness purposes: no run, under any
    branch choice, puts a fact there.
    """
    populatable: Set[str] = set(base)
    live = [contradiction_reason(d.premise) is None for d in dependencies]
    changed = True
    while changed:
        changed = False
        for index, dependency in enumerate(dependencies):
            if not live[index]:
                continue
            if _positive_premise_relations(dependency) <= populatable:
                added = _conclusion_relations(dependency) - populatable
                if added:
                    populatable |= added
                    changed = True
    return frozenset(populatable)


def dead_dependency_indices(
    dependencies: Sequence[Dependency], base: Iterable[str]
) -> Tuple[int, ...]:
    """Indices whose premise can never match: it mentions a
    never-populatable relation, or its comparisons are contradictory.

    ``base`` is the set of relations that actually hold facts at the
    start of the run, so the engine recomputes this per run instance —
    a dependency dead for one source instance may be live for another.
    """
    populatable = populatable_relations(dependencies, base)
    return tuple(
        index
        for index, dependency in enumerate(dependencies)
        if not _positive_premise_relations(dependency) <= populatable
        or contradiction_reason(dependency.premise) is not None
    )


def fire_schedule(dependencies: Sequence[Dependency]) -> Tuple[Tuple[int, ...], ...]:
    """SCC condensation of the dependency firing graph, topologically.

    Dependency ``i`` feeds ``j`` when a conclusion relation of ``i``
    appears in the positive premise of ``j``.  Mutually recursive
    dependencies share a stratum; stratum order is the deterministic
    condensation order, so facts only ever flow forward.
    """
    produces = [_conclusion_relations(d) for d in dependencies]
    consumes = [_positive_premise_relations(d) for d in dependencies]
    nodes = list(range(len(dependencies)))
    edges = [
        (i, j)
        for i in nodes
        for j in nodes
        if produces[i] & consumes[j]
    ]
    return tuple(condensation_order(nodes, edges))


@dataclass(frozen=True)
class FiringReport:
    """Firing-graph artifacts for one dependency set and base."""

    relations: Tuple[str, ...]
    edges: Tuple[Tuple[str, str], ...]
    base_relations: Tuple[str, ...]
    populatable: FrozenSet[str]
    dead_dependencies: Tuple[int, ...]
    strata: Tuple[Tuple[int, ...], ...]

    @property
    def unpopulatable(self) -> Tuple[str, ...]:
        return tuple(
            relation
            for relation in self.relations
            if relation not in self.populatable
        )

    def to_payload(self) -> Dict[str, object]:
        return {
            "relations": list(self.relations),
            "edges": [list(edge) for edge in self.edges],
            "base_relations": list(self.base_relations),
            "populatable": sorted(self.populatable),
            "unpopulatable": list(self.unpopulatable),
            "dead_dependencies": list(self.dead_dependencies),
            "strata": [list(stratum) for stratum in self.strata],
        }


def analyze_firing(
    dependencies: Sequence[Dependency], base: Iterable[str]
) -> FiringReport:
    """Full firing analysis: graph, fixpoint, dead set, schedule."""
    base_sorted = tuple(sorted(set(base)))
    relations: Set[str] = set(base_sorted)
    for dependency in dependencies:
        relations |= dependency.relations()
    return FiringReport(
        relations=tuple(sorted(relations)),
        edges=tuple(firing_edges(dependencies)),
        base_relations=base_sorted,
        populatable=populatable_relations(dependencies, base_sorted),
        dead_dependencies=dead_dependency_indices(dependencies, base_sorted),
        strata=fire_schedule(dependencies),
    )
