"""Semi-naive bottom-up evaluation of view programs over instances.

``materialize(program, instance)`` computes the extent of every view:
``Υ(I)`` in the paper's notation.  The result is a *view instance* whose
relations are the view predicates (base relations can be carried over on
request, which the rewriter's verification path uses to build the
"semantic database" ``I ∪ Υ(I)``).

Evaluation is stratified, bottom-up and **semi-naive**, built on the
shared incremental engine (:mod:`repro.relational.delta`) the chase
also uses:

* views are grouped into strongly-connected components and processed in
  dependency order (:func:`repro.datalog.stratify.stratified_components`);
  negation therefore only ever consults fully-computed predicates —
  exactly the stratified semantics the paper assumes;
* each component is iterated to **fixpoint**: the first pass evaluates
  every rule fully, then each subsequent pass evaluates only the rules
  whose positive body atoms gained facts, joining their
  delta-anchored plans against the facts of the previous pass only
  (``Δ ⋈ I`` instead of ``I ⋈ I`` — the classical semi-naive
  optimization, O(|Δ|) per pass);
* mutually recursive components (transitive-closure-style views)
  converge because every pass either adds facts or ends the loop — the
  old evaluator ran each rule once per stratum and therefore
  under-computed recursive views.

:class:`SemanticDatabase` keeps a materialization *alive*: base facts
can be appended after construction and :meth:`SemanticDatabase.refresh`
re-establishes ``Υ(I)`` incrementally, so a verification sweep over k
candidate targets (or a growing scenario) shares one semantic database
instead of paying k cold materializations.  Additions are monotone for
positive rules; strata whose rules negate a predicate that gained facts
are soundly rebuilt from scratch (negation is not monotone under
insertion), as are all strata above them.

``materialize_naive`` retains the obviously-correct reference: evaluate
every rule of every component against the full instance, repeatedly,
until nothing changes.  The differential suite proves the semi-naive
engine equivalent to it across the scenario corpus.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.datalog.program import Rule, ViewProgram
from repro.datalog.stratify import stratified_components
from repro.errors import DatalogError
from repro.logic.atoms import Atom
from repro.logic.terms import Term, Variable
from repro.obs.recorder import NULL_RECORDER
from repro.relational.delta import (
    DeltaPlans,
    GenerationWindow,
    PlanCache,
    group_rows,
    mask_rows,
)
from repro.relational.instance import Instance
from repro.relational.kernel import ColumnarInstance
from repro.relational.query import (
    evaluate as evaluate_body,
    reference_mode_active,
)

__all__ = [
    "materialize",
    "materialize_naive",
    "SemanticDatabase",
    "evaluate_view",
    "view_extent",
]


def _head_fact(rule: Rule, binding: Dict[Variable, Term]) -> Atom:
    terms = []
    for term in rule.head.terms:
        if isinstance(term, Variable):
            value = binding.get(term)
            if value is None:
                raise DatalogError(
                    f"unbound head variable {term} in rule {rule}"
                )
            terms.append(value)
        else:
            terms.append(term)
    return Atom(rule.head.relation, tuple(terms))


class _EncodedHead:
    """A rule head lowered onto the columnar kernel.

    Per-term (kind, value) pairs: kind 0 reads a slot of the body's
    encoded result row, kind 1 is an interned constant code, kind 2 is
    an unbound head variable — which, like the decoded path, only
    raises when the rule actually fires.
    """

    __slots__ = ("rule", "relation", "template")

    def __init__(self, rule: Rule, varlist, pool) -> None:
        self.rule = rule
        self.relation = rule.head.relation
        slot_of = {variable: i for i, variable in enumerate(varlist)}
        template = []
        for term in rule.head.terms:
            if isinstance(term, Variable):
                slot = slot_of.get(term)
                template.append((0, slot) if slot is not None else (2, term))
            else:
                template.append((1, pool.encode(term)))
        self.template = tuple(template)

    def row(self, match) -> tuple:
        values = []
        for kind, value in self.template:
            if kind == 0:
                values.append(match[value])
            elif kind == 1:
                values.append(value)
            else:
                raise DatalogError(
                    f"unbound head variable {value} in rule {self.rule}"
                )
        return tuple(values)


class SemanticDatabase:
    """An incrementally-maintained semantic database ``I ∪ Υ(I)``.

    Holds one working :class:`Instance` containing the base facts plus
    every view extent, kept at fixpoint.  Feed base facts with
    :meth:`add_facts` and call :meth:`refresh`; only the consequences of
    the new facts are recomputed (semi-naive delta passes seeded with
    the insertions since the last refresh), except where negation makes
    insertion non-monotone — those strata, and everything above them,
    are rebuilt.

    The chase's verification paths hold one of these per scenario so
    checking k candidate rewritings materializes the source-side views
    once, not k times.
    """

    __slots__ = (
        "program",
        "_working",
        "_components",
        "_component_rules",
        "_plans",
        "_encoded_heads",
        "_cache",
        "_synced_generation",
        "_fresh",
        "_view_names",
        "_seeded",
        "_recorder",
    )

    def __init__(
        self,
        program: Optional[ViewProgram],
        base: Optional[Iterable[Atom]] = None,
        kernel: str = "columnar",
    ) -> None:
        """``program`` may be ``None`` for a view-less semantic schema —
        the database then degenerates to a plain fact store.

        ``kernel`` picks the working store: ``"columnar"`` (the
        default) runs the fixpoint over encoded rows; anything else —
        or an active reference-evaluator context — keeps the set-based
        :class:`Instance`.
        """
        self.program = program
        if kernel == "columnar" and not reference_mode_active():
            self._working = ColumnarInstance()
        else:
            self._working = Instance()
        self._cache = PlanCache()
        self._plans: Dict[int, DeltaPlans] = {}
        self._encoded_heads: Dict[int, _EncodedHead] = {}
        if program is not None:
            program.check_predicates()
            self._components = stratified_components(program)
            self._component_rules: List[List[Rule]] = [
                [rule for view in component for rule in program.rules_for(view)]
                for component in self._components
            ]
        else:
            self._components = []
            self._component_rules = []
        self._view_names = (
            frozenset(program.view_names()) if program is not None else frozenset()
        )
        # Caller-supplied facts living in view relations: they seed the
        # fixpoint like derived facts but survive negation rebuilds.
        self._seeded: Set[Atom] = set()
        # Facts at generations >= _synced_generation are not yet
        # reflected in the view extents.
        self._synced_generation = 0
        self._fresh = True
        self._recorder = NULL_RECORDER
        if base is not None:
            self.add_facts(base)
            self.refresh()

    # -- feeding -----------------------------------------------------------

    def add_fact(self, fact: Atom) -> bool:
        """Insert one base fact (views refresh lazily); True when new."""
        if fact.relation in self._view_names:
            self._seeded.add(fact)
        return self._working.add(fact)

    def add_facts(self, facts: Iterable[Atom]) -> int:
        """Insert many base facts; returns how many were new."""
        return sum(1 for fact in facts if self.add_fact(fact))

    # -- maintenance -------------------------------------------------------

    def _rule_plans(self, rule: Rule, key: int) -> DeltaPlans:
        plans = self._plans.get(key)
        if plans is None:
            plans = DeltaPlans(rule.body, cache=self._cache, key=key)
            self._plans[key] = plans
        return plans

    def set_recorder(self, recorder) -> None:
        """Attach a flight recorder for ``datalog.*`` metrics and
        refresh spans (``None`` detaches)."""
        self._recorder = recorder if recorder is not None else NULL_RECORDER

    def refresh(self) -> "SemanticDatabase":
        """Re-establish ``Υ(I)`` after insertions; no-op when synced."""
        working = self._working
        if isinstance(working, ColumnarInstance):
            # The refresh trigger only needs relations and a count —
            # stay on (relation, row id) pairs, no decode.
            pending = working.rows_since(self._synced_generation)
            pending_relations = {relation for relation, _ in pending}
        else:
            pending = working.facts_since(self._synced_generation)
            pending_relations = {fact.relation for fact in pending}
        if not pending and not self._fresh:
            return self
        rec = self._recorder
        with rec.span("datalog.refresh", pending=len(pending)):
            before = len(working)
            self._refresh_components(bool(self._fresh), pending_relations)
            if rec.enabled:
                rec.count("datalog.refreshes")
                rec.count("datalog.derived_facts", len(working) - before)
        self._synced_generation = working.bump_generation()
        return self

    def _refresh_components(self, initial: bool, pending_relations) -> None:
        working = self._working
        self._fresh = False
        changed: Set[str] = set(pending_relations)
        rebuilding = False
        for position, component in enumerate(self._components):
            rules = self._component_rules[position]
            referenced: Set[str] = set()
            negated: Set[str] = set()
            for rule in rules:
                referenced |= rule.body_predicates()
                negated |= rule.negated_body_predicates()
            if initial:
                # Cold materialization: one full pass per component (a
                # delta pass would skip rules with atom-free bodies).
                self._evaluate_component(position, full=True)
                changed.update(component)
            elif rebuilding or (negated & changed):
                # Insertion is not monotone through negation: facts this
                # stratum derived may have lost their justification.
                # Rebuild it — and, since a rebuilt extent can shrink,
                # every stratum above it — from scratch.
                rebuilding = True
                self._recorder.count("datalog.rebuilds")
                for view in component:
                    for fact in list(working.facts(view)):
                        if fact not in self._seeded:
                            working.remove(fact)
                self._evaluate_component(position, full=True)
                changed.update(component)
            elif referenced & changed:
                before = working.version
                self._evaluate_component(position, full=False)
                if working.version != before:
                    changed.update(component)
            # else: nothing this component reads changed — its extents
            # are already at fixpoint, skip it entirely.

    def _evaluate_component(self, position: int, full: bool) -> None:
        """Run one component to fixpoint, semi-naively.

        ``full`` seeds the loop with a complete pass over every rule
        (initial materialization and negation-forced rebuilds);
        otherwise the first delta window covers exactly the facts
        inserted since the last refresh, so the pass costs O(|Δ|).
        """
        working = self._working
        encoded = isinstance(working, ColumnarInstance)
        rules = self._component_rules[position]
        base_key = position << 20
        if full:
            working.bump_generation()
            window = GenerationWindow(working)
            for offset, rule in enumerate(rules):
                self._fire_rule(rule, base_key + offset, delta=None)
        else:
            window = GenerationWindow(working, since=self._synced_generation)
        rec = self._recorder
        while True:
            if encoded:
                rows = window.advance_rows()
                if not rows:
                    return
                # One mask per relation per pass, shared by every rule
                # this component fires against the window.
                delta = mask_rows(group_rows(rows))
                delta_relations = set(delta)
                delta_count = len(rows)
            else:
                delta = window.advance()
                if not delta:
                    return
                delta_relations = {fact.relation for fact in delta}
                delta_count = len(delta)
            if rec.enabled:
                rec.count("datalog.passes")
                rec.count("datalog.pass_facts", delta_count)
            for offset, rule in enumerate(rules):
                if rule.positive_body_predicates() & delta_relations:
                    self._fire_rule(rule, base_key + offset, delta=delta)
                elif rule.body_predicates() & delta_relations:
                    # The delta is only visible through nested negation
                    # (an even-depth — hence monotone and stratifiable —
                    # recursive edge, e.g. ``not (not V(x))``).  Delta
                    # anchoring joins positive atoms only and would miss
                    # it, so re-run the rule in full.
                    self._fire_rule(rule, base_key + offset, delta=None)

    def _fire_rule(self, rule: Rule, key: int, delta) -> None:
        """Evaluate one rule (full when ``delta`` is None, else
        delta-restricted) and insert its head facts, on whichever
        kernel the working store speaks.  The delta arrives in the
        kernel's own shape: a set of atoms, or a relation ->
        row-id-set dict whose rows never decode."""
        working = self._working
        plans = self._rule_plans(rule, key)
        if isinstance(working, ColumnarInstance):
            head = self._encoded_heads.get(key)
            if head is None:
                # The varlist (bound + fresh body variables in name
                # order) is data-independent, so the lowered head
                # survives plan recompiles.
                head = _EncodedHead(rule, plans.varlist(working), working.pool)
                self._encoded_heads[key] = head
            if delta is None:
                matches = plans.matches_encoded(working)
            else:
                matches = plans.delta_matches_encoded(working, delta)
            add, relation, build = working.add_encoded, head.relation, head.row
            for match in matches:
                add(relation, build(match))
        elif delta is None:
            for binding in plans.matches(working):
                working.add(_head_fact(rule, binding))
        else:
            for binding in plans.delta_matches(working, delta):
                working.add(_head_fact(rule, binding))

    # -- reading -----------------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The live working instance ``I ∪ Υ(I)``.

        Shared, not copied: treat it as read-only, or route further base
        insertions through :meth:`add_facts` + :meth:`refresh` so the
        view extents stay at fixpoint.
        """
        return self._working

    def extract(
        self,
        only: Optional[Iterable[str]] = None,
        include_base: Optional[Iterable[Atom]] = None,
    ) -> Instance:
        """Copy out view extents (optionally restricted to ``only``),
        plus the given base facts — the shape :func:`materialize`
        returns."""
        if self.program is not None:
            wanted = (
                set(only) if only is not None else set(self.program.view_names())
            )
        else:
            wanted = set()
        result = Instance()
        for view_name in wanted:
            for fact in self._working.facts(view_name):
                result.add(fact)
        if include_base is not None:
            for fact in include_base:
                result.add(fact)
        return result


def materialize(
    program: ViewProgram,
    instance: Instance,
    include_base: bool = False,
    only: Optional[Iterable[str]] = None,
) -> Instance:
    """Compute the extents of all views of ``program`` over ``instance``.

    ``only`` restricts the output to the named views (their dependencies
    are still evaluated, just not copied into the result).  With
    ``include_base`` the base facts are carried into the result, which
    yields the "semantic database" ``I ∪ Υ(I)``.

    Semi-naive and fixpoint-complete: stratified programs with positive
    recursion are supported (the old single-pass evaluator rejected or
    under-computed them); recursion through negation raises
    :class:`~repro.errors.RecursionError_`.
    """
    database = SemanticDatabase(program, base=instance)
    return database.extract(
        only=only, include_base=instance if include_base else None
    )


def materialize_naive(
    program: ViewProgram,
    instance: Instance,
    include_base: bool = False,
    only: Optional[Iterable[str]] = None,
) -> Instance:
    """Reference materializer: naive fixpoint, no delta restriction.

    Evaluates every rule of each stratum against the full working
    instance, over and over, until a whole pass adds nothing.  Obviously
    correct and obviously slow — retained exclusively so the
    differential suite can prove :func:`materialize` equivalent to it.
    """
    program.check_predicates()
    components = stratified_components(program)
    working = Instance()
    for fact in instance:
        working.add(fact)
    for component in components:
        rules = [rule for view in component for rule in program.rules_for(view)]
        while True:
            added = 0
            for rule in rules:
                for binding in evaluate_body(rule.body, working):
                    if working.add(_head_fact(rule, binding)):
                        added += 1
            if not added:
                break

    wanted = set(only) if only is not None else set(program.view_names())
    result = Instance()
    for view_name in wanted:
        for fact in working.facts(view_name):
            result.add(fact)
    if include_base:
        for fact in instance:
            result.add(fact)
    return result


def evaluate_view(
    program: ViewProgram, instance: Instance, view_name: str
) -> List[Atom]:
    """The extent of a single view (dependencies computed on the fly)."""
    extent = materialize(program, instance, only=[view_name])
    return sorted(extent.facts(view_name), key=str)


def view_extent(
    program: ViewProgram, instance: Instance
) -> Dict[str, List[Atom]]:
    """All view extents as a dict, convenient for assertions and reports."""
    materialized = materialize(program, instance)
    return {
        view_name: sorted(materialized.facts(view_name), key=str)
        for view_name in program.view_names()
    }
