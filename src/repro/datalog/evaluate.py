"""Bottom-up evaluation of view programs over instances.

``materialize(program, instance)`` computes the extent of every view:
``Υ(I)`` in the paper's notation.  The result is a *view instance* whose
relations are the view predicates (base relations can be carried over on
request, which the rewriter's verification path uses).

Evaluation is stratified and bottom-up: views are processed in
dependency order; each rule body is evaluated by the conjunctive-query
engine against the union of the base instance and the already-computed
view extents.  Negation therefore only ever consults fully-computed
predicates — exactly the stratified semantics the paper assumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.datalog.program import Rule, ViewProgram
from repro.datalog.stratify import evaluation_order
from repro.errors import DatalogError
from repro.logic.atoms import Atom
from repro.logic.terms import Term, Variable
from repro.relational.instance import Instance
from repro.relational.query import evaluate as evaluate_body

__all__ = ["materialize", "evaluate_view", "view_extent"]


def _head_fact(rule: Rule, binding: Dict[Variable, Term]) -> Atom:
    terms = []
    for term in rule.head.terms:
        if isinstance(term, Variable):
            value = binding.get(term)
            if value is None:
                raise DatalogError(
                    f"unbound head variable {term} in rule {rule}"
                )
            terms.append(value)
        else:
            terms.append(term)
    return Atom(rule.head.relation, tuple(terms))


def materialize(
    program: ViewProgram,
    instance: Instance,
    include_base: bool = False,
    only: Optional[Iterable[str]] = None,
) -> Instance:
    """Compute the extents of all views of ``program`` over ``instance``.

    ``only`` restricts the output to the named views (their dependencies
    are still evaluated, just not copied into the result).  With
    ``include_base`` the base facts are carried into the result, which
    yields the "semantic database" ``I ∪ Υ(I)``.
    """
    program.validate()
    order = evaluation_order(program)
    # Working store: base facts plus each view extent as it is computed.
    working = Instance()
    for fact in instance:
        working.add(fact)
    for view_name in order:
        for rule in program.rules_for(view_name):
            for binding in evaluate_body(rule.body, working):
                working.add(_head_fact(rule, binding))

    wanted = set(only) if only is not None else set(program.view_names())
    result = Instance()
    for view_name in wanted:
        for fact in working.facts(view_name):
            result.add(fact)
    if include_base:
        for fact in instance:
            result.add(fact)
    return result


def evaluate_view(
    program: ViewProgram, instance: Instance, view_name: str
) -> List[Atom]:
    """The extent of a single view (dependencies computed on the fly)."""
    extent = materialize(program, instance, only=[view_name])
    return sorted(extent.facts(view_name), key=str)


def view_extent(
    program: ViewProgram, instance: Instance
) -> Dict[str, List[Atom]]:
    """All view extents as a dict, convenient for assertions and reports."""
    materialized = materialize(program, instance)
    return {
        view_name: sorted(materialized.facts(view_name), key=str)
        for view_name in program.view_names()
    }
