"""Dependency analysis of view programs: recursion check, strata, order.

GROM's *rewriter* requires non-recursive Datalog with negation (view
unfolding would not terminate otherwise), and :func:`check_nonrecursive`
enforces exactly that.  The *evaluator* is more liberal: semi-naive
materialization handles any **stratified** program — recursion through
positive edges is evaluated to fixpoint, only recursion through
negation is rejected.  :func:`stratified_components` computes the
strongly-connected components of the view dependency graph in
evaluation order and raises when a cycle crosses a negative edge.

Non-recursive programs are trivially stratified; the machinery here
still computes proper strata and a topological evaluation order, plus
the predicate dependency graph with edge polarity — which the
rewriter's static analysis reuses to locate "problematic" negation
patterns.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.errors import RecursionError_
from repro.datalog.program import ViewProgram

__all__ = [
    "predicate_graph",
    "check_nonrecursive",
    "evaluation_order",
    "strata",
    "stratified_components",
    "depends_on",
]

Edge = Tuple[str, str, bool]
"""(from-view, to-predicate, is-negative) edge in the dependency graph."""


def predicate_graph(program: ViewProgram) -> List[Edge]:
    """All dependency edges ``head -> body predicate`` with polarity.

    A predicate referenced both positively and under negation contributes
    two edges.  Negation polarity is recorded for *any* nesting depth
    (odd depths count as negative; even depths re-become positive, e.g.
    the double negation in the running example's ``UnpopularProduct``).
    """
    edges: Set[Edge] = set()
    for rule in program:
        head = rule.head.relation

        def walk(conjunction, negative: bool) -> None:
            for atom in conjunction.atoms:
                edges.add((head, atom.relation, negative))
            for negation in conjunction.negations:
                walk(negation.inner, not negative)

        walk(rule.body, False)
    return sorted(edges)


def _adjacency(program: ViewProgram) -> Dict[str, Set[str]]:
    adjacency: Dict[str, Set[str]] = defaultdict(set)
    for head, predicate, _negative in predicate_graph(program):
        if program.is_view(predicate):
            adjacency[head].add(predicate)
    return adjacency


def check_nonrecursive(program: ViewProgram) -> None:
    """Raise :class:`RecursionError_` when a view depends on itself."""
    adjacency = _adjacency(program)
    # Iterative DFS with colouring to find a cycle among view predicates.
    WHITE, GRAY, BLACK = 0, 1, 2
    colour: Dict[str, int] = defaultdict(int)
    for start in program.view_names():
        if colour[start] != WHITE:
            continue
        stack: List[Tuple[str, List[str]]] = [(start, sorted(adjacency.get(start, ())))]
        colour[start] = GRAY
        while stack:
            node, pending = stack[-1]
            if pending:
                nxt = pending.pop()
                if colour[nxt] == GRAY:
                    raise RecursionError_(
                        f"view program is recursive: cycle through {nxt!r}"
                    )
                if colour[nxt] == WHITE:
                    colour[nxt] = GRAY
                    stack.append((nxt, sorted(adjacency.get(nxt, ()))))
            else:
                colour[node] = BLACK
                stack.pop()


def evaluation_order(program: ViewProgram) -> List[str]:
    """View names in bottom-up (dependencies-first) topological order."""
    check_nonrecursive(program)
    adjacency = _adjacency(program)
    order: List[str] = []
    visited: Set[str] = set()

    def visit(node: str) -> None:
        if node in visited:
            return
        visited.add(node)
        for dependency in sorted(adjacency.get(node, ())):
            visit(dependency)
        order.append(node)

    for name in sorted(program.view_names()):
        visit(name)
    return order


def strata(program: ViewProgram) -> Dict[str, int]:
    """Assign each view a stratum number.

    Base predicates live at stratum 0.  A view's stratum is at least the
    stratum of every positively-referenced view, and strictly greater
    than the stratum of every negatively-referenced predicate that is a
    view.  For non-recursive programs a single bottom-up pass suffices.
    """
    order = evaluation_order(program)
    levels: Dict[str, int] = {}
    edges = predicate_graph(program)
    by_head: Dict[str, List[Tuple[str, bool]]] = defaultdict(list)
    for head, predicate, negative in edges:
        by_head[head].append((predicate, negative))
    for view in order:
        level = 1
        for predicate, negative in by_head.get(view, ()):
            if program.is_view(predicate):
                required = levels[predicate] + (1 if negative else 0)
                level = max(level, required)
        levels[view] = level
    return levels


def stratified_components(program: ViewProgram) -> List[List[str]]:
    """Mutually-recursive view groups in bottom-up evaluation order.

    The strongly-connected components of the view-to-view dependency
    graph, topologically sorted so every component's dependencies come
    first.  A singleton component is an ordinary non-recursive view; a
    larger component (or a self-loop) is a set of mutually recursive
    views the semi-naive evaluator iterates to fixpoint *together*.

    Raises :class:`RecursionError_` when a cycle crosses a negative edge
    — recursion through negation has no stratified semantics (the
    classical ``p ⇐ ¬p`` has no stable model the evaluator could
    compute), so such programs are rejected outright.
    """
    adjacency = _adjacency(program)
    names = program.view_names()

    # Tarjan's SCC algorithm, iterative (view programs can be deep).
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work: List[Tuple[str, List[str]]] = [
            (root, sorted(adjacency.get(root, ())))
        ]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, pending = work[-1]
            if pending:
                nxt = pending.pop()
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(adjacency.get(nxt, ()))))
                elif nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))

    for name in sorted(names):
        if name not in index_of:
            strongconnect(name)

    # Tarjan emits components in reverse topological order of the
    # condensation when edges point at dependencies — i.e. dependencies
    # first, which is exactly the bottom-up evaluation order we want.
    membership = {
        view: position
        for position, component in enumerate(components)
        for view in component
    }
    negative_edges = {
        (head, predicate)
        for head, predicate, negative in predicate_graph(program)
        if negative and program.is_view(predicate)
    }
    for head, predicate in negative_edges:
        if membership[head] == membership[predicate]:
            raise RecursionError_(
                f"view program is not stratified: {head!r} depends "
                f"negatively on {predicate!r} within a recursive cycle"
            )
    return components


def depends_on(program: ViewProgram, view: str) -> FrozenSet[str]:
    """All views (transitively) referenced by ``view``."""
    adjacency = _adjacency(program)
    seen: Set[str] = set()
    frontier = [view]
    while frontier:
        current = frontier.pop()
        for nxt in adjacency.get(current, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)
