"""Non-recursive Datalog with negation: the view-definition language.

The paper adopts this language for semantic-schema definitions because
conjunctive views cannot express disjointness constraints and
classification rules.  This package defines programs (:class:`Rule`,
:class:`ViewProgram`), their dependency analysis (stratification,
recursion check) and bottom-up materialization ``Υ(I)``.
"""

from repro.datalog.evaluate import evaluate_view, materialize, view_extent
from repro.datalog.program import Rule, ViewProgram
from repro.datalog.stratify import (
    check_nonrecursive,
    depends_on,
    evaluation_order,
    predicate_graph,
    strata,
)

__all__ = [
    "Rule",
    "ViewProgram",
    "check_nonrecursive",
    "depends_on",
    "evaluation_order",
    "predicate_graph",
    "strata",
    "materialize",
    "evaluate_view",
    "view_extent",
]
