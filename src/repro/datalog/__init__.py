"""Stratified Datalog with negation: the view-definition language.

The paper adopts this language for semantic-schema definitions because
conjunctive views cannot express disjointness constraints and
classification rules.  This package defines programs (:class:`Rule`,
:class:`ViewProgram`), their dependency analysis (stratification,
recursion check) and semi-naive bottom-up materialization ``Υ(I)``.
The rewriter's unfolding contract stays non-recursive; the evaluator
additionally handles positive recursion (any stratified program) via
per-component fixpoints on the shared delta engine.
"""

from repro.datalog.evaluate import (
    SemanticDatabase,
    evaluate_view,
    materialize,
    materialize_naive,
    view_extent,
)
from repro.datalog.program import Rule, ViewProgram
from repro.datalog.stratify import (
    check_nonrecursive,
    depends_on,
    evaluation_order,
    predicate_graph,
    strata,
    stratified_components,
)

__all__ = [
    "Rule",
    "SemanticDatabase",
    "ViewProgram",
    "check_nonrecursive",
    "depends_on",
    "evaluation_order",
    "predicate_graph",
    "strata",
    "stratified_components",
    "materialize",
    "materialize_naive",
    "evaluate_view",
    "view_extent",
]
