"""Non-recursive Datalog with negation: rules, views and programs.

View definitions in GROM are written in non-recursive Datalog with
negation — the language the paper adopts because conjunctive views are
"unable to capture many semantic relationships between the data".  A
:class:`ViewProgram` holds the view definitions of one semantic schema
(``Υ_S`` or ``Υ_T``): several rules per head predicate are allowed and
mean union; bodies may negate base *and* derived predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import DatalogError, UnknownPredicateError, UnsafeDependencyError
from repro.logic.atoms import Atom, Conjunction
from repro.logic.terms import Variable
from repro.relational.schema import Schema

__all__ = ["Rule", "ViewProgram"]


@dataclass(frozen=True)
class Rule:
    """A Datalog rule ``head ⇐ body``.

    The head must be an atom whose terms are all distinct variables or
    constants; body variables not in the head are existential.
    """

    head: Atom
    body: Conjunction
    name: str = ""

    def head_variables(self) -> FrozenSet[Variable]:
        return frozenset(self.head.variables())

    def existential_variables(self) -> FrozenSet[Variable]:
        """Body variables that do not occur in the head."""
        return self.body.variables() - self.head_variables()

    def check_safety(self) -> None:
        """Head and comparison variables must be positively bound.

        Negation variables may be local to their negation (existential)
        — that is the standard safety condition for stratified Datalog.
        """
        positive = self.body.positive_variables()
        for variable in self.head.variables():
            if variable not in positive:
                raise UnsafeDependencyError(
                    f"rule for {self.head.relation}: head variable {variable} "
                    f"is not bound by a positive body atom"
                )
        for comparison in self.body.comparisons:
            for variable in comparison.variables():
                if variable not in positive:
                    raise UnsafeDependencyError(
                        f"rule for {self.head.relation}: comparison variable "
                        f"{variable} is not bound by a positive body atom"
                    )

    def body_predicates(self) -> FrozenSet[str]:
        """All predicates referenced in the body, at any depth."""
        return self.body.relations()

    def positive_body_predicates(self) -> FrozenSet[str]:
        return frozenset(a.relation for a in self.body.atoms)

    def negated_body_predicates(self) -> FrozenSet[str]:
        """Predicates occurring under a negation at any depth."""
        out: Set[str] = set()

        def collect(conjunction: Conjunction, under_negation: bool) -> None:
            if under_negation:
                out.update(a.relation for a in conjunction.atoms)
            for negation in conjunction.negations:
                collect(negation.inner, True)

        collect(self.body, False)
        return frozenset(out)

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.head} <= {self.body}"


class ViewProgram:
    """The view definitions of one semantic schema.

    The program maps each *derived* predicate (view name) to its rules.
    Base predicates are the relations of the underlying physical schema.
    Construction enforces: no view may shadow a base relation, all rules
    for a view must agree on arity, every body predicate must be either
    base or derived, and the program must be non-recursive (checked via
    :mod:`repro.datalog.stratify` at validation time).
    """

    def __init__(self, base_schema: Schema, rules: Iterable[Rule] = ()) -> None:
        self.base_schema = base_schema
        self._rules: List[Rule] = []
        self._by_head: Dict[str, List[Rule]] = {}
        for rule in rules:
            self.add(rule)

    # -- construction ------------------------------------------------------

    def add(self, rule: Rule) -> "ViewProgram":
        head_name = rule.head.relation
        if head_name in self.base_schema:
            raise DatalogError(
                f"view {head_name!r} shadows a base relation of schema "
                f"{self.base_schema.name!r}"
            )
        existing = self._by_head.get(head_name)
        if existing and existing[0].head.arity != rule.head.arity:
            raise DatalogError(
                f"view {head_name!r} defined with inconsistent arities "
                f"({existing[0].head.arity} vs {rule.head.arity})"
            )
        rule.check_safety()
        self._rules.append(rule)
        self._by_head.setdefault(head_name, []).append(rule)
        return self

    def define(self, head: Atom, body: Conjunction, name: str = "") -> Rule:
        """Convenience: build, validate and register a rule."""
        rule = Rule(head, body, name)
        self.add(rule)
        return rule

    # -- lookup ---------------------------------------------------------------

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return tuple(self._rules)

    def view_names(self) -> List[str]:
        return list(self._by_head)

    def is_view(self, name: str) -> bool:
        return name in self._by_head

    def is_base(self, name: str) -> bool:
        return name in self.base_schema

    def rules_for(self, name: str) -> Tuple[Rule, ...]:
        if name not in self._by_head:
            raise UnknownPredicateError(name)
        return tuple(self._by_head[name])

    def arity_of(self, name: str) -> int:
        if self.is_view(name):
            return self._by_head[name][0].head.arity
        return self.base_schema.arity(name)

    def is_union_view(self, name: str) -> bool:
        """True when the view is defined by more than one rule."""
        return len(self._by_head.get(name, ())) > 1

    def has_negation(self, name: str) -> bool:
        """True when some rule of this view negates anything directly."""
        return any(rule.body.negations for rule in self.rules_for(name))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    # -- validation ---------------------------------------------------------------

    def check_predicates(self) -> None:
        """Every body predicate must be a base relation or a defined view.

        Raises :class:`UnknownPredicateError` otherwise.  This is the
        reference check shared by :meth:`validate` (the rewriter's
        strict, non-recursive contract) and the semi-naive evaluator
        (which additionally accepts positive recursion).
        """
        for rule in self._rules:
            for predicate in rule.body_predicates():
                if not (self.is_base(predicate) or self.is_view(predicate)):
                    raise UnknownPredicateError(predicate)

    def validate(self) -> None:
        """Check predicate references and non-recursiveness.

        Raises :class:`UnknownPredicateError` for undefined predicates and
        :class:`RecursionError_` (via stratify) for recursive programs.
        This is the contract the *rewriter* needs (view unfolding must
        terminate); evaluation alone only requires stratification, which
        :func:`repro.datalog.stratify.stratified_components` checks.
        """
        from repro.datalog.stratify import check_nonrecursive

        self.check_predicates()
        check_nonrecursive(self)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self._rules)

    def __repr__(self) -> str:
        return (
            f"ViewProgram({len(self._by_head)} views, {len(self._rules)} rules "
            f"over {self.base_schema.name!r})"
        )
