"""Figure-1-style partition hierarchies ({disjoint, complete} classes).

The running example's semantic schema partitions ``Product`` into
popular / average / unpopular.  This module generalizes that pattern to
``width`` explicit subclasses plus a *default* subclass defined by
negation (everything not in an explicit class — the ``{complete}``
annotation), which is how UML-ish {disjoint, complete} generalizations
compile to Datalog with negation.

The generator is the scaling knob for the analysis benchmarks: the
default class's view has ``width`` negations, so a key constraint on it
rewrites into a ded with ``width + 1`` disjuncts.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import Dependency, egd, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema

__all__ = ["partition_scenario", "partition_instance"]


def partition_scenario(
    width: int = 3,
    default_key: bool = False,
    class_keys: bool = False,
) -> MappingScenario:
    """A {disjoint, complete} partition with ``width`` explicit classes.

    * Source: ``S_Item(id, name, cls)`` where ``cls ∈ 0..width`` (0 is
      the default class).
    * Target: ``T_Item(id, name)`` and a tag table ``T_Tag(item, cls)``.
    * Views: ``Class_i(id, name) ⇐ T_Item, T_Tag(id, i)`` for each
      explicit class, and ``DefaultClass(id, name) ⇐ T_Item,
      ¬Class_1(id, name), ..., ¬Class_width(id, name)``.
    * Mappings: one per class on the source ``cls`` code.
    * ``class_keys`` adds a name-key egd per explicit class (conjunctive
      — rewrites to plain egds); ``default_key`` adds a name key on the
      default class (negation — rewrites to a ``width + 1``-disjunct
      ded).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    source_schema = Schema(f"part_src_{width}")
    source_schema.add_relation(
        "S_Item", [("id", "int"), ("name", "string"), ("cls", "int")]
    )
    target_schema = Schema(f"part_tgt_{width}")
    target_schema.add_relation("T_Item", [("id", "int"), ("name", "string")])
    target_schema.add_relation("T_Tag", [("item", "int"), ("cls", "int")])

    views = ViewProgram(target_schema)
    item_id, name = Variable("id"), Variable("name")
    for i in range(1, width + 1):
        views.define(
            Atom(f"Class_{i}", (item_id, name)),
            Conjunction(
                atoms=(
                    Atom("T_Item", (item_id, name)),
                    Atom("T_Tag", (item_id, Constant(i))),
                )
            ),
            name=f"vc{i}",
        )
    views.define(
        Atom("DefaultClass", (item_id, name)),
        Conjunction(
            atoms=(Atom("T_Item", (item_id, name)),),
            negations=tuple(
                NegatedConjunction(
                    Conjunction(atoms=(Atom(f"Class_{i}", (item_id, name)),))
                )
                for i in range(1, width + 1)
            ),
        ),
        name="vd",
    )

    cls = Variable("cls")
    item = Atom("S_Item", (item_id, name, cls))
    mappings: List[Dependency] = []
    for i in range(1, width + 1):
        mappings.append(
            tgd(
                Conjunction(
                    atoms=(item,),
                    comparisons=(Comparison("=", cls, Constant(i)),),
                ),
                (Atom(f"Class_{i}", (item_id, name)),),
                name=f"mp{i}",
            )
        )
    mappings.append(
        tgd(
            Conjunction(
                atoms=(item,),
                comparisons=(Comparison("=", cls, Constant(0)),),
            ),
            (Atom("DefaultClass", (item_id, name)),),
            name="mp0",
        )
    )

    constraints: List[Dependency] = []
    id1, id2, n = Variable("id1"), Variable("id2"), Variable("n")
    if class_keys:
        for i in range(1, width + 1):
            constraints.append(
                egd(
                    Conjunction(
                        atoms=(
                            Atom(f"Class_{i}", (id1, n)),
                            Atom(f"Class_{i}", (id2, n)),
                        )
                    ),
                    (Equality(id1, id2),),
                    name=f"kc{i}",
                )
            )
    if default_key:
        constraints.append(
            egd(
                Conjunction(
                    atoms=(
                        Atom("DefaultClass", (id1, n)),
                        Atom("DefaultClass", (id2, n)),
                    )
                ),
                (Equality(id1, id2),),
                name="kd",
            )
        )

    return MappingScenario(
        source_schema=source_schema,
        target_schema=target_schema,
        mappings=mappings,
        target_views=views,
        target_constraints=constraints,
        name=f"partition-{width}",
    )


def partition_instance(
    width: int = 3,
    items: int = 30,
    seed: int = 0,
    default_share: float = 0.25,
    duplicate_names: int = 0,
) -> Instance:
    """Source data for :func:`partition_scenario`.

    ``duplicate_names`` injects same-name pairs *within the default
    class* — the pattern that fires the default key's ded.
    """
    rng = random.Random(seed)
    schema = Schema(f"part_src_{width}")
    schema.add_relation(
        "S_Item", [("id", "int"), ("name", "string"), ("cls", "int")]
    )
    instance = Instance(schema)
    next_id = 0
    for i in range(items):
        if rng.random() < default_share:
            cls = 0
        else:
            cls = rng.randint(1, width)
        instance.add_row("S_Item", next_id, f"item_{i}", cls)
        next_id += 1
    for i in range(duplicate_names):
        for __ in range(2):
            instance.add_row("S_Item", next_id, f"dup_{i}", 0)
            next_id += 1
    return instance
