"""Schema-evolution scenarios (the paper's motivation (iii)).

*"Many of the base transactional repositories [...] undergo
modifications during the years [...] It is important to be able to run
the existing mappings against a view over the new schema that does not
change, thus keeping these modifications of the sources transparent to
the users."*

This family models exactly that: a legacy mapping written against a
flat employee schema keeps working after the target database is
re-normalized, because the *semantic schema* (views over the new
physical tables) still exposes the old shape.  A variant adds a
soft-delete table and an ``ActiveEmployee`` view with negation,
illustrating how the clean-up pattern composes with evolution.
"""

from __future__ import annotations

import random
from typing import List

from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.logic.atoms import (
    Atom,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import Dependency, egd, tgd
from repro.logic.terms import Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema

__all__ = ["evolution_scenario", "evolution_instance"]


def evolution_scenario(with_soft_delete: bool = False) -> MappingScenario:
    """Legacy flat-schema mappings over a re-normalized target.

    * Source (legacy HR dump): ``Emp(id, name, dept, salary)``.
    * New target (v2, normalized): ``Person(id, name)``,
      ``Job(person, dept, salary)`` — and, with ``with_soft_delete``,
      a tombstone table ``Departed(person)``.
    * Semantic schema: ``Employee(id, name, dept, salary)`` recreates
      the legacy shape (``⇐ Person ⋈ Job``); the soft-delete variant
      maps into ``ActiveEmployee`` (``... , ¬Departed(id)``) instead.
    * The legacy mapping targets the view, never the new tables, so the
      physical redesign stays transparent.
    """
    source_schema = Schema("hr_legacy")
    source_schema.add_relation(
        "Emp",
        [("id", "int"), ("name", "string"), ("dept", "string"), ("salary", "int")],
    )
    target_schema = Schema("hr_v2")
    target_schema.add_relation("Person", [("id", "int"), ("name", "string")])
    target_schema.add_relation(
        "Job", [("person", "int"), ("dept", "string"), ("salary", "int")]
    )
    if with_soft_delete:
        target_schema.add_relation("Departed", [("person", "int")])

    views = ViewProgram(target_schema)
    emp_id, name, dept, salary = (
        Variable("id"),
        Variable("name"),
        Variable("dept"),
        Variable("salary"),
    )
    employee_body = Conjunction(
        atoms=(
            Atom("Person", (emp_id, name)),
            Atom("Job", (emp_id, dept, salary)),
        )
    )
    views.define(
        Atom("Employee", (emp_id, name, dept, salary)), employee_body, name="v_emp"
    )
    if with_soft_delete:
        views.define(
            Atom("ActiveEmployee", (emp_id, name, dept, salary)),
            Conjunction(
                atoms=employee_body.atoms,
                negations=(
                    NegatedConjunction(
                        Conjunction(atoms=(Atom("Departed", (emp_id,)),))
                    ),
                ),
            ),
            name="v_active",
        )

    view_target = "ActiveEmployee" if with_soft_delete else "Employee"
    mappings: List[Dependency] = [
        tgd(
            Conjunction(atoms=(Atom("Emp", (emp_id, name, dept, salary)),)),
            (Atom(view_target, (emp_id, name, dept, salary)),),
            name="legacy_m0",
        )
    ]

    n2, d2, s2 = Variable("name2"), Variable("dept2"), Variable("salary2")
    constraints = [
        egd(
            Conjunction(
                atoms=(
                    Atom("Employee", (emp_id, name, dept, salary)),
                    Atom("Employee", (emp_id, n2, d2, s2)),
                )
            ),
            (Equality(name, n2),),
            name="k_emp_name",
        )
    ]
    return MappingScenario(
        source_schema=source_schema,
        target_schema=target_schema,
        mappings=mappings,
        target_views=views,
        target_constraints=constraints,
        name="evolution" + ("-softdelete" if with_soft_delete else ""),
    )


def evolution_instance(employees: int = 40, seed: int = 0) -> Instance:
    """A legacy HR dump for :func:`evolution_scenario`."""
    rng = random.Random(seed)
    schema = Schema("hr_legacy")
    schema.add_relation(
        "Emp",
        [("id", "int"), ("name", "string"), ("dept", "string"), ("salary", "int")],
    )
    instance = Instance(schema)
    departments = ["eng", "sales", "hr", "ops"]
    for i in range(employees):
        instance.add_row(
            "Emp",
            i,
            f"emp_{i}",
            rng.choice(departments),
            rng.randrange(40_000, 120_000, 1_000),
        )
    return instance
