"""Scenario library: the paper's running example plus parametric families.

Reconstructs the workloads GROM was demonstrated on: the Section 2
product/store/rating example (with its d0-producing key constraint),
flag-view families for the ded-complexity experiments, {disjoint,
complete} partition hierarchies in the style of Figure 1, clean-up
scenarios over poorly-designed sources, schema-evolution scenarios, and
a randomized generator for property-based testing.
"""

from repro.scenarios.evolution import evolution_instance, evolution_scenario
from repro.scenarios.generators import (
    GeneratedScenario,
    cleanup_instance,
    cleanup_scenario,
    flagged_instance,
    flagged_scenario,
    random_scenario,
)
from repro.scenarios.ontology import partition_instance, partition_scenario
from repro.scenarios.running_example import (
    build_key_constraint,
    build_mappings,
    build_scenario,
    build_source_schema,
    build_target_schema,
    build_target_views,
    generate_source_instance,
)

__all__ = [
    "build_scenario",
    "build_source_schema",
    "build_target_schema",
    "build_target_views",
    "build_mappings",
    "build_key_constraint",
    "generate_source_instance",
    "flagged_scenario",
    "flagged_instance",
    "cleanup_scenario",
    "cleanup_instance",
    "random_scenario",
    "GeneratedScenario",
    "partition_scenario",
    "partition_instance",
    "evolution_scenario",
    "evolution_instance",
]
