"""The paper's running example (Section 2), faithful to the text.

Source schema::

    S-Product(id, name, store, rating)
    S-Store(name, location)

Target schema::

    T-Product(id, name, store)
    T-Store(id, name, address, phone)
    T-Rating(id, product, thumbsUp)

Target semantic schema (Figure 1) defined by views v1–v6 in
non-recursive Datalog with negation, mappings m0–m3 (tgds with
comparison atoms classifying products by source rating: < 2 unpopular,
[2, 4) average, >= 4 popular), and the key egd e0 on ``PopularProduct``
whose rewriting is the paper's ded ``d0``.

Relation names use ``_`` instead of ``-`` (``S_Product`` for
``S-Product``) since ``-`` is not an identifier character in the DSL.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.logic.atoms import Atom, Comparison, Conjunction, Equality, NegatedConjunction
from repro.logic.dependencies import Dependency, egd, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema

__all__ = [
    "build_source_schema",
    "build_target_schema",
    "build_target_views",
    "build_mappings",
    "build_key_constraint",
    "build_scenario",
    "generate_source_instance",
]

THUMBS_DOWN = 0
THUMBS_UP = 1


def build_source_schema() -> Schema:
    """``S-Product`` and ``S-Store`` exactly as in the paper."""
    schema = Schema("source")
    schema.add_relation(
        "S_Product",
        [("id", "int"), ("name", "string"), ("store", "string"), ("rating", "int")],
    )
    schema.add_relation("S_Store", [("name", "string"), ("location", "string")])
    return schema


def build_target_schema() -> Schema:
    """``T-Product``, ``T-Store`` and ``T-Rating``."""
    schema = Schema("target")
    schema.add_relation(
        "T_Product", [("id", "int"), ("name", "string"), ("store", "any")]
    )
    schema.add_relation(
        "T_Store",
        [("id", "any"), ("name", "string"), ("address", "string"), ("phone", "string")],
    )
    schema.add_relation(
        "T_Rating", [("id", "any"), ("product", "int"), ("thumbsUp", "int")]
    )
    return schema


def build_target_views(target_schema: Optional[Schema] = None) -> ViewProgram:
    """Views v1–v6 of Section 2 (Figure 1's semantic schema)."""
    schema = target_schema or build_target_schema()
    program = ViewProgram(schema)
    pid, name, store = Variable("pid"), Variable("name"), Variable("store")
    rid = Variable("rid")
    vid, addr, phone = Variable("id"), Variable("addr"), Variable("phone")
    pname, stid = Variable("pname"), Variable("stid")

    # v1: Product(id, name) <= T-Product(id, name, store)
    program.define(
        Atom("Product", (vid, name)),
        Conjunction(atoms=(Atom("T_Product", (vid, name, store)),)),
        name="v1",
    )
    # v2: PopularProduct(pid, name) <=
    #       T-Product(pid, name, store), not T-Rating(rid, pid, 0)
    program.define(
        Atom("PopularProduct", (pid, name)),
        Conjunction(
            atoms=(Atom("T_Product", (pid, name, store)),),
            negations=(
                NegatedConjunction(
                    Conjunction(
                        atoms=(Atom("T_Rating", (rid, pid, Constant(THUMBS_DOWN))),)
                    )
                ),
            ),
        ),
        name="v2",
    )
    # v3: AvgProduct(pid, name) <=
    #       T-Product(pid, name, store), T-Rating(rid, pid, 1),
    #       not PopularProduct(pid, name)
    program.define(
        Atom("AvgProduct", (pid, name)),
        Conjunction(
            atoms=(
                Atom("T_Product", (pid, name, store)),
                Atom("T_Rating", (rid, pid, Constant(THUMBS_UP))),
            ),
            negations=(
                NegatedConjunction(
                    Conjunction(atoms=(Atom("PopularProduct", (pid, name)),))
                ),
            ),
        ),
        name="v3",
    )
    # v4: UnpopularProduct(pid, name) <=
    #       T-Product(pid, name, store),
    #       not AvgProduct(pid, name), not PopularProduct(pid, name)
    program.define(
        Atom("UnpopularProduct", (pid, name)),
        Conjunction(
            atoms=(Atom("T_Product", (pid, name, store)),),
            negations=(
                NegatedConjunction(
                    Conjunction(atoms=(Atom("AvgProduct", (pid, name)),))
                ),
                NegatedConjunction(
                    Conjunction(atoms=(Atom("PopularProduct", (pid, name)),))
                ),
            ),
        ),
        name="v4",
    )
    # v5: SoldAt(pid, stid) <= T-Product(pid, pname, stid)
    program.define(
        Atom("SoldAt", (pid, stid)),
        Conjunction(atoms=(Atom("T_Product", (pid, pname, stid)),)),
        name="v5",
    )
    # v6: Store(id, name, addr) <= T-Store(id, name, addr, phone)
    program.define(
        Atom("Store", (vid, name, addr)),
        Conjunction(atoms=(Atom("T_Store", (vid, name, addr, phone)),)),
        name="v6",
    )
    return program


def build_mappings() -> List[Dependency]:
    """Tgds m0–m3 of Section 2."""
    pid, name, store = Variable("pid"), Variable("name"), Variable("store")
    rating, location, sid = Variable("rating"), Variable("location"), Variable("sid")
    product = Atom("S_Product", (pid, name, store, rating))

    m0 = tgd(
        Conjunction(
            atoms=(product,),
            comparisons=(Comparison("<", rating, Constant(2)),),
        ),
        (Atom("UnpopularProduct", (pid, name)),),
        name="m0",
    )
    m1 = tgd(
        Conjunction(
            atoms=(product,),
            comparisons=(
                Comparison(">=", rating, Constant(2)),
                Comparison("<", rating, Constant(4)),
            ),
        ),
        (Atom("AvgProduct", (pid, name)),),
        name="m1",
    )
    m2 = tgd(
        Conjunction(
            atoms=(product,),
            comparisons=(Comparison(">=", rating, Constant(4)),),
        ),
        (Atom("PopularProduct", (pid, name)),),
        name="m2",
    )
    m3 = tgd(
        Conjunction(
            atoms=(product, Atom("S_Store", (store, location))),
        ),
        (
            Atom("SoldAt", (pid, sid)),
            Atom("Store", (sid, store, location)),
        ),
        name="m3",
    )
    return [m0, m1, m2, m3]


def build_key_constraint() -> Dependency:
    """The egd e0: a key on ``PopularProduct`` names."""
    id1, id2, n = Variable("id1"), Variable("id2"), Variable("n")
    return egd(
        Conjunction(
            atoms=(
                Atom("PopularProduct", (id1, n)),
                Atom("PopularProduct", (id2, n)),
            )
        ),
        (Equality(id1, id2),),
        name="e0",
    )


def build_fk_constraint() -> Dependency:
    """A foreign key over the semantic schema (the paper's footnote 1).

    Every ``SoldAt`` association must point at an existing ``Store``:
    ``SoldAt(pid, stid) → ∃n, a: Store(stid, n, a)`` — an inclusion
    dependency between views, which the rewriter compiles into a target
    tgd over the physical tables.
    """
    pid, stid, n, a = (
        Variable("pid"),
        Variable("stid"),
        Variable("sn"),
        Variable("sa"),
    )
    return tgd(
        Conjunction(atoms=(Atom("SoldAt", (pid, stid)),)),
        (Atom("Store", (stid, n, a)),),
        name="fk0",
    )


def build_scenario(include_key: bool = True, include_fk: bool = False) -> MappingScenario:
    """The complete running example as a :class:`MappingScenario`.

    ``include_key=False`` drops e0, which makes the rewriting ded-free —
    handy for isolating the tgd pipeline.  ``include_fk=True`` adds the
    footnote-1 foreign key ``SoldAt → Store`` over the semantic schema.
    """
    source_schema = build_source_schema()
    target_schema = build_target_schema()
    views = build_target_views(target_schema)
    constraints = [build_key_constraint()] if include_key else []
    if include_fk:
        constraints.append(build_fk_constraint())
    return MappingScenario(
        source_schema=source_schema,
        target_schema=target_schema,
        mappings=build_mappings(),
        target_views=views,
        target_constraints=constraints,
        name="running-example",
    )


def generate_source_instance(
    products: int = 20,
    stores: int = 5,
    seed: int = 0,
    popular_name_conflicts: int = 0,
    benign_name_pairs: int = 0,
    rating_weights: Tuple[float, float, float] = (0.3, 0.4, 0.3),
) -> Instance:
    """A synthetic source instance for the running example.

    ``popular_name_conflicts`` injects pairs of *popular* products that
    share a name but not an id — each pair violates e0 and makes the
    scenario unsatisfiable (the branches of the rewritten ded ``d0`` all
    fail), which is how the failure-heavy experiments are driven.
    ``benign_name_pairs`` injects popular/unpopular pairs sharing a name
    — these satisfy ``d0`` through its rating disjuncts without firing.
    ``rating_weights`` sets the unpopular/average/popular proportions.
    """
    rng = random.Random(seed)
    schema = build_source_schema()
    instance = Instance(schema)
    store_names = [f"store_{i}" for i in range(max(1, stores))]
    for i, store_name in enumerate(store_names):
        instance.add_row("S_Store", store_name, f"city_{i % 7}")

    next_id = 0

    def add_product(name: str, rating: int) -> None:
        nonlocal next_id
        instance.add_row(
            "S_Product", next_id, name, rng.choice(store_names), rating
        )
        next_id += 1

    bands = [(0, 1), (2, 3), (4, 5)]
    for i in range(products):
        roll = rng.random()
        if roll < rating_weights[0]:
            band = bands[0]
        elif roll < rating_weights[0] + rating_weights[1]:
            band = bands[1]
        else:
            band = bands[2]
        add_product(f"product_{i}", rng.randint(*band))

    for i in range(popular_name_conflicts):
        conflict_name = f"conflict_{i}"
        add_product(conflict_name, 5)
        add_product(conflict_name, 4)

    for i in range(benign_name_pairs):
        pair_name = f"benign_{i}"
        add_product(pair_name, 5)
        add_product(pair_name, 0)

    return instance
