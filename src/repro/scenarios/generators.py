"""Parametric scenario generators for benchmarks and property tests.

The demo paper describes its evaluation qualitatively ("we intend to
challenge the audience with different schemas and mapping scenarios"),
so the benchmark workloads are reconstructed.  Three families:

* :func:`flagged_scenario` — the running example extended with ``k``
  *flag views* (``Flagged_j(pid, n) ⇐ T_Product, ¬T_Rating(r, pid,
  flag_j)``) each carrying a name-key egd.  Every key rewrites into a
  3-branch ded whose equality branch fails on distinct ids while both
  rating branches survive: the disjunctive chase doubles per conflict
  (E3's exponential universal model sets) and the greedy chase must walk
  past every selection containing an equality branch (E4's "many of the
  generated scenarios fail").
* :func:`cleanup_scenario` — the paper's "poor design / clean-up view"
  experience: a denormalized source with status codes mapped through
  negation-filtering target views.
* :func:`random_scenario` — randomized but always-safe scenarios for
  property-based testing of the rewrite/chase/verify pipeline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import Dependency, egd, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.scenarios import running_example

__all__ = [
    "flagged_scenario",
    "flagged_instance",
    "cleanup_scenario",
    "cleanup_instance",
    "random_scenario",
    "GeneratedScenario",
    "flagged_case",
    "cleanup_case",
    "random_case",
    "evolution_case",
    "partition_case",
    "running_case",
    "FAMILIES",
    "build_family",
]

FLAG_BASE = 100
"""thumbsUp codes >= FLAG_BASE are synthetic flags, outside the 0/1 domain."""


@dataclass
class GeneratedScenario:
    """A scenario together with a matching instance generator seed."""

    scenario: MappingScenario
    instance: Instance


# ---------------------------------------------------------------------------
# Flag-view family (E3 / E4)
# ---------------------------------------------------------------------------


def flagged_scenario(flags: int = 1) -> MappingScenario:
    """The running example plus ``flags`` flag views with name keys.

    ``Flagged_j(pid, name) ⇐ T_Product(pid, name, s), ¬T_Rating(r, pid,
    FLAG_BASE + j)`` — a product is *flagged* unless a synthetic rating
    with code ``FLAG_BASE + j`` exists.  The key egd on ``Flagged_j``
    names rewrites into the d0-shaped ded::

        T_Product(id1, n, s1), T_Product(id2, n, s2)
            → id1 = id2 | T_Rating(r, id1, cj) | T_Rating(r, id2, cj)

    Flag codes never interact with the classification views (which only
    look at codes 0/1), so both insert branches always succeed.
    """
    source_schema = running_example.build_source_schema()
    target_schema = running_example.build_target_schema()
    views = running_example.build_target_views(target_schema)
    constraints: List[Dependency] = []
    pid, name, store, rid = (
        Variable("pid"),
        Variable("name"),
        Variable("store"),
        Variable("rid"),
    )
    for j in range(flags):
        view_name = f"Flagged_{j}"
        code = Constant(FLAG_BASE + j)
        views.define(
            Atom(view_name, (pid, name)),
            Conjunction(
                atoms=(Atom("T_Product", (pid, name, store)),),
                negations=(
                    NegatedConjunction(
                        Conjunction(atoms=(Atom("T_Rating", (rid, pid, code)),))
                    ),
                ),
            ),
            name=f"vf{j}",
        )
        id1, id2, n = Variable("id1"), Variable("id2"), Variable("n")
        constraints.append(
            egd(
                Conjunction(
                    atoms=(
                        Atom(view_name, (id1, n)),
                        Atom(view_name, (id2, n)),
                    )
                ),
                (Equality(id1, id2),),
                name=f"ef{j}",
            )
        )
    return MappingScenario(
        source_schema=source_schema,
        target_schema=target_schema,
        mappings=running_example.build_mappings(),
        target_views=views,
        target_constraints=constraints,
        name=f"flagged-{flags}",
    )


def flagged_instance(
    products: int = 10,
    name_pairs: int = 2,
    seed: int = 0,
) -> Instance:
    """Source data for :func:`flagged_scenario`.

    ``name_pairs`` pairs of *average* products share a name: each pair
    violates every flag key (no flag ratings exist initially), firing
    each ded once per pair.  Average products are used so the
    classification machinery stays satisfiable.
    """
    instance = running_example.generate_source_instance(
        products=products, stores=3, seed=seed, rating_weights=(0.3, 0.4, 0.3)
    )
    next_id = 10_000
    rng = random.Random(seed + 1)
    stores = [f"store_{i}" for i in range(3)]
    for i in range(name_pairs):
        for __ in range(2):
            instance.add_row(
                "S_Product", next_id, f"pair_{i}", rng.choice(stores), 3
            )
            next_id += 1
    return instance


# ---------------------------------------------------------------------------
# Clean-up family (the paper's "poor design" experience)
# ---------------------------------------------------------------------------


def cleanup_scenario() -> MappingScenario:
    """A denormalized source cleaned up through target views.

    Source: ``Orders(oid, customer, status)`` with status codes mixed
    into the data ('A' active, 'X' cancelled).  Target: ``T_Order`` and
    a separate ``T_Cancelled`` tombstone table.  The semantic schema
    offers ``ValidOrder`` (an order with no tombstone — negation) and
    ``CancelledOrder``; mappings classify by the source status code.
    """
    source_schema = Schema("orders_src")
    source_schema.add_relation(
        "Orders", [("oid", "int"), ("customer", "string"), ("status", "string")]
    )
    target_schema = Schema("orders_tgt")
    target_schema.add_relation("T_Order", [("oid", "int"), ("customer", "string")])
    target_schema.add_relation("T_Cancelled", [("oid", "int")])

    views = ViewProgram(target_schema)
    oid, customer = Variable("oid"), Variable("customer")
    views.define(
        Atom("ValidOrder", (oid, customer)),
        Conjunction(
            atoms=(Atom("T_Order", (oid, customer)),),
            negations=(
                NegatedConjunction(
                    Conjunction(atoms=(Atom("T_Cancelled", (oid,)),))
                ),
            ),
        ),
        name="v_valid",
    )
    views.define(
        Atom("CancelledOrder", (oid, customer)),
        Conjunction(
            atoms=(
                Atom("T_Order", (oid, customer)),
                Atom("T_Cancelled", (oid,)),
            )
        ),
        name="v_cancelled",
    )

    status = Variable("status")
    order = Atom("Orders", (oid, customer, status))
    mappings = [
        tgd(
            Conjunction(
                atoms=(order,),
                comparisons=(Comparison("!=", status, Constant("X")),),
            ),
            (Atom("ValidOrder", (oid, customer)),),
            name="mc0",
        ),
        tgd(
            Conjunction(
                atoms=(order,),
                comparisons=(Comparison("=", status, Constant("X")),),
            ),
            (Atom("CancelledOrder", (oid, customer)),),
            name="mc1",
        ),
    ]
    oid2, customer2 = Variable("oid2"), Variable("customer2")
    constraints = [
        egd(
            Conjunction(
                atoms=(
                    Atom("ValidOrder", (oid, customer)),
                    Atom("ValidOrder", (oid, customer2)),
                )
            ),
            (Equality(customer, customer2),),
            name="ec0",
        )
    ]
    return MappingScenario(
        source_schema=source_schema,
        target_schema=target_schema,
        mappings=mappings,
        target_views=views,
        target_constraints=constraints,
        name="cleanup",
    )


def cleanup_instance(orders: int = 50, cancelled_share: float = 0.3, seed: int = 0) -> Instance:
    """Source data for :func:`cleanup_scenario`."""
    rng = random.Random(seed)
    scenario_schema = cleanup_scenario().source_schema
    instance = Instance(scenario_schema)
    for i in range(orders):
        status = "X" if rng.random() < cancelled_share else rng.choice(["A", "P"])
        instance.add_row("Orders", i, f"cust_{i % 17}", status)
    return instance


# ---------------------------------------------------------------------------
# Randomized scenarios (property tests)
# ---------------------------------------------------------------------------


def random_scenario(
    seed: int = 0,
    relations: int = 2,
    views: int = 3,
    mappings: int = 3,
    negation_probability: float = 0.4,
    union_probability: float = 0.2,
    with_keys: bool = True,
    instance_rows: int = 12,
) -> GeneratedScenario:
    """A random but always-well-formed scenario with a matching instance.

    The construction keeps every generated object safe by design: view
    bodies are anchored on a positive atom binding all head variables,
    negations only constrain head variables, and mapping premises cover
    every conclusion frontier variable.  Used by the hypothesis suite to
    exercise the soundness property end-to-end.
    """
    rng = random.Random(seed)
    source_schema = Schema(f"rnd_src_{seed}")
    target_schema = Schema(f"rnd_tgt_{seed}")
    arities = {}
    for i in range(relations):
        arity = rng.randint(2, 3)
        arities[f"S{i}"] = arity
        source_schema.add_relation(
            f"S{i}", [(f"a{j}", "int") for j in range(arity)]
        )
        target_schema.add_relation(
            f"T{i}", [(f"b{j}", "int") for j in range(arity)]
        )

    program = ViewProgram(target_schema)
    view_names: List[Tuple[str, int]] = []
    for v in range(views):
        base = rng.randrange(relations)
        base_arity = arities[f"S{base}"]
        head_vars = tuple(Variable(f"x{j}") for j in range(base_arity))
        view_name = f"V{v}"
        rule_count = 2 if rng.random() < union_probability else 1
        for r in range(rule_count):
            body_atoms = [Atom(f"T{base}", head_vars)]
            negations = []
            if rng.random() < negation_probability:
                neg_base = rng.randrange(relations)
                neg_arity = arities[f"S{neg_base}"]
                neg_terms: List = [Variable(f"z{j}") for j in range(neg_arity)]
                # Anchor the negation on the first head variable so it is
                # correlated and meaningful.
                neg_terms[0] = head_vars[0]
                negations.append(
                    NegatedConjunction(
                        Conjunction(atoms=(Atom(f"T{neg_base}", tuple(neg_terms)),))
                    )
                )
            program.define(
                Atom(view_name, head_vars),
                Conjunction(atoms=tuple(body_atoms), negations=tuple(negations)),
                name=f"v{v}r{r}",
            )
        view_names.append((view_name, base_arity))

    mapping_deps: List[Dependency] = []
    for m in range(mappings):
        src = rng.randrange(relations)
        src_arity = arities[f"S{src}"]
        premise_vars = tuple(Variable(f"p{j}") for j in range(src_arity))
        premise = Conjunction(atoms=(Atom(f"S{src}", premise_vars),))
        view_name, view_arity = rng.choice(view_names)
        conclusion_terms = tuple(
            premise_vars[j % src_arity] for j in range(view_arity)
        )
        mapping_deps.append(
            tgd(premise, (Atom(view_name, conclusion_terms),), name=f"m{m}")
        )

    constraints: List[Dependency] = []
    if with_keys and view_names:
        view_name, view_arity = view_names[0]
        if view_arity >= 2:
            left = tuple(Variable(f"k{j}") for j in range(view_arity))
            right = tuple(
                left[j] if j == 0 else Variable(f"l{j}") for j in range(view_arity)
            )
            constraints.append(
                egd(
                    Conjunction(
                        atoms=(
                            Atom(view_name, left),
                            Atom(view_name, right),
                        )
                    ),
                    (Equality(left[1], right[1]),),
                    name="k0",
                )
            )

    scenario = MappingScenario(
        source_schema=source_schema,
        target_schema=target_schema,
        mappings=mapping_deps,
        target_views=program,
        target_constraints=constraints,
        name=f"random-{seed}",
    )

    instance = Instance(source_schema)
    for __ in range(instance_rows):
        relation = f"S{rng.randrange(relations)}"
        instance.add_row(
            relation,
            *[rng.randint(0, 5) for _j in range(arities[relation])],
        )
    return GeneratedScenario(scenario=scenario, instance=instance)


# ---------------------------------------------------------------------------
# Family registry (the batch runtime's corpus vocabulary)
# ---------------------------------------------------------------------------
#
# Each *case* builder pairs one member of a scenario family with a
# matching source instance, keyed entirely by plain keyword parameters,
# so a (family, params) pair is a complete, picklable, reproducible
# description of one unit of batch work.


def flagged_case(
    flags: int = 1,
    products: int = 10,
    name_pairs: int = 2,
    seed: int = 0,
) -> GeneratedScenario:
    """Flag-view family: ded arity scales with ``flags``, failure rate
    with ``name_pairs`` (each pair adds a failing equality branch)."""
    return GeneratedScenario(
        scenario=flagged_scenario(flags=flags),
        instance=flagged_instance(
            products=products, name_pairs=name_pairs, seed=seed
        ),
    )


def cleanup_case(
    orders: int = 50,
    cancelled_share: float = 0.3,
    seed: int = 0,
) -> GeneratedScenario:
    """Clean-up family: negation-filtering views over denormalized data."""
    return GeneratedScenario(
        scenario=cleanup_scenario(),
        instance=cleanup_instance(
            orders=orders, cancelled_share=cancelled_share, seed=seed
        ),
    )


def random_case(
    seed: int = 0,
    relations: int = 2,
    views: int = 3,
    mappings: int = 3,
    negation_probability: float = 0.4,
    union_probability: float = 0.2,
    with_keys: bool = True,
    instance_rows: int = 12,
) -> GeneratedScenario:
    """Randomized family (property-test shapes, always well-formed)."""
    return random_scenario(
        seed=seed,
        relations=relations,
        views=views,
        mappings=mappings,
        negation_probability=negation_probability,
        union_probability=union_probability,
        with_keys=with_keys,
        instance_rows=instance_rows,
    )


def evolution_case(
    with_soft_delete: bool = False,
    employees: int = 40,
    seed: int = 0,
) -> GeneratedScenario:
    """Schema-evolution family (legacy mappings over a re-normalized
    target, optionally composed with the soft-delete clean-up view)."""
    from repro.scenarios.evolution import evolution_instance, evolution_scenario

    return GeneratedScenario(
        scenario=evolution_scenario(with_soft_delete=with_soft_delete),
        instance=evolution_instance(employees=employees, seed=seed),
    )


def partition_case(
    width: int = 3,
    default_key: bool = False,
    class_keys: bool = False,
    items: int = 30,
    seed: int = 0,
    default_share: float = 0.25,
    duplicate_names: int = 0,
) -> GeneratedScenario:
    """Partition-hierarchy family: ontology fan-out is ``width`` (the
    default-class key rewrites to a ``width + 1``-disjunct ded)."""
    from repro.scenarios.ontology import partition_instance, partition_scenario

    return GeneratedScenario(
        scenario=partition_scenario(
            width=width, default_key=default_key, class_keys=class_keys
        ),
        instance=partition_instance(
            width=width,
            items=items,
            seed=seed,
            default_share=default_share,
            duplicate_names=duplicate_names,
        ),
    )


def running_case(
    products: int = 12,
    seed: int = 7,
    benign_name_pairs: int = 0,
    include_key: bool = True,
) -> GeneratedScenario:
    """The paper's Section 2 running example."""
    return GeneratedScenario(
        scenario=running_example.build_scenario(include_key=include_key),
        instance=running_example.generate_source_instance(
            products=products, seed=seed, benign_name_pairs=benign_name_pairs
        ),
    )


FAMILIES = {
    "flagged": flagged_case,
    "cleanup": cleanup_case,
    "random": random_case,
    "evolution": evolution_case,
    "partition": partition_case,
    "running": running_case,
}
"""Family name → case builder; the corpus layer enumerates over this."""


def build_family(family: str, **params) -> GeneratedScenario:
    """Build one case of a named family (raises ``KeyError`` on unknown)."""
    try:
        builder = FAMILIES[family]
    except KeyError:
        known = ", ".join(sorted(FAMILIES))
        raise KeyError(
            f"unknown scenario family {family!r} (known: {known})"
        ) from None
    return builder(**params)
