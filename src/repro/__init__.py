"""GROM: a General Rewriter of Semantic Mappings — full reproduction.

Reproduces the system demonstrated in *"GROM: a General Rewriter of
Semantic Mappings"* (Mecca, Rull, Santoro, Teniente — EDBT 2016):
mappings designed over virtual, view-based *semantic schemas* are
rewritten into executable dependencies over the underlying physical
databases and run by a chase engine, with special machinery (greedy ded
chase, static analysis) for the disjunctive dependencies that negation
in view definitions induces.

Typical use::

    from repro import run_scenario
    from repro.scenarios import build_scenario, generate_source_instance

    scenario = build_scenario()                      # the paper's Section 2
    source = generate_source_instance(products=100)
    outcome = run_scenario(scenario, source)
    print(outcome.chase)                             # chase stats
    print(outcome.verification)                      # soundness check

Subpackages: :mod:`repro.logic` (terms/atoms/dependencies),
:mod:`repro.relational` (schemas/instances/evaluation),
:mod:`repro.datalog` (view language), :mod:`repro.core` (the rewriter),
:mod:`repro.chase` (chase engines), :mod:`repro.scenarios` (workloads),
:mod:`repro.dsl` (textual scenario format), :mod:`repro.obs` (the
flight recorder: spans, metrics, trace files, phase profiling).
"""

from repro.chase import (
    ChaseConfig,
    ChaseResult,
    ChaseStatus,
    DisjunctiveChase,
    GreedyDedChase,
    StandardChase,
    chase,
    disjunctive_chase,
    greedy_ded_chase,
    is_weakly_acyclic,
)
from repro.core import (
    MappingScenario,
    RewriteResult,
    analyze,
    extend_source,
    predict_deds,
    rewrite,
    verify_solution,
)
from repro.datalog import Rule, ViewProgram, materialize
from repro.logic import (
    Atom,
    Comparison,
    Conjunction,
    Constant,
    Dependency,
    DependencyKind,
    Disjunct,
    Equality,
    NegatedConjunction,
    Null,
    Substitution,
    Variable,
    ded,
    denial,
    egd,
    tgd,
)
from repro.obs import (
    FlightRecorder,
    TraceConfig,
    profile_trace,
    read_trace,
    render_profile,
    write_trace,
)
from repro.pipeline import (
    PipelineResult,
    run_rewritten,
    run_scenario,
    strip_auxiliary,
)
from repro.relational import DataType, Instance, Relation, Schema
from repro.runtime import (
    BatchOptions,
    BatchReport,
    Corpus,
    RewriteCache,
    ScenarioSpec,
    fingerprint_instance,
    fingerprint_scenario,
    get_corpus,
    run_batch,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # pipeline
    "run_scenario",
    "run_rewritten",
    "PipelineResult",
    "strip_auxiliary",
    # batch runtime
    "run_batch",
    "BatchOptions",
    "BatchReport",
    "Corpus",
    "ScenarioSpec",
    "get_corpus",
    "RewriteCache",
    "fingerprint_scenario",
    "fingerprint_instance",
    # observability
    "TraceConfig",
    "FlightRecorder",
    "read_trace",
    "write_trace",
    "profile_trace",
    "render_profile",
    # core
    "MappingScenario",
    "rewrite",
    "RewriteResult",
    "predict_deds",
    "analyze",
    "extend_source",
    "verify_solution",
    # chase
    "chase",
    "StandardChase",
    "GreedyDedChase",
    "DisjunctiveChase",
    "greedy_ded_chase",
    "disjunctive_chase",
    "ChaseConfig",
    "ChaseResult",
    "ChaseStatus",
    "is_weakly_acyclic",
    # datalog
    "Rule",
    "ViewProgram",
    "materialize",
    # relational
    "Schema",
    "Relation",
    "Instance",
    "DataType",
    # logic
    "Atom",
    "Comparison",
    "Conjunction",
    "Constant",
    "Dependency",
    "DependencyKind",
    "Disjunct",
    "Equality",
    "NegatedConjunction",
    "Null",
    "Substitution",
    "Variable",
    "tgd",
    "egd",
    "ded",
    "denial",
]
