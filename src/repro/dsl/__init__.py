"""Textual scenario format: the file-format backbone of the GUI designer.

The paper's mapping designer and view browser manipulate schemas, view
programs, mappings and constraints; this package gives those objects a
durable, human-writable syntax with a parser and a round-tripping
serializer.
"""

from repro.dsl.lexer import Token, TokenKind, tokenize
from repro.dsl.parser import (
    ParsedDocument,
    parse_dependency,
    parse_rule_body,
    parse_scenario,
)
from repro.dsl.serializer import (
    serialize_dependency,
    serialize_instance,
    serialize_scenario,
)

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_scenario",
    "parse_dependency",
    "parse_rule_body",
    "ParsedDocument",
    "serialize_scenario",
    "serialize_dependency",
    "serialize_instance",
]
