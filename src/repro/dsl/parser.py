"""Recursive-descent parser for the GROM scenario language.

Grammar (sections may appear in any order; ``//``, ``#``, ``--`` start
comments)::

    source schema [name] {  S_Product(id int, name string, ...)
                            [key(id)] .  ...  }
    target schema [name] { ... }
    [source views { ... }]
    target views {
        v2: PopularProduct(pid, name) <-
              T_Product(pid, name, store), not T_Rating(rid, pid, 0).
    }
    mappings {
        m0: S_Product(pid, name, store, rating), rating < 2
              -> UnpopularProduct(pid, name).
    }
    constraints {
        e0: PopularProduct(id1, n), PopularProduct(id2, n) -> id1 = id2.
    }
    instance source {  S_Product(1, "iPhone", "BigStore", 5).  }

Conventions: identifiers in term position are *variables*; numbers,
quoted strings and ``true``/``false`` are constants.  ``not A(...)``
negates an atom; ``not ( ... )`` negates a conjunction.  A constraint
conclusion of ``false`` is a denial; ``|`` separates ded disjuncts (for
the standalone :func:`parse_dependency` helper — scenario constraints
must still be egds/denials).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.dsl.lexer import Token, TokenKind, tokenize
from repro.errors import ParseError
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import Dependency, Disjunct
from repro.logic.terms import Constant, Term, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Attribute, Relation, Schema
from repro.relational.types import DataType

__all__ = ["ParsedDocument", "parse_scenario", "parse_dependency", "parse_rule_body"]

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


@dataclass
class ParsedDocument:
    """Everything a scenario file can declare."""

    scenario: MappingScenario
    source_instance: Optional[Instance] = None
    target_instance: Optional[Instance] = None


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._position + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != TokenKind.EOF:
            self._position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token.kind != kind or (text is not None and token.text != text):
            expected = text or kind
            raise ParseError(
                f"expected {expected}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _accept_keyword(self, word: str) -> bool:
        return self._accept(TokenKind.IDENT, word) is not None

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- document --------------------------------------------------------------

    def parse_document(self) -> ParsedDocument:
        source_schema: Optional[Schema] = None
        target_schema: Optional[Schema] = None
        source_view_rules: List[Tuple[Atom, Conjunction, str]] = []
        target_view_rules: List[Tuple[Atom, Conjunction, str]] = []
        mappings: List[Dependency] = []
        constraints: List[Dependency] = []
        instances: dict = {}

        while self._peek().kind != TokenKind.EOF:
            token = self._peek()
            if token.kind != TokenKind.IDENT:
                raise self._error(f"unexpected token {token.text!r}")
            word = token.text
            if word in ("source", "target"):
                side = word
                self._advance()
                if self._accept_keyword("schema"):
                    schema = self._parse_schema_section(side)
                    if side == "source":
                        source_schema = schema
                    else:
                        target_schema = schema
                elif self._accept_keyword("views"):
                    rules = self._parse_views_section()
                    if side == "source":
                        source_view_rules.extend(rules)
                    else:
                        target_view_rules.extend(rules)
                else:
                    raise self._error(
                        f"expected 'schema' or 'views' after {side!r}"
                    )
            elif word == "mappings":
                self._advance()
                mappings.extend(self._parse_dependency_section())
            elif word == "constraints":
                self._advance()
                constraints.extend(self._parse_dependency_section())
            elif word == "instance":
                self._advance()
                side_token = self._expect(TokenKind.IDENT)
                if side_token.text not in ("source", "target"):
                    raise ParseError(
                        "instance must be 'source' or 'target'",
                        side_token.line,
                        side_token.column,
                    )
                instances[side_token.text] = self._parse_instance_section()
            else:
                raise self._error(f"unexpected section {word!r}")

        if source_schema is None:
            raise ParseError("missing 'source schema' section")
        if target_schema is None:
            raise ParseError("missing 'target schema' section")

        source_views = _build_program(source_schema, source_view_rules)
        target_views = _build_program(target_schema, target_view_rules)
        scenario = MappingScenario(
            source_schema=source_schema,
            target_schema=target_schema,
            mappings=mappings,
            target_views=target_views,
            source_views=source_views,
            target_constraints=constraints,
        )
        source_instance = _build_instance(source_schema, instances.get("source"))
        target_instance = _build_instance(target_schema, instances.get("target"))
        return ParsedDocument(scenario, source_instance, target_instance)

    # -- schema ------------------------------------------------------------------

    def _parse_schema_section(self, side: str) -> Schema:
        name_token = self._accept(TokenKind.IDENT)
        name = name_token.text if name_token else side
        schema = Schema(name)
        self._expect(TokenKind.LBRACE)
        while not self._accept(TokenKind.RBRACE):
            relation = self._parse_relation_decl()
            schema.add(relation)
        return schema

    def _parse_relation_decl(self) -> Relation:
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        attributes: List[Attribute] = []
        while True:
            attr_name = self._expect(TokenKind.IDENT).text
            type_token = self._accept(TokenKind.IDENT)
            dtype = (
                DataType.from_name(type_token.text)
                if type_token
                else DataType.ANY
            )
            attributes.append(Attribute(attr_name, dtype))
            if not self._accept(TokenKind.COMMA):
                break
        self._expect(TokenKind.RPAREN)
        key: List[str] = []
        if self._accept_keyword("key"):
            self._expect(TokenKind.LPAREN)
            while True:
                key.append(self._expect(TokenKind.IDENT).text)
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RPAREN)
        self._accept(TokenKind.DOT)
        return Relation(name, attributes, key=tuple(key))

    # -- views --------------------------------------------------------------------

    def _parse_views_section(self) -> List[Tuple[Atom, Conjunction, str]]:
        self._expect(TokenKind.LBRACE)
        rules: List[Tuple[Atom, Conjunction, str]] = []
        while not self._accept(TokenKind.RBRACE):
            label = ""
            if (
                self._peek().kind == TokenKind.IDENT
                and self._peek(1).kind == TokenKind.COLON
            ):
                label = self._advance().text
                self._advance()
            head = self._parse_atom()
            self._expect(TokenKind.DEFINES)
            body = self._parse_conjunction()
            self._expect(TokenKind.DOT)
            rules.append((head, body, label))
        return rules

    # -- dependencies ----------------------------------------------------------------

    def _parse_dependency_section(self) -> List[Dependency]:
        self._expect(TokenKind.LBRACE)
        dependencies: List[Dependency] = []
        while not self._accept(TokenKind.RBRACE):
            dependencies.append(self.parse_dependency())
        return dependencies

    def parse_dependency(self) -> Dependency:
        label = ""
        if (
            self._peek().kind == TokenKind.IDENT
            and self._peek(1).kind == TokenKind.COLON
        ):
            label = self._advance().text
            self._advance()
        premise = self._parse_conjunction()
        self._expect(TokenKind.ARROW)
        disjuncts = self._parse_conclusion()
        self._expect(TokenKind.DOT)
        return Dependency(premise, tuple(disjuncts), label)

    def _parse_conclusion(self) -> List[Disjunct]:
        if self._accept_keyword("false"):
            return []
        disjuncts = [self._parse_disjunct()]
        while self._accept(TokenKind.PIPE):
            disjuncts.append(self._parse_disjunct())
        return disjuncts

    def _parse_disjunct(self) -> Disjunct:
        atoms: List[Atom] = []
        equalities: List[Equality] = []
        comparisons: List[Comparison] = []
        while True:
            if self._peek().kind == TokenKind.IDENT and self._peek(1).kind == TokenKind.LPAREN:
                atoms.append(self._parse_atom())
            else:
                left = self._parse_term()
                op = self._parse_comparison_op()
                right = self._parse_term()
                if op == "=":
                    equalities.append(Equality(left, right))
                else:
                    comparisons.append(Comparison(op, left, right))
            if not self._accept(TokenKind.COMMA):
                break
        return Disjunct(
            atoms=tuple(atoms),
            equalities=tuple(equalities),
            comparisons=tuple(comparisons),
        )

    # -- formulas -------------------------------------------------------------------

    def _parse_conjunction(self) -> Conjunction:
        atoms: List[Atom] = []
        comparisons: List[Comparison] = []
        negations: List[NegatedConjunction] = []
        while True:
            if self._accept_keyword("not"):
                if self._accept(TokenKind.LPAREN):
                    inner = self._parse_conjunction()
                    self._expect(TokenKind.RPAREN)
                    negations.append(NegatedConjunction(inner))
                else:
                    atom = self._parse_atom()
                    negations.append(
                        NegatedConjunction(Conjunction(atoms=(atom,)))
                    )
            elif (
                self._peek().kind == TokenKind.IDENT
                and self._peek(1).kind == TokenKind.LPAREN
            ):
                atoms.append(self._parse_atom())
            else:
                left = self._parse_term()
                op = self._parse_comparison_op()
                right = self._parse_term()
                comparisons.append(Comparison(op, left, right))
            if not self._accept(TokenKind.COMMA):
                break
        return Conjunction(tuple(atoms), tuple(comparisons), tuple(negations))

    def _parse_comparison_op(self) -> str:
        token = self._peek()
        if token.kind == TokenKind.OP:
            return self._advance().text
        if token.kind == TokenKind.DEFINES and token.text == "<=":
            self._advance()
            return "<="
        raise self._error(f"expected a comparison operator, found {token.text!r}")

    def _parse_atom(self) -> Atom:
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        terms: List[Term] = []
        if not self._accept(TokenKind.RPAREN):
            while True:
                terms.append(self._parse_term())
                if not self._accept(TokenKind.COMMA):
                    break
            self._expect(TokenKind.RPAREN)
        return Atom(name, tuple(terms))

    def _parse_term(self) -> Term:
        token = self._peek()
        if token.kind == TokenKind.INT:
            self._advance()
            return Constant(int(token.text))
        if token.kind == TokenKind.FLOAT:
            self._advance()
            return Constant(float(token.text))
        if token.kind == TokenKind.STRING:
            self._advance()
            raw = token.text[1:-1]
            return Constant(raw.replace('\\"', '"').replace("\\'", "'"))
        if token.kind == TokenKind.IDENT:
            self._advance()
            if token.text == "true":
                return Constant(True)
            if token.text == "false":
                return Constant(False)
            return Variable(token.text)
        raise self._error(f"expected a term, found {token.text!r}")

    # -- instances ---------------------------------------------------------------------

    def _parse_instance_section(self) -> List[Atom]:
        self._expect(TokenKind.LBRACE)
        facts: List[Atom] = []
        while not self._accept(TokenKind.RBRACE):
            atom = self._parse_atom()
            self._accept(TokenKind.DOT)
            for term in atom.terms:
                if isinstance(term, Variable):
                    raise ParseError(
                        f"instance fact {atom} contains variable {term}; "
                        f"facts must be ground (quote strings)"
                    )
            facts.append(atom)
        return facts


def _build_program(
    schema: Schema, rules: Sequence[Tuple[Atom, Conjunction, str]]
) -> Optional[ViewProgram]:
    if not rules:
        return None
    program = ViewProgram(schema)
    for head, body, label in rules:
        program.define(head, body, name=label)
    return program


def _build_instance(
    schema: Schema, facts: Optional[Sequence[Atom]]
) -> Optional[Instance]:
    if facts is None:
        return None
    instance = Instance(schema)
    for fact in facts:
        instance.add(fact)
    return instance


def parse_scenario(text: str) -> ParsedDocument:
    """Parse a complete scenario document."""
    return _Parser(tokenize(text)).parse_document()


def parse_dependency(text: str) -> Dependency:
    """Parse a single dependency, e.g. ``"P(x), x < 3 -> Q(x) | R(x)."``."""
    parser = _Parser(tokenize(text))
    dependency = parser.parse_dependency()
    trailing = parser._peek()
    if trailing.kind != TokenKind.EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return dependency


def parse_rule_body(text: str) -> Conjunction:
    """Parse a conjunction, e.g. ``"A(x, y), not B(y), x != 3"``."""
    parser = _Parser(tokenize(text))
    conjunction = parser._parse_conjunction()
    trailing = parser._peek()
    if trailing.kind != TokenKind.EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return conjunction
