"""Tokenizer for the GROM scenario language.

The textual format covers everything the paper's graphical mapping
designer manipulates: schemas, view programs, mappings, constraints and
instances.  See :mod:`repro.dsl.parser` for the grammar.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import ParseError

__all__ = ["Token", "TokenKind", "tokenize"]


class TokenKind:
    IDENT = "IDENT"
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    COMMA = "COMMA"
    DOT = "DOT"
    COLON = "COLON"
    PIPE = "PIPE"
    ARROW = "ARROW"        # ->
    DEFINES = "DEFINES"    # <-
    OP = "OP"              # = != < <= > >=
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


_TOKEN_SPEC = [
    (TokenKind.FLOAT, r"-?\d+\.\d+"),
    (TokenKind.INT, r"-?\d+"),
    (TokenKind.STRING, r"\"(?:[^\"\\]|\\.)*\"|'(?:[^'\\]|\\.)*'"),
    (TokenKind.IDENT, r"[A-Za-z_][A-Za-z0-9_]*"),
    (TokenKind.ARROW, r"->"),
    (TokenKind.DEFINES, r"<-|<="),
    (TokenKind.OP, r"!=|<=|>=|=|<|>"),
    (TokenKind.LPAREN, r"\("),
    (TokenKind.RPAREN, r"\)"),
    (TokenKind.LBRACE, r"\{"),
    (TokenKind.RBRACE, r"\}"),
    (TokenKind.COMMA, r","),
    (TokenKind.DOT, r"\."),
    (TokenKind.COLON, r":"),
    (TokenKind.PIPE, r"\|"),
]

_MASTER = re.compile(
    "|".join(f"(?P<{kind}>{pattern})" for kind, pattern in _TOKEN_SPEC)
)
_WHITESPACE = re.compile(r"[ \t\r]+")
_COMMENT = re.compile(r"(//|#|--)[^\n]*")


def tokenize(text: str) -> List[Token]:
    """Turn source text into a token list ending with EOF.

    Raises :class:`ParseError` on unrecognized characters.  ``//``,
    ``#`` and ``--`` start line comments.
    """
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    length = len(text)
    while position < length:
        if text[position] == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        whitespace = _WHITESPACE.match(text, position)
        if whitespace:
            position = whitespace.end()
            continue
        comment = _COMMENT.match(text, position)
        if comment:
            position = comment.end()
            continue
        match = _MASTER.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}",
                line,
                position - line_start + 1,
            )
        kind = match.lastgroup or ""
        token_text = match.group()
        # `<=` is ambiguous: as a comparison it is OP, as a rule
        # definition arrow it is DEFINES.  The DEFINES pattern wins the
        # alternation; the parser treats DEFINES('<=') as either,
        # depending on context.
        tokens.append(Token(kind, token_text, line, position - line_start + 1))
        position = match.end()
    tokens.append(Token(TokenKind.EOF, "", line, position - line_start + 1))
    return tokens
