"""Serialization of scenarios back to the DSL (round-trips with the parser)."""

from __future__ import annotations

from typing import List, Optional

from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import Dependency
from repro.logic.terms import Null, Term, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema
from repro.relational.types import DataType

__all__ = [
    "serialize_scenario",
    "serialize_dependency",
    "serialize_instance",
    "serialize_relation",
    "serialize_rule",
    "serialize_fact",
]


def _term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, Null):
        raise ValueError(f"labeled null {term} has no DSL syntax")
    value = term.value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace('"', '\\"')
        return f'"{escaped}"'
    return str(value)


def _atom(atom: Atom) -> str:
    return f"{atom.relation}({', '.join(_term(t) for t in atom.terms)})"


def _conjunction(conjunction: Conjunction) -> str:
    parts: List[str] = [_atom(a) for a in conjunction.atoms]
    parts += [
        f"{_term(c.left)} {c.op} {_term(c.right)}" for c in conjunction.comparisons
    ]
    for negation in conjunction.negations:
        inner = negation.inner
        if (
            len(inner.atoms) == 1
            and not inner.comparisons
            and not inner.negations
        ):
            parts.append(f"not {_atom(inner.atoms[0])}")
        else:
            parts.append(f"not ({_conjunction(inner)})")
    return ", ".join(parts)


def serialize_dependency(dependency: Dependency) -> str:
    premise = _conjunction(dependency.premise)
    if not dependency.disjuncts:
        conclusion = "false"
    else:
        branches = []
        for disjunct in dependency.disjuncts:
            pieces = [_atom(a) for a in disjunct.atoms]
            pieces += [
                f"{_term(e.left)} = {_term(e.right)}" for e in disjunct.equalities
            ]
            pieces += [
                f"{_term(c.left)} {c.op} {_term(c.right)}"
                for c in disjunct.comparisons
            ]
            branches.append(", ".join(pieces))
        conclusion = " | ".join(branches)
    label = f"{dependency.name}: " if dependency.name else ""
    return f"{label}{premise} -> {conclusion}."


def serialize_relation(relation) -> str:
    """One relation declaration exactly as it appears inside a schema block.

    Public so the batch runtime's fingerprints can hash schema content
    relation-by-relation (order-insensitively) with the same text the
    DSL round-trips through.
    """
    attributes = ", ".join(
        f"{a.name}" if a.dtype is DataType.ANY else f"{a.name} {a.dtype}"
        for a in relation.attributes
    )
    key = f" key({', '.join(relation.key)})" if relation.key else ""
    return f"{relation.name}({attributes}){key}."


def serialize_rule(rule) -> str:
    """One view rule as it appears inside a views block."""
    label = f"{rule.name}: " if rule.name else ""
    return f"{label}{_atom(rule.head)} <- {_conjunction(rule.body)}."


def serialize_fact(fact: Atom) -> str:
    """One ground fact as it appears inside an instance block."""
    return f"{_atom(fact)}."


def _schema(schema: Schema, side: str) -> List[str]:
    lines = [f"{side} schema {schema.name} {{"]
    for relation in schema:
        lines.append(f"  {serialize_relation(relation)}")
    lines.append("}")
    return lines


def _views(program: ViewProgram, side: str) -> List[str]:
    lines = [f"{side} views {{"]
    for rule in program:
        lines.append(f"  {serialize_rule(rule)}")
    lines.append("}")
    return lines


def serialize_instance(instance: Instance, side: str) -> str:
    """Render an instance section (facts must be null-free)."""
    lines = [f"instance {side} {{"]
    for relation in sorted(instance.relations()):
        for fact in sorted(instance.facts(relation), key=str):
            lines.append(f"  {serialize_fact(fact)}")
    lines.append("}")
    return "\n".join(lines)


def serialize_scenario(
    scenario: MappingScenario,
    source_instance: Optional[Instance] = None,
    target_instance: Optional[Instance] = None,
) -> str:
    """Render a scenario (and optional instances) as a parseable document."""
    lines: List[str] = []
    lines += _schema(scenario.source_schema, "source")
    lines.append("")
    lines += _schema(scenario.target_schema, "target")
    if scenario.source_views is not None:
        lines.append("")
        lines += _views(scenario.source_views, "source")
    if scenario.target_views is not None:
        lines.append("")
        lines += _views(scenario.target_views, "target")
    lines.append("")
    lines.append("mappings {")
    for mapping in scenario.mappings:
        lines.append(f"  {serialize_dependency(mapping)}")
    lines.append("}")
    if scenario.target_constraints:
        lines.append("")
        lines.append("constraints {")
        for constraint in scenario.target_constraints:
            lines.append(f"  {serialize_dependency(constraint)}")
        lines.append("}")
    if source_instance is not None:
        lines.append("")
        lines.append(serialize_instance(source_instance, "source"))
    if target_instance is not None:
        lines.append("")
        lines.append(serialize_instance(target_instance, "target"))
    lines.append("")
    return "\n".join(lines)
