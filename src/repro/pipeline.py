"""One-call pipeline: rewrite → compose → chase → verify.

This is the whole Figure-2 architecture as a function: the mapping
designer's scenario goes in, a physical target instance comes out, with
the rewriting, the source-view materialization, the (greedy ded) chase
and the soundness verification wired together the way the GROM system
wires its modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis import MappingAnalysis, analyze_dependencies
from repro.chase.ded import GreedyDedChase
from repro.chase.engine import ChaseConfig, StandardChase
from repro.chase.result import ChaseResult
from repro.core.compose import extend_source
from repro.core.rewriter import AUX_PREFIX, RewriteResult, rewrite
from repro.core.scenario import MappingScenario
from repro.core.verify import VerificationReport, verify_solution
from repro.obs.recorder import resolve_recorder
from repro.relational.instance import Instance
from repro.relational.schema import Schema

__all__ = ["PipelineResult", "run_scenario", "run_rewritten", "strip_auxiliary"]


@dataclass
class PipelineResult:
    """Everything one end-to-end run produces."""

    rewrite: RewriteResult
    chase: ChaseResult
    target: Instance
    """Physical target instance (auxiliary requirement relations stripped)."""

    verification: Optional[VerificationReport] = None

    analysis: Optional[MappingAnalysis] = None
    """Static analyzer verdicts for the rewritten dependency set:
    termination class, firing strata, dead dependencies and the coded
    diagnostics ``grom lint`` renders."""

    trace: Optional[dict] = None
    """Flight-recorder payload covering the whole pipeline run, present
    when tracing was enabled via ``config.trace`` and no external
    recorder was passed in."""

    @property
    def ok(self) -> bool:
        verified = self.verification.ok if self.verification else True
        return self.chase.ok and verified


def strip_auxiliary(
    instance: Instance, schema: Optional[Schema] = None
) -> Instance:
    """Drop the rewriter's ``_grom_req_*`` bookkeeping relations.

    When ``schema`` is given (or the input instance carries one), the
    stripped instance keeps it, so downstream consumers can still
    validate facts against the physical target schema instead of
    receiving a schemaless bag of atoms.
    """
    stripped = Instance(schema if schema is not None else instance.schema)
    for fact in instance:
        if not fact.relation.startswith(AUX_PREFIX):
            stripped.add(fact)
    return stripped


def run_scenario(
    scenario: MappingScenario,
    source_instance: Instance,
    verify: bool = True,
    config: Optional[ChaseConfig] = None,
    max_scenarios: int = 256,
    unfold_source_premises: bool = False,
    recorder=None,
) -> PipelineResult:
    """Run the full GROM pipeline on a scenario and a source instance.

    1. rewrite the semantic mappings (``Σ_{V_S,V_T} ∪ Σ_{V_T}`` →
       ``Σ_ST ∪ Σ_T``);
    2. materialize source views (``I_S ∪ Υ_S(I_S)``) unless premises
       were unfolded instead;
    3. chase — the standard engine when the rewriting is ded-free, the
       greedy ded engine otherwise;
    4. verify the produced target against the *original* semantic
       scenario (the paper's soundness contract).

    ``recorder`` follows the engine convention: pass a flight recorder
    to keep the trace, or set ``config.trace`` to have the pipeline own
    one and attach its payload to ``PipelineResult.trace``.  Either way
    the phases show up as ``rewrite`` / ``compose`` / ``chase`` /
    ``verify`` spans.
    """
    rec = resolve_recorder(recorder, config.trace if config else None)
    owned = recorder is None and rec.enabled
    with rec.span("rewrite"):
        rewritten = rewrite(
            scenario, unfold_source_premises=unfold_source_premises
        )
    result = run_rewritten(
        scenario,
        rewritten,
        source_instance,
        verify=verify,
        config=config,
        max_scenarios=max_scenarios,
        unfold_source_premises=unfold_source_premises,
        recorder=rec if rec.enabled else None,
    )
    if owned:
        result.trace = rec.to_payload()
    return result


def run_rewritten(
    scenario: MappingScenario,
    rewritten: RewriteResult,
    source_instance: Instance,
    verify: bool = True,
    config: Optional[ChaseConfig] = None,
    max_scenarios: int = 256,
    unfold_source_premises: bool = False,
    recorder=None,
) -> PipelineResult:
    """Chase + verify with an already-computed rewriting.

    The batch runtime's content-addressed cache stores rewritings keyed
    by scenario fingerprint; this entry point lets a cache hit skip step
    1 of :func:`run_scenario` entirely while keeping the chase and the
    soundness verification identical.  ``unfold_source_premises`` must
    match the flag the rewriting was produced with.
    """
    rec = resolve_recorder(recorder, config.trace if config else None)
    owned = recorder is None and rec.enabled
    if unfold_source_premises:
        chase_input = source_instance
    else:
        with rec.span("compose"):
            chase_input = extend_source(
                scenario, source_instance, recorder=rec if rec.enabled else None
            )

    # Static analysis of the rewritten set: the termination verdict
    # decides whether the chase may drop its guards, and the verdict,
    # strata and diagnostics ride along on the result and the trace.
    with rec.span("analyze"):
        analysis = analyze_dependencies(
            rewritten.dependencies,
            rewritten.source_relations(),
            rewritten.target_relations(),
        )
        if rec.enabled:
            for counter, value in sorted(analysis.counters().items()):
                rec.count(counter, value)

    with rec.span("chase", deds=rewritten.has_deds):
        if rewritten.has_deds:
            engine = GreedyDedChase(
                rewritten.dependencies,
                rewritten.source_relations(),
                config,
                max_scenarios=max_scenarios,
                termination=analysis.termination,
            )
            chase_result = engine.run(chase_input, recorder=rec)
        else:
            standard = StandardChase(
                rewritten.dependencies,
                rewritten.source_relations(),
                config,
                termination=analysis.termination,
            )
            chase_result = standard.run(chase_input, recorder=rec)

    target = strip_auxiliary(chase_result.target, scenario.target_schema)
    verification = None
    if verify and chase_result.ok:
        # The chase input *is* the verifier's source side (I_S ∪ Υ_S(I_S))
        # unless premises were unfolded — then the views were never
        # materialized and the verifier builds them itself.  The verifier
        # inherits the chase's parallelism spec (one worker budget).
        with rec.span("verify"):
            verification = verify_solution(
                scenario,
                source_instance,
                target,
                source_side=None if unfold_source_premises else chase_input,
                parallelism=config.parallelism if config is not None else None,
            )
        rec.count("verify.checked", 1)
        rec.count("verify.ok", 1 if verification.ok else 0)
    return PipelineResult(
        rewrite=rewritten,
        chase=chase_result,
        target=target,
        verification=verification,
        analysis=analysis,
        trace=rec.to_payload() if owned else None,
    )
