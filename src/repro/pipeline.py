"""One-call pipeline: rewrite → compose → chase → verify.

This is the whole Figure-2 architecture as a function: the mapping
designer's scenario goes in, a physical target instance comes out, with
the rewriting, the source-view materialization, the (greedy ded) chase
and the soundness verification wired together the way the GROM system
wires its modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.chase.ded import GreedyDedChase
from repro.chase.engine import ChaseConfig, StandardChase
from repro.chase.result import ChaseResult
from repro.core.compose import extend_source
from repro.core.rewriter import AUX_PREFIX, RewriteResult, rewrite
from repro.core.scenario import MappingScenario
from repro.core.verify import VerificationReport, verify_solution
from repro.relational.instance import Instance
from repro.relational.schema import Schema

__all__ = ["PipelineResult", "run_scenario", "run_rewritten", "strip_auxiliary"]


@dataclass
class PipelineResult:
    """Everything one end-to-end run produces."""

    rewrite: RewriteResult
    chase: ChaseResult
    target: Instance
    """Physical target instance (auxiliary requirement relations stripped)."""

    verification: Optional[VerificationReport] = None

    @property
    def ok(self) -> bool:
        verified = self.verification.ok if self.verification else True
        return self.chase.ok and verified


def strip_auxiliary(
    instance: Instance, schema: Optional[Schema] = None
) -> Instance:
    """Drop the rewriter's ``_grom_req_*`` bookkeeping relations.

    When ``schema`` is given (or the input instance carries one), the
    stripped instance keeps it, so downstream consumers can still
    validate facts against the physical target schema instead of
    receiving a schemaless bag of atoms.
    """
    stripped = Instance(schema if schema is not None else instance.schema)
    for fact in instance:
        if not fact.relation.startswith(AUX_PREFIX):
            stripped.add(fact)
    return stripped


def run_scenario(
    scenario: MappingScenario,
    source_instance: Instance,
    verify: bool = True,
    config: Optional[ChaseConfig] = None,
    max_scenarios: int = 256,
    unfold_source_premises: bool = False,
) -> PipelineResult:
    """Run the full GROM pipeline on a scenario and a source instance.

    1. rewrite the semantic mappings (``Σ_{V_S,V_T} ∪ Σ_{V_T}`` →
       ``Σ_ST ∪ Σ_T``);
    2. materialize source views (``I_S ∪ Υ_S(I_S)``) unless premises
       were unfolded instead;
    3. chase — the standard engine when the rewriting is ded-free, the
       greedy ded engine otherwise;
    4. verify the produced target against the *original* semantic
       scenario (the paper's soundness contract).
    """
    rewritten = rewrite(scenario, unfold_source_premises=unfold_source_premises)
    return run_rewritten(
        scenario,
        rewritten,
        source_instance,
        verify=verify,
        config=config,
        max_scenarios=max_scenarios,
        unfold_source_premises=unfold_source_premises,
    )


def run_rewritten(
    scenario: MappingScenario,
    rewritten: RewriteResult,
    source_instance: Instance,
    verify: bool = True,
    config: Optional[ChaseConfig] = None,
    max_scenarios: int = 256,
    unfold_source_premises: bool = False,
) -> PipelineResult:
    """Chase + verify with an already-computed rewriting.

    The batch runtime's content-addressed cache stores rewritings keyed
    by scenario fingerprint; this entry point lets a cache hit skip step
    1 of :func:`run_scenario` entirely while keeping the chase and the
    soundness verification identical.  ``unfold_source_premises`` must
    match the flag the rewriting was produced with.
    """
    if unfold_source_premises:
        chase_input = source_instance
    else:
        chase_input = extend_source(scenario, source_instance)

    if rewritten.has_deds:
        engine = GreedyDedChase(
            rewritten.dependencies,
            rewritten.source_relations(),
            config,
            max_scenarios=max_scenarios,
        )
        chase_result = engine.run(chase_input)
    else:
        standard = StandardChase(
            rewritten.dependencies, rewritten.source_relations(), config
        )
        chase_result = standard.run(chase_input)

    target = strip_auxiliary(chase_result.target, scenario.target_schema)
    verification = None
    if verify and chase_result.ok:
        # The chase input *is* the verifier's source side (I_S ∪ Υ_S(I_S))
        # unless premises were unfolded — then the views were never
        # materialized and the verifier builds them itself.  The verifier
        # inherits the chase's parallelism spec (one worker budget).
        verification = verify_solution(
            scenario,
            source_instance,
            target,
            source_side=None if unfold_source_premises else chase_input,
            parallelism=config.parallelism if config is not None else None,
        )
    return PipelineResult(
        rewrite=rewritten,
        chase=chase_result,
        target=target,
        verification=verification,
    )
