"""Sharded premise-match enumeration for the parallel chase.

The chase round loop is a two-phase pipeline: **enumerate** finds every
premise match of a dependency (a read-only join over the working
instance) and **enforce** replays the matches through the satisfaction
probe and the tgd/egd steps in a canonical order.  Only the enumerate
phase touches enough independent work to parallelize — premise matches
of one dependency in one round are independent until enforcement — so
this module shards exactly that phase behind one interface:

:class:`MatchSharder`
    The serial base: enumerate delegates straight to
    :meth:`~repro.chase.compiled.CompiledDependency.premise_matches`.

:class:`ThreadSharder`
    Shards each round's (anchor, delta-chunk) units across a thread
    pool reading the live working instance through its
    :class:`~repro.relational.instance.ProbeView`.  Index builds are
    guarded by the instance's lock; nothing mutates during enumerate.

:class:`ProcessSharder`
    Forks replica workers at ``begin_run`` (copy-on-write: the child
    inherits the working instance and compiled plans for free) and keeps
    each replica in lockstep by replaying the enforce phase's events —
    generation bumps, inserted facts, applied null maps — so each round's
    delta can be recomputed worker-side instead of shipped.

Sharding is deterministic by construction, not by scheduling: a worker
owns the anchor facts whose ``hash(fact) % workers`` equals its id (a
partition, so every match is found exactly once per anchor), the merge
deduplicates across anchors exactly like the serial delta join, and the
engine sorts the merged matches into canonical order before enforcement
— so null invention and ``_NullMap`` unions are bit-identical to the
serial chase.

The module also owns the **shared pool budget**: scenario-level batch
workers and intra-chase shards draw from one ``os.cpu_count()`` budget
(:func:`chase_worker_budget`), so turning both on never oversubscribes.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ChaseError
from repro.logic.atoms import Atom
from repro.obs.recorder import NULL_RECORDER
from repro.relational.delta import group_rows
from repro.relational.instance import Instance
from repro.relational.kernel import ColumnarInstance
from repro.relational.query import Binding

__all__ = [
    "MatchSharder",
    "ThreadSharder",
    "ProcessSharder",
    "create_sharder",
    "parse_parallelism",
    "chase_worker_budget",
    "effective_parallelism",
    "compose_parallelism",
]

_MODE_ALIASES = {
    "thread": "thread",
    "threads": "thread",
    "process": "process",
    "processes": "process",
    "fork": "process",
}

#: Below this many anchor facts a shard is not worth the fan-out.
MIN_SHARD_FACTS = 32


def default_workers() -> int:
    """Worker count when a mode is requested without an explicit count."""
    return max(1, min(8, os.cpu_count() or 1))


def parse_parallelism(spec, default: Optional[int] = None) -> Tuple[str, int]:
    """``spec`` → ``(mode, workers)`` with mode in serial/thread/process.

    Accepted forms: ``None``/``"serial"`` (serial), ``"thread"`` /
    ``"process"`` (worker count defaulting to ``default`` or this
    machine's :func:`default_workers`), ``"thread:4"`` / ``"process:4"``
    (explicit count), or a bare integer (process mode).  Anything that
    resolves to one worker is serial.
    """
    if spec is None:
        return ("serial", 1)
    if isinstance(spec, int):
        return ("process", spec) if spec > 1 else ("serial", 1)
    text = str(spec).strip().lower()
    if text in ("", "serial", "none", "off", "1"):
        return ("serial", 1)
    if text.isdigit():
        count = int(text)
        return ("process", count) if count > 1 else ("serial", 1)
    mode, _, count_text = text.partition(":")
    if mode not in _MODE_ALIASES:
        known = "serial, thread[:N], process[:N]"
        raise ChaseError(f"unknown parallelism {spec!r} (expected {known})")
    if count_text:
        try:
            workers = int(count_text)
        except ValueError:
            raise ChaseError(
                f"bad worker count in parallelism {spec!r}"
            ) from None
    else:
        workers = default if default is not None else default_workers()
    if workers <= 1:
        return ("serial", 1)
    return (_MODE_ALIASES[mode], workers)


def chase_worker_budget(
    jobs: int, requested: int, cpu_count: Optional[int] = None
) -> int:
    """Intra-chase workers one of ``jobs`` concurrent tasks may use.

    Scenario-level batch workers and chase shards share one CPU budget:
    ``jobs × chase_workers`` must not exceed ``cpu_count``, so each task
    gets ``cpu_count // jobs`` shards (at least one — serial — and never
    more than it asked for).
    """
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    budget = max(1, cpu // max(1, jobs))
    return max(1, min(requested, budget))


def effective_parallelism(
    spec, jobs: int = 1, cpu_count: Optional[int] = None
) -> str:
    """Canonical parallelism string after applying the shared budget.

    A mode without an explicit worker count (``"thread"``) asks for the
    whole per-task share of the budget.
    """
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    mode, workers = parse_parallelism(spec, default=max(1, cpu // max(1, jobs)))
    if mode == "serial":
        return "serial"
    workers = chase_worker_budget(jobs, workers, cpu)
    if workers <= 1:
        return "serial"
    return f"{mode}:{workers}"


def compose_parallelism(
    jobs: int, branch_spec, chase_spec, cpu_count: Optional[int] = None
) -> Tuple[str, str]:
    """Canonical (branch, chase) parallelism under one shared CPU budget.

    Three tiers draw from the same ``cpu_count``: concurrent batch tasks
    (``jobs``), branch racers inside each task's disjunctive search, and
    match shards inside each raced chase.  The invariant is
    ``jobs × branch workers × chase workers ≤ cpu_count`` — branch
    workers get the per-job share first (racing whole scenarios
    dominates sharding single joins), and chase shards divide whatever
    remains.
    """
    cpu = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    branch = effective_parallelism(branch_spec, jobs, cpu)
    _mode, branch_workers = parse_parallelism(branch)
    chase = effective_parallelism(
        chase_spec, max(1, jobs) * max(1, branch_workers), cpu
    )
    return branch, chase


def create_sharder(spec) -> "MatchSharder":
    """Build the sharder a parallelism spec asks for.

    Process mode degrades to threads when ``fork`` is unavailable or the
    caller is itself a daemonic pool worker (which may not spawn
    children) — the results are identical either way, only the speedup
    differs.
    """
    mode, workers = parse_parallelism(spec)
    if mode == "serial":
        return MatchSharder()
    if mode == "process":
        can_fork = "fork" in multiprocessing.get_all_start_methods()
        if can_fork and not multiprocessing.current_process().daemon:
            return ProcessSharder(workers)
        return ThreadSharder(workers)
    return ThreadSharder(workers)


def _partition_by_hash(
    facts, workers: int
) -> List[Set[Atom]]:
    """Partition facts into ``workers`` chunks by ``hash % workers``.

    The assignment is order-independent, so it needs no canonical sort
    and every worker of one process tree computes the same partition.
    """
    chunks: List[Set[Atom]] = [set() for _ in range(workers)]
    for fact in facts:
        chunks[hash(fact) % workers].add(fact)
    return chunks


def _partition_row_ids(row_ids, workers: int) -> List[Set[int]]:
    """Columnar twin of :func:`_partition_by_hash`: row ids shard by
    ``rid % workers``, which every replica computes identically because
    row ids are assigned by the deterministic event replay."""
    chunks: List[Set[int]] = [set() for _ in range(workers)]
    for row_id in row_ids:
        chunks[row_id % workers].add(row_id)
    return chunks


def _delta_size(delta) -> int:
    """Fact count of a round delta in either kernel's shape (a set of
    atoms, or a relation -> row-id-set dict)."""
    if isinstance(delta, dict):
        return sum(len(rows) for rows in delta.values())
    return len(delta)


def _dedup_merge(shards: Sequence[List[Binding]]) -> List[Binding]:
    """Union shard results, deduplicating bindings across anchors.

    Mirrors the serial delta join's dedup (a match touching two delta
    facts is found once per anchor); output order is irrelevant because
    the engine sorts matches into canonical order before enforcement.
    """
    out: List[Binding] = []
    seen: Set[tuple] = set()
    for shard in shards:
        for binding in shard:
            key = tuple(sorted(binding.items()))
            if key not in seen:
                seen.add(key)
                out.append(binding)
    return out


def _dedup_merge_rows(shards) -> List[Tuple[int, ...]]:
    """Encoded twin of :func:`_dedup_merge`: a code row *is* its own
    binding key (varlist order), so tuple identity is binding identity."""
    out: List[Tuple[int, ...]] = []
    seen: Set[Tuple[int, ...]] = set()
    for shard in shards:
        for row in shard:
            if row not in seen:
                seen.add(row)
                out.append(row)
    return out


class MatchSharder:
    """Serial match enumeration — the base of the sharder interface.

    Lifecycle: ``begin_run(working, compiled)`` once per chase run, then
    per round ``begin_round(delta, since)`` followed by one
    ``enumerate_matches(index)`` per dependency, with the engine
    reporting its mutations through the ``record_*`` hooks (used by the
    replica-keeping process sharder; no-ops otherwise), then
    ``end_run()``.  ``close()`` releases anything that outlives runs.
    """

    mode = "serial"
    workers = 1

    #: Whether the engine must report enforcement events (generation
    #: bumps, new facts, null maps) so remote replicas can stay in sync.
    wants_replica_events = False

    #: The run's flight recorder (the shared null recorder when the
    #: chase is untraced).  Worker-side enumeration timings are shipped
    #: home as ``enumerate.worker`` spans and merged in a fixed worker
    #: order, keeping the parent trace deterministic.
    _recorder = NULL_RECORDER

    def set_recorder(self, recorder) -> None:
        """Attach the run's flight recorder (``None`` detaches).  Must be
        called before ``begin_run``: the process sharder decides at fork
        time whether replicas time their enumerations."""
        self._recorder = recorder if recorder is not None else NULL_RECORDER

    def describe(self) -> str:
        if self.workers <= 1:
            return self.mode
        return f"{self.mode}:{self.workers}"

    # -- lifecycle ---------------------------------------------------------

    def begin_run(self, working, compiled: Sequence) -> None:
        self._working = working
        self._compiled = compiled
        #: Which kernel the run speaks: over the columnar kernel the
        #: engine hands row-id deltas and expects encoded code rows back
        #: (and replica events carry encoded payloads).
        self._encoded = isinstance(working, ColumnarInstance)

    def end_run(self) -> None:
        pass

    def close(self) -> None:
        pass

    # -- per round ---------------------------------------------------------

    def begin_round(self, delta, since: Optional[int]) -> None:
        """``delta`` carries the kernel's round shape: ``Set[Atom]``
        (reference), :data:`~repro.relational.delta.RowDelta`
        (columnar), or ``None`` for a full round in either."""
        self._delta = delta
        self._since = since

    def enumerate_matches(self, index: int):
        """Phase 1 of a dependency's round: every premise match —
        bindings over the reference kernel, code rows over columnar."""
        if self._encoded:
            return self._compiled[index].premise_matches_encoded(
                self._working, self._delta
            )
        return self._compiled[index].premise_matches(self._working, self._delta)

    # -- enforce-phase event hooks (replica maintenance) -------------------

    def record_generation(self) -> None:
        pass

    def record_new_facts(self, facts: Sequence[Atom]) -> None:
        pass

    def record_null_map(self, resolution: Dict) -> None:
        pass

    # -- shared shard planning ---------------------------------------------

    def _full_anchor(self, index: int) -> Optional[int]:
        """Anchor atom for a full (non-delta) round: the largest relation
        carries the most shardable scan work; ties break on position."""
        atoms = self._compiled[index].premise_atoms
        if not atoms:
            return None
        size = self._working.size
        return min(
            range(len(atoms)), key=lambda i: (-size(atoms[i].relation), i)
        )


class ThreadSharder(MatchSharder):
    """Shards enumeration across threads over the live instance.

    Threads read the working instance through its probe view while the
    engine is between enforcement phases, so nothing mutates under them.
    Python's GIL caps the speedup for these pure-Python joins — the
    thread sharder exists as the portable/fallback tier and as the
    determinism cross-check; fork-based :class:`ProcessSharder` is the
    performance tier.
    """

    mode = "thread"

    def __init__(self, workers: int) -> None:
        self.workers = max(2, int(workers))
        self._pool: Optional[ThreadPoolExecutor] = None

    def begin_run(self, working, compiled: Sequence) -> None:
        super().begin_run(working, compiled)
        self._view = working.probe_view()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="chase-shard"
        )

    def end_run(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _shard_units(self, index: int):
        """Plan the round's (anchor, chunk) units, or ``None`` to fall
        back to serial enumeration.  Chunks are anchor-fact sets over
        the reference kernel and anchor-row-id sets over columnar."""
        compiled = self._compiled[index]
        atoms = compiled.premise_atoms
        units: List[Tuple[int, Set]] = []
        if self._delta is None:
            anchor = self._full_anchor(index)
            relation = atoms[anchor].relation
            if self._encoded:
                candidates = self._working.live_row_ids(relation)
                partition = _partition_row_ids
            else:
                candidates = self._working.facts(relation)
                partition = _partition_by_hash
            if len(candidates) < MIN_SHARD_FACTS:
                return None
            units = [
                (anchor, chunk)
                for chunk in partition(candidates, self.workers)
                if chunk
            ]
        else:
            if _delta_size(self._delta) < MIN_SHARD_FACTS:
                return None
            if self._encoded:
                relations = set(self._delta)
            else:
                relations = {fact.relation for fact in self._delta}
            anchors = compiled.anchor_indices(relations)
            if not anchors:
                return []
            for anchor in anchors:
                relation = atoms[anchor].relation
                if self._encoded:
                    mine = self._delta.get(relation, ())
                    chunks = _partition_row_ids(mine, self.workers)
                else:
                    mine = [f for f in self._delta if f.relation == relation]
                    chunks = _partition_by_hash(mine, self.workers)
                units.extend((anchor, chunk) for chunk in chunks if chunk)
        return units

    def enumerate_matches(self, index: int):
        compiled = self._compiled[index]
        if not compiled.premise_atoms or self._pool is None:
            return super().enumerate_matches(index)
        units = self._shard_units(index)
        if units is None:
            return super().enumerate_matches(index)
        if not units:
            return []
        if self._encoded:
            probe, merge = compiled.anchor_matches_encoded, _dedup_merge_rows
        else:
            probe, merge = compiled.anchor_matches, _dedup_merge
        view = self._view
        rec = self._recorder
        if not rec.enabled:
            futures = [
                self._pool.submit(probe, view, anchor, chunk)
                for anchor, chunk in units
            ]
            return merge([future.result() for future in futures])

        def timed(anchor: int, chunk):
            begin = time.perf_counter()
            result = probe(view, anchor, chunk)
            return result, begin, time.perf_counter()

        futures = [
            self._pool.submit(timed, anchor, chunk) for anchor, chunk in units
        ]
        shards: List[list] = []
        # Collect (and record) in unit order, not completion order, so the
        # trace's span sequence is deterministic.
        for unit, ((anchor, _chunk), future) in enumerate(zip(units, futures)):
            result, begin, end = future.result()
            shards.append(result)
            rec.tracer.add_raw(
                "enumerate.worker",
                begin,
                end,
                worker=f"thread-{unit}",
                anchor=anchor,
                matches=len(result),
            )
        return merge(shards)


# ---------------------------------------------------------------------------
# Forked replica workers
# ---------------------------------------------------------------------------


def _replica_worker(
    conn, worker_id: int, worker_count: int, replica, compiled, traced=False
):
    """Loop of one forked enumeration worker.

    ``replica``/``compiled`` are copy-on-write images of the engine's
    working instance and plans at ``begin_run`` time.  The parent keeps
    the replica in lockstep by streaming the enforce phase's events
    (generation bumps, fact inserts, null-map applications — all
    deterministic operations), so each round's delta is recomputed here
    from the mirrored generation window instead of being shipped.

    Over the columnar kernel the same loop runs on encoded payloads:
    ``facts`` events carry ``(relation, code row)`` pairs replayed in
    per-relation batches via the bulk ``extend_encoded`` path, ``map``
    events carry code-level null resolutions,
    ``pool`` events append the parent's post-fork term-pool growth (rare
    — warm-up interns every dependency literal pre-fork), the frozen
    delta is a relation -> row-id-set dict, and replies are lists of
    code tuples instead of bindings — integers, not pickled atoms.

    When ``traced``, each enumeration is timed and the reply grows a
    third element — ``{"spans": [...]}`` with one ``enumerate.worker``
    span per request.  ``perf_counter`` is ``CLOCK_MONOTONIC`` on Linux
    and forked children share the parent's clock, so the parent can
    splice these spans into its own timeline unadjusted.
    """
    view = replica.probe_view()
    encoded = isinstance(replica, ColumnarInstance)
    # The round's delta, frozen at the round's first enumeration (keyed
    # by the generation it was taken from).  It must NOT be recomputed
    # after same-round event replays: the parent chases every dependency
    # of a round against the delta frozen at round start, so facts that
    # earlier dependencies enforced this round belong to the *next*
    # round's delta, not this one's.
    delta_since: Optional[int] = None
    delta_frozen = {} if encoded else set()

    def freeze_delta(since: int) -> None:
        nonlocal delta_since, delta_frozen
        if encoded:
            delta_frozen = group_rows(replica.rows_since(since))
        else:
            delta_frozen = set(replica.facts_since(since))
        delta_since = since

    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "stop":
                return
            if op == "events":
                for event in message[1]:
                    kind = event[0]
                    if kind == "bump":
                        replica.bump_generation()
                    elif kind == "facts":
                        if encoded:
                            # Batch per relation: row ids are assigned
                            # per table, so grouping keeps them in
                            # lockstep with the coordinator while the
                            # bulk path skips per-row overhead.
                            batches: Dict[str, list] = {}
                            for relation, values in event[1]:
                                batches.setdefault(relation, []).append(
                                    tuple(values)
                                )
                            for relation, batch in batches.items():
                                replica.extend_encoded(relation, batch)
                        else:
                            for fact in event[1]:
                                replica.add(fact)
                    elif kind == "pool":
                        replica.pool.adopt_entries(event[1], event[2])
                    else:  # "map"
                        if encoded:
                            replica.apply_null_map_encoded(event[1])
                        else:
                            replica.apply_null_map(event[1])
                continue
            if op == "round":
                # Freeze this round's delta *now*, before any of the
                # round's enforcement events arrive: the parent sends
                # this right after flushing the previous round's tail.
                since = message[1]
                if since != delta_since:
                    freeze_delta(since)
                continue
            _, dep_index, spec = message
            dependency = compiled[dep_index]
            try:
                begin = time.perf_counter() if traced else 0.0
                out: list = []
                if spec[0] == "full":
                    anchor = spec[1]
                    relation = dependency.premise_atoms[anchor].relation
                    if encoded:
                        chunk = {
                            row_id
                            for row_id in replica.live_row_ids(relation)
                            if row_id % worker_count == worker_id
                        }
                        if chunk:
                            out = dependency.anchor_matches_encoded(
                                view, anchor, chunk
                            )
                    else:
                        chunk = {
                            fact
                            for fact in replica.facts(relation)
                            if hash(fact) % worker_count == worker_id
                        }
                        if chunk:
                            out = dependency.anchor_matches(view, anchor, chunk)
                else:  # ("delta", since, anchors)
                    _, since, anchors = spec
                    if since != delta_since:
                        # First enumeration of a new round: all of the
                        # previous round's events have been replayed and
                        # none of this round's, so the generation window
                        # matches the parent's frozen delta exactly.
                        freeze_delta(since)
                    delta = delta_frozen
                    for anchor in anchors:
                        relation = dependency.premise_atoms[anchor].relation
                        if encoded:
                            chunk = {
                                row_id
                                for row_id in delta.get(relation, ())
                                if row_id % worker_count == worker_id
                            }
                            if chunk:
                                out.extend(
                                    dependency.anchor_matches_encoded(
                                        view, anchor, chunk
                                    )
                                )
                        else:
                            chunk = {
                                fact
                                for fact in delta
                                if fact.relation == relation
                                and hash(fact) % worker_count == worker_id
                            }
                            if chunk:
                                out.extend(
                                    dependency.anchor_matches(
                                        view, anchor, chunk
                                    )
                                )
                if traced:
                    span = {
                        "id": 0,
                        "parent": None,
                        "name": "enumerate.worker",
                        "start": begin,
                        "end": time.perf_counter(),
                        "worker": f"fork-{worker_id}",
                        "attrs": {"dependency": dep_index, "matches": len(out)},
                    }
                    conn.send(("ok", out, {"spans": [span]}))
                else:
                    conn.send(("ok", out))
            except Exception as exc:  # report, keep serving
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ProcessSharder(MatchSharder):
    """Shards enumeration across forked replica processes.

    Forking at ``begin_run`` makes replica setup O(1) (copy-on-write
    pages), and replaying enforcement events keeps per-round traffic at
    O(|new facts|) down and O(|matches|) up — the joins themselves, the
    expensive part, run with real CPU parallelism.  Any worker failure
    degrades the rest of the run to serial enumeration; results are
    unaffected because sharding only changes who finds a match.
    """

    mode = "process"

    def __init__(self, workers: int) -> None:
        self.workers = max(2, int(workers))
        self._connections: List = []
        self._processes: List = []
        self._pending: List[tuple] = []
        self._broken = False

    @property
    def wants_replica_events(self) -> bool:
        return not self._broken

    def describe(self) -> str:
        if self._broken:
            # The rest of the run enumerated serially — don't let the
            # result claim a fan-out that never happened.
            return f"serial (degraded from process:{self.workers})"
        return super().describe()

    # -- lifecycle ---------------------------------------------------------

    def begin_run(self, working, compiled: Sequence) -> None:
        super().begin_run(working, compiled)
        self._pending = []
        self._broken = False
        self._connections = []
        self._processes = []
        # Warm anchored plans and their hash indexes in the parent:
        # forked replicas inherit them copy-on-write instead of each
        # rebuilding the same indexes the serial chase builds once.
        # Over the columnar kernel warm-up also interns every literal
        # the dependencies mention, so the term-pool snapshot the fork
        # ships is complete for almost every run — the mark records
        # where post-fork growth (shipped as "pool" events) begins.
        for dependency in compiled:
            dependency.warm_enumeration_plans(working)
        self._pool_mark = len(working.pool) if self._encoded else 0
        context = multiprocessing.get_context("fork")
        traced = self._recorder.enabled
        try:
            for worker_id in range(self.workers):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_replica_worker,
                    args=(
                        child_end, worker_id, self.workers, working, compiled,
                        traced,
                    ),
                    daemon=True,
                    name=f"chase-replica-{worker_id}",
                )
                process.start()
                child_end.close()
                self._connections.append(parent_end)
                self._processes.append(process)
        except OSError:
            self._teardown()
            self._broken = True  # degrade: serial enumeration, same results

    def end_run(self) -> None:
        self._teardown()
        self._pending = []

    def close(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        for conn in self._connections:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        self._connections = []
        self._processes = []

    def _degrade(self) -> None:
        self._teardown()
        self._broken = True

    # -- enforce-phase events ----------------------------------------------

    def record_generation(self) -> None:
        if not self._broken:
            self._pending.append(("bump",))

    def record_new_facts(self, facts: Sequence[Atom]) -> None:
        if not self._broken and facts:
            self._pending.append(("facts", list(facts)))

    def record_null_map(self, resolution: Dict) -> None:
        if not self._broken and resolution:
            self._pending.append(("map", dict(resolution)))

    def _drain_events(self) -> List[tuple]:
        """The queued replica events, prefixed with any post-fork term
        pool growth (new codes must exist replica-side before the facts
        or maps that mention them replay)."""
        events = self._pending
        self._pending = []
        if self._encoded:
            pool = self._working.pool
            if len(pool) > self._pool_mark:
                events.insert(
                    0,
                    ("pool", self._pool_mark,
                     pool.entries_since(self._pool_mark)),
                )
                self._pool_mark = len(pool)
        return events

    # -- per round ---------------------------------------------------------

    def begin_round(self, delta, since: Optional[int]) -> None:
        super().begin_round(delta, since)
        if (
            self._broken
            or not self._connections
            or delta is None
            or since is None
            or _delta_size(delta) < MIN_SHARD_FACTS
        ):
            return
        # Tell the workers to freeze the round's delta before any of
        # this round's enforcement events reach them — a dependency
        # handled serially in the parent (tiny or atom-less premise)
        # may enforce facts before the first sharded enumeration, and
        # those belong to the *next* round's delta.
        try:
            events = self._drain_events()
            if events:
                for conn in self._connections:
                    conn.send(("events", events))
            for conn in self._connections:
                conn.send(("round", since))
        except (BrokenPipeError, OSError):
            self._degrade()

    # -- enumeration -------------------------------------------------------

    def enumerate_matches(self, index: int):
        if self._broken or not self._connections:
            return MatchSharder.enumerate_matches(self, index)
        compiled = self._compiled[index]
        atoms = compiled.premise_atoms
        if not atoms:
            return MatchSharder.enumerate_matches(self, index)
        if self._delta is None:
            if len(self._working) < MIN_SHARD_FACTS:
                return MatchSharder.enumerate_matches(self, index)
            spec = ("full", self._full_anchor(index))
        else:
            if (
                _delta_size(self._delta) < MIN_SHARD_FACTS
                or self._since is None
            ):
                return MatchSharder.enumerate_matches(self, index)
            if self._encoded:
                relations = set(self._delta)
            else:
                relations = {fact.relation for fact in self._delta}
            anchors = compiled.anchor_indices(relations)
            if not anchors:
                return []
            spec = ("delta", self._since, anchors)
        try:
            events = self._drain_events()
            if events:
                for conn in self._connections:
                    conn.send(("events", events))
            for conn in self._connections:
                conn.send(("enum", index, spec))
            shards: List[list] = []
            rec = self._recorder
            # Replies are collected in connection order — worker spans
            # merge into the parent trace deterministically.
            for conn in self._connections:
                reply = conn.recv()
                status, payload = reply[0], reply[1]
                if status != "ok":
                    raise ChaseError(
                        f"parallel chase worker failed during enumeration: "
                        f"{payload}"
                    )
                shards.append(payload)
                if len(reply) > 2 and rec.enabled:
                    rec.tracer.merge_records(reply[2].get("spans", ()))
        except (BrokenPipeError, EOFError, OSError):
            # A worker died: replicas are unrecoverable for this run, so
            # finish with serial enumeration (identical results).
            self._degrade()
            return MatchSharder.enumerate_matches(self, index)
        if spec[0] == "full":
            # Chunks of one anchor partition the anchor facts, and a full
            # plan yields each binding exactly once — no dedup needed.
            return [match for shard in shards for match in shard]
        if self._encoded:
            return _dedup_merge_rows(shards)
        return _dedup_merge(shards)
