"""Deterministic racing of independent disjunctive-search branches.

The greedy ded sweep (:mod:`repro.chase.ded`) tries derived standard
scenarios one after another; the scenarios are completely independent —
each chases its own copy of the source — so they can *race* on a worker
pool.  Racing must not be observable in the results, so the contract
here is strict:

* **Deterministic winner.**  The winner is the successful branch with
  the smallest index in canonical selection order, never the branch
  that happened to finish first.  A racer therefore resolves every
  index below the best success before declaring it the winner, and the
  caller's result (winning branch, aggregated statistics, scenarios
  tried) is bit-identical to the serial sweep.
* **Early cancellation of losers.**  Once the winner is decided,
  branches with larger indices are not started (thread mode cancels
  their pool slots; process mode stops dispatching and terminates
  workers still chasing a loser).  Losers only ever touched private
  state — each branch chases its own working copy — so cancellation
  cannot leave partial state behind.
* **Deterministic errors.**  An unexpected exception in a branch is
  re-raised only if the serial sweep would have reached that branch
  (its index is below every success), and always the lowest such index.

Three tiers mirror :mod:`repro.chase.parallel`: :class:`SerialRacer`
(the reference loop), :class:`ThreadRacer` (portable, GIL-bound) and
:class:`ProcessRacer` (forked workers, the performance tier — branch
payloads are inherited copy-on-write and only indices travel down /
results travel up).  Worker failures degrade to the serial loop with
identical results.

Branches need no term-pool coordination under the columnar kernel:
racing threads intern into the shared (locked) global pool, while each
forked worker grows its private copy-on-write pool — the columnar
instances inside its results pickle as portable decoded rows and
re-intern against the parent's pool on arrival, so codes never cross a
process boundary.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ChaseError
from repro.chase.parallel import parse_parallelism

__all__ = [
    "BranchOutcome",
    "RaceResult",
    "SerialRacer",
    "ThreadRacer",
    "ProcessRacer",
    "create_racer",
]


@dataclass
class BranchOutcome:
    """One branch's run: its result, wall time and executing worker.

    ``error`` is the branch's exception when it crashed — the exception
    *object* when it could travel to the parent (threads always, forked
    workers when picklable), else its rendered text.  Keeping the
    object lets :func:`_settle` re-raise exactly what the serial sweep
    would have raised.
    """

    index: int
    result: Any = None
    seconds: float = 0.0
    worker: str = "serial"
    error: Optional[object] = None


@dataclass
class RaceResult:
    """What a race resolved.

    ``winner`` is the smallest successful index (None when every branch
    failed); ``outcomes`` holds every *resolved* branch — always all
    indices up to and including the winner, and all of them when there
    is no winner.  Branches past the winner may appear (they were
    already running when the winner was decided) but carry no meaning
    for the serial-equivalent result.
    """

    winner: Optional[int] = None
    outcomes: Dict[int, BranchOutcome] = field(default_factory=dict)

    @property
    def tried(self) -> int:
        """How many branches the equivalent serial sweep would have run."""
        if self.winner is not None:
            return self.winner + 1
        return len(self.outcomes)

    def ordered(self) -> List[BranchOutcome]:
        """Outcomes the serial sweep would have seen, in sweep order."""
        stop = self.winner + 1 if self.winner is not None else len(self.outcomes)
        return [self.outcomes[index] for index in range(stop)]


def _settle(
    outcomes: Dict[int, BranchOutcome], successes: List[int], count: int
) -> Optional[int]:
    """Apply the deterministic winner/error rule to resolved outcomes.

    Raises the lowest-index error that the serial sweep would have hit
    (i.e. one below every success); otherwise returns the lowest
    successful index, or None.
    """
    winner = min(successes) if successes else None
    for index in range(winner if winner is not None else count):
        outcome = outcomes.get(index)
        if outcome is not None and outcome.error is not None:
            if isinstance(outcome.error, BaseException):
                raise outcome.error  # exactly what serial would raise
            raise ChaseError(
                f"branch {index} failed during the disjunctive race: "
                f"{outcome.error}"
            )
    return winner


class SerialRacer:
    """The reference: run branches in order, stop at the first success."""

    mode = "serial"
    workers = 1

    def describe(self) -> str:
        if self.workers <= 1:
            return self.mode
        return f"{self.mode}:{self.workers}"

    def race(
        self,
        count: int,
        run: Callable[[int], Any],
        success: Callable[[Any], bool],
    ) -> RaceResult:
        race = RaceResult()
        for index in range(count):
            start = time.perf_counter()
            result = run(index)
            race.outcomes[index] = BranchOutcome(
                index=index,
                result=result,
                seconds=time.perf_counter() - start,
                worker="serial",
            )
            if success(result):
                race.winner = index
                break
        return race


class ThreadRacer(SerialRacer):
    """Race branches across a thread pool.

    Python's GIL caps the speedup for pure-Python chases — this tier
    exists as the portable fallback and the determinism cross-check;
    :class:`ProcessRacer` is the performance tier.  Pending branches
    beyond the winner bound are cancelled before they start.
    """

    mode = "thread"

    def __init__(self, workers: int) -> None:
        self.workers = max(2, int(workers))

    @staticmethod
    def _timed(run: Callable[[int], Any], index: int) -> BranchOutcome:
        start = time.perf_counter()
        worker = threading.current_thread().name
        try:
            result = run(index)
            return BranchOutcome(
                index=index,
                result=result,
                seconds=time.perf_counter() - start,
                worker=worker,
            )
        except Exception as exc:
            return BranchOutcome(
                index=index,
                seconds=time.perf_counter() - start,
                worker=worker,
                error=exc,
            )

    def race(
        self,
        count: int,
        run: Callable[[int], Any],
        success: Callable[[Any], bool],
    ) -> RaceResult:
        outcomes: Dict[int, BranchOutcome] = {}
        successes: List[int] = []

        def decided() -> bool:
            # The race is over once the best success is confirmed: every
            # lower index has resolved, so nothing can displace it.
            if not successes:
                return False
            best = min(successes)
            return all(index in outcomes for index in range(best))

        pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="branch-race"
        )
        try:
            futures = {
                pool.submit(self._timed, run, index): index
                for index in range(count)
            }
            for future in as_completed(futures):
                try:
                    outcome = future.result()
                except CancelledError:
                    continue
                outcomes[outcome.index] = outcome
                if outcome.error is None and success(outcome.result):
                    successes.append(outcome.index)
                    bound = min(successes)
                    for pending, index in futures.items():
                        if index > bound:
                            pending.cancel()
                if decided():
                    # Don't wait out losers that were already running
                    # when the winner resolved — their results are
                    # meaningless and they only touch branch-private
                    # state; let them drain on the abandoned pool.
                    break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        race = RaceResult(outcomes=outcomes)
        race.winner = _settle(outcomes, successes, count)
        return race


# ---------------------------------------------------------------------------
# Forked branch workers
# ---------------------------------------------------------------------------


def _branch_worker(conn, worker_id: int, run: Callable[[int], Any]) -> None:
    """Loop of one forked branch worker.

    ``run`` (and everything it closes over — compiled plans, the source
    instance) is inherited copy-on-write; only branch indices travel
    down and pickled results travel up.
    """
    label = f"fork-{worker_id}"
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            index = message[1]
            start = time.perf_counter()
            try:
                result = run(index)
                conn.send(
                    ("ok", index, time.perf_counter() - start, label, result)
                )
            except Exception as exc:  # report, keep serving
                seconds = time.perf_counter() - start
                try:
                    # Ship the exception object so the parent re-raises
                    # the exact type the serial sweep would have seen.
                    conn.send(("err", index, seconds, label, exc))
                except Exception:  # unpicklable: fall back to its text
                    conn.send(
                        (
                            "err",
                            index,
                            seconds,
                            label,
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


class ProcessRacer(SerialRacer):
    """Race branches across forked worker processes.

    Workers are forked per race (copy-on-write payload, O(1) setup);
    the parent dispatches indices on demand, so no branch past the
    winner bound is ever started, and workers still chasing a loser
    when the winner resolves are terminated.  Any worker failure
    degrades the unresolved remainder to the in-process serial loop —
    results are unaffected, only the speedup is lost.
    """

    mode = "process"

    def __init__(self, workers: int) -> None:
        self.workers = max(2, int(workers))
        self._degraded = False

    def describe(self) -> str:
        if self._degraded:
            return f"serial (degraded from process:{self.workers})"
        return super().describe()

    def race(
        self,
        count: int,
        run: Callable[[int], Any],
        success: Callable[[Any], bool],
    ) -> RaceResult:
        context = multiprocessing.get_context("fork")
        connections: List = []
        processes: List = []
        try:
            for worker_id in range(min(self.workers, count)):
                parent_end, child_end = context.Pipe()
                process = context.Process(
                    target=_branch_worker,
                    args=(child_end, worker_id, run),
                    daemon=True,
                    name=f"branch-race-{worker_id}",
                )
                process.start()
                child_end.close()
                connections.append(parent_end)
                processes.append(process)
        except OSError:
            for conn in connections:
                conn.close()
            for process in processes:
                process.terminate()
                process.join(timeout=5)
            self._degraded = True
            return SerialRacer.race(self, count, run, success)

        outcomes: Dict[int, BranchOutcome] = {}
        successes: List[int] = []
        busy: Dict[Any, int] = {}
        idle: List = list(connections)
        next_index = 0

        def bound() -> int:
            return min(successes) if successes else count

        def dispatch() -> None:
            nonlocal next_index
            while idle and next_index < bound():
                conn = idle.pop()
                conn.send(("task", next_index))
                busy[conn] = next_index
                next_index += 1

        def decided() -> bool:
            if not successes:
                return False
            best = min(successes)
            return all(index in outcomes for index in range(best))

        broken = False
        try:
            dispatch()
            while busy and not decided():
                ready = multiprocessing.connection.wait(list(busy))
                for conn in ready:
                    index = busy.pop(conn)
                    try:
                        status, _idx, seconds, label, payload = conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-branch: resolve its branch (and
                        # any other stragglers) serially below.
                        broken = True
                        conn.close()
                        continue
                    if status == "ok":
                        outcomes[index] = BranchOutcome(
                            index=index,
                            result=payload,
                            seconds=seconds,
                            worker=label,
                        )
                        if success(payload):
                            successes.append(index)
                    else:
                        outcomes[index] = BranchOutcome(
                            index=index,
                            seconds=seconds,
                            worker=label,
                            error=payload,
                        )
                    idle.append(conn)
                dispatch()
        finally:
            # Idle workers stop politely; workers still chasing a loser
            # are cancelled hard — their state is process-private.
            for conn in connections:
                try:
                    if conn not in busy:
                        conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for process, conn in zip(processes, connections):
                if conn in busy and process.is_alive():
                    process.terminate()
                process.join(timeout=5)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5)
                try:
                    conn.close()
                except OSError:
                    pass

        if broken:
            # Resolve every branch the serial sweep needs that no worker
            # delivered, in sweep order, in-process.
            self._degraded = True
            for index in range(count):
                if index in outcomes:
                    if index in successes:
                        break
                    continue
                if successes and index > min(successes):
                    break
                start = time.perf_counter()
                result = run(index)
                outcomes[index] = BranchOutcome(
                    index=index,
                    result=result,
                    seconds=time.perf_counter() - start,
                    worker="serial",
                )
                if success(result):
                    successes.append(index)
                    break

        race = RaceResult(outcomes=outcomes)
        race.winner = _settle(outcomes, successes, count)
        return race


def create_racer(spec) -> SerialRacer:
    """Build the racer a parallelism spec asks for.

    Same degradation ladder as :func:`repro.chase.parallel.create_sharder`:
    process mode needs ``fork`` and a non-daemonic caller, else threads.
    """
    mode, workers = parse_parallelism(spec)
    if mode == "serial":
        return SerialRacer()
    if mode == "process":
        can_fork = "fork" in multiprocessing.get_all_start_methods()
        if can_fork and not multiprocessing.current_process().daemon:
            return ProcessRacer(workers)
        return ThreadRacer(workers)
    return ThreadRacer(workers)
