"""The full disjunctive chase: universal model sets.

Ground truth (and worst case) for ded scenarios.  Deutsch, Nash and
Remmel ("The chase revisited", the paper's [3]) show that for deds the
right notion of result is a *universal model set* — a set of instances
such that every model of the scenario is reachable homomorphically from
one of them — and that such sets can be exponential in the size of the
source instance.  The paper uses this to motivate the greedy strategy;
we implement the exact chase too, both as a correctness oracle for the
greedy engine and to reproduce the exponential blow-up experiment (E3).

The algorithm is a chase *tree*: standard dependencies are chased to
quiescence in place; when a ded has an unsatisfied premise match the
current instance branches, one child per applicable disjunct.  Leaves
are either successful (no violations anywhere) or failed (hard egd
failure, denial, or a ded firing with no applicable disjunct).

Exploring the tree is embarrassingly parallel — sibling subtrees never
share state — but committing it is not: leaves must be counted, models
collected and the shared null factory advanced in DFS order or the
result changes.  ``ChaseConfig.branch_parallelism`` therefore runs the
tree **speculatively**: worker threads prefetch the processing of
pending nodes (chase to quiescence, violation scan, child expansion)
using a private null factory snapshotted at push time, while the driver
still commits nodes in exact DFS order.  When a prefetched node's
snapshot turns out stale (an earlier subtree invented nulls first), the
committed outcome's fresh nulls are uniformly *shifted* to the ids the
serial run would have used — valid because every ordering the chase
relies on (enforcement order, union-find orientation, the canonical
violation choice) compares null ids numerically, so it is equivariant
under a uniform shift.  Results are bit-identical to the serial tree,
including truncation and ``first_only`` behaviour; speculative work past
a stop is discarded, and it only ever touched node-private copies.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chase.engine import (
    ChaseConfig,
    StandardChase,
    _binding_order,
    _ground_check,
    _resolve,
)
from repro.chase.parallel import parse_parallelism
from repro.obs.recorder import resolve_recorder
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import Dependency, Disjunct
from repro.logic.homomorphism import exists_homomorphism
from repro.logic.terms import Null, NullFactory, Term, Variable
from repro.relational.instance import Instance
from repro.relational.query import evaluate_iter, exists

__all__ = ["DisjunctiveChase", "DisjunctiveResult", "disjunctive_chase"]


@dataclass
class DisjunctiveResult:
    """Outcome of a disjunctive chase run.

    ``models`` is the computed universal model set (target instances of
    successful leaves, optionally minimized); ``leaves`` counts all
    terminal nodes, ``failures`` the failed ones; ``branchings`` counts
    the internal branching nodes — the direct measure of the exponential
    behaviour the paper warns about.
    """

    models: List[Instance] = field(default_factory=list)
    leaves: int = 0
    failures: int = 0
    branchings: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0
    branch_racing: str = "serial"
    trace: Optional[Dict[str, object]] = None
    """Flight-recorder payload when the run owned its recorder (tracing
    enabled on the config, no external recorder passed)."""

    @property
    def satisfiable(self) -> bool:
        return bool(self.models)

    def first(self) -> Optional[Instance]:
        return self.models[0] if self.models else None


@dataclass
class _NodeOutcome:
    """Everything processing one tree node produced.

    ``nulls`` is how many fresh ids the node consumed; the driver uses
    it to advance the shared factory at commit time (and to shift the
    outcome when a speculative snapshot went stale).
    """

    kind: str  # "failed" | "model" | "overdepth" | "deadend" | "branch"
    nulls: int = 0
    model: Optional[Instance] = None
    children: Optional[List[Instance]] = None


class _NodeTask:
    """One pending tree node plus its (possibly speculative) outcome."""

    __slots__ = ("working", "depth", "snapshot", "event", "outcome", "claimed")

    def __init__(self, working: Instance, depth: int, snapshot: int) -> None:
        self.working = working
        self.depth = depth
        self.snapshot = snapshot
        self.event = threading.Event()
        self.outcome: object = None
        self.claimed = False


class _Prefetcher:
    """Worker threads that speculatively process pending tree nodes.

    Pending nodes form a LIFO — the newest submission is the driver's
    next DFS pop, so workers always chase the frontier the driver is
    about to need.  The driver itself computes a node inline when no
    worker has claimed it yet, so the slowest path is never "everyone
    waits for one idle queue".  ``close`` discards unclaimed nodes
    (losers cancelled early) and joins the workers.
    """

    def __init__(self, process, workers: int) -> None:
        self._process = process
        self._cv = threading.Condition()
        self._pending: List[_NodeTask] = []
        self._stop = False
        self._threads = [
            threading.Thread(
                target=self._serve, name=f"ded-prefetch-{i}", daemon=True
            )
            for i in range(max(1, workers - 1))
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, working: Instance, depth: int, snapshot: int) -> _NodeTask:
        task = _NodeTask(working, depth, snapshot)
        with self._cv:
            self._pending.append(task)
            self._cv.notify()
        return task

    def _serve(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._stop:
                    self._cv.wait()
                if self._stop:
                    return
                task = self._pending.pop()
                task.claimed = True
            self._finish(task)

    def _finish(self, task: _NodeTask) -> None:
        try:
            task.outcome = self._process(task.working, task.depth, task.snapshot)
        except BaseException as exc:  # re-raised at the driver's commit
            task.outcome = exc
        task.event.set()

    def resolve(self, task: _NodeTask) -> _NodeOutcome:
        inline = False
        with self._cv:
            if not task.claimed:
                self._pending.remove(task)
                task.claimed = True
                inline = True
        if inline:
            self._finish(task)
        else:
            task.event.wait()
        if isinstance(task.outcome, BaseException):
            raise task.outcome
        return task.outcome  # type: ignore[return-value]

    def close(self) -> None:
        with self._cv:
            self._stop = True
            self._pending.clear()
            self._cv.notify_all()
        for thread in self._threads:
            thread.join(timeout=10)


def _shift_outcome(outcome: _NodeOutcome, snapshot: int, delta: int) -> None:
    """Rename the outcome's fresh nulls to the ids a serial run used.

    A speculative node started its private factory at ``snapshot`` but
    commits when the shared factory is ``delta`` ids further along; every
    null the node invented (id ≥ snapshot) shifts up uniformly.  The
    shift is order-preserving — among the fresh nulls and against every
    pre-existing null (all ids < snapshot) — so the renamed outcome is
    exactly what in-place processing would have produced.
    """
    for instance in (outcome.children or []) + (
        [outcome.model] if outcome.model is not None else []
    ):
        mapping = {
            null: Null(null.id + delta, null.hint)
            for null in instance.nulls()
            if null.id >= snapshot
        }
        if mapping:
            instance.apply_null_map(mapping)


class DisjunctiveChase:
    """Exhaustive (or first-solution) chase of a ded scenario."""

    def __init__(
        self,
        dependencies: Sequence[Dependency],
        source_relations: Iterable[str] = (),
        config: Optional[ChaseConfig] = None,
        max_leaves: int = 4096,
        max_branch_depth: int = 64,
    ) -> None:
        self.standard = [d for d in dependencies if not d.is_ded()]
        self.deds = [d for d in dependencies if d.is_ded()]
        self.source_relations = frozenset(source_relations)
        base = config or ChaseConfig()
        # Per-node chases keep every tunable of the caller's config
        # except the parallel knobs: tree nodes are small and many, so
        # the parallel unit is the node (speculative prefetch), never
        # shards or races *inside* one node's chase.
        # (Tracing too: tree nodes are chased by worker threads whose
        # per-node recorders could not merge deterministically — the
        # search is instrumented at the driver level instead.)
        self.config = dataclasses.replace(
            base,
            keep_working=True,
            parallelism="serial",
            branch_parallelism="serial",
            trace=None,
        )
        self.trace_config = base.trace
        self.branch_parallelism = base.branch_parallelism
        self.max_leaves = max_leaves
        self.max_branch_depth = max_branch_depth
        self._local = threading.local()
        self._engine = self._node_engine()

    # -- public API ------------------------------------------------------------

    def run(
        self,
        source_instance: Instance,
        first_only: bool = False,
        minimize: bool = False,
        recorder=None,
    ) -> DisjunctiveResult:
        """Compute the universal model set (or just the first model).

        ``minimize`` drops models into which another model maps
        homomorphically, yielding a ⊆-minimal universal model set.
        """
        start = time.perf_counter()
        rec = resolve_recorder(recorder, self.trace_config)
        owned_rec = recorder is None and rec.enabled
        result = DisjunctiveResult()
        factory = NullFactory()
        root = Instance()
        for fact in source_instance:
            root.add(fact)
        factory.advance_past(root.nulls())
        _mode, workers = parse_parallelism(self.branch_parallelism)
        # The oblivious policy's Bloom spill digests absolute null ids,
        # which a speculative shift would perturb — stay serial there.
        with rec.span("chase.disjunctive", racing=self.branch_parallelism):
            if workers > 1 and self.config.policy != "oblivious":
                result.branch_racing = f"thread:{workers}"
                self._explore_speculative(
                    root, factory, result, first_only, workers
                )
            else:
                self._explore_serial(root, factory, result, first_only)
            if minimize:
                result.models = _minimize_models(result.models)
        if rec.enabled:
            rec.count("disjunctive.leaves", result.leaves)
            rec.count("disjunctive.failures", result.failures)
            rec.count("disjunctive.branchings", result.branchings)
            rec.count("disjunctive.models", len(result.models))
        result.elapsed_seconds = time.perf_counter() - start
        if owned_rec:
            result.trace = rec.to_payload()
        return result

    # -- tree drivers ------------------------------------------------------------

    def _explore_serial(
        self,
        root: Instance,
        factory: NullFactory,
        result: DisjunctiveResult,
        first_only: bool,
    ) -> None:
        stack: List[Tuple[Instance, int]] = [(root, 0)]
        while stack:
            if result.leaves >= self.max_leaves:
                result.truncated = True
                break
            working, depth = stack.pop()
            outcome = self._process_node(working, depth, factory.next_id)
            factory.advance_to(factory.next_id + outcome.nulls)
            if self._commit(outcome, result, first_only):
                break
            if outcome.kind == "branch":
                for child in reversed(outcome.children):
                    stack.append((child, depth + 1))

    def _explore_speculative(
        self,
        root: Instance,
        factory: NullFactory,
        result: DisjunctiveResult,
        first_only: bool,
        workers: int,
    ) -> None:
        prefetcher = _Prefetcher(self._process_node, workers)
        try:
            stack: List[_NodeTask] = [
                prefetcher.submit(root, 0, factory.next_id)
            ]
            while stack:
                if result.leaves >= self.max_leaves:
                    result.truncated = True
                    break
                task = stack.pop()
                outcome = prefetcher.resolve(task)
                delta = factory.next_id - task.snapshot
                if delta:
                    _shift_outcome(outcome, task.snapshot, delta)
                factory.advance_to(factory.next_id + outcome.nulls)
                if self._commit(outcome, result, first_only):
                    break
                if outcome.kind == "branch":
                    # Reversed submission keeps the prefetchers' LIFO
                    # aligned with DFS: child 0 is submitted last, so it
                    # is both the driver's next pop and the workers'
                    # next claim.
                    for child in reversed(outcome.children):
                        stack.append(
                            prefetcher.submit(child, task.depth + 1,
                                              factory.next_id)
                        )
        finally:
            prefetcher.close()

    def _commit(
        self,
        outcome: _NodeOutcome,
        result: DisjunctiveResult,
        first_only: bool,
    ) -> bool:
        """Fold one node outcome into the result; True means stop."""
        if outcome.kind == "failed" or outcome.kind == "deadend":
            result.leaves += 1
            result.failures += 1
        elif outcome.kind == "overdepth":
            result.truncated = True
            result.leaves += 1
            result.failures += 1
        elif outcome.kind == "model":
            result.leaves += 1
            result.models.append(outcome.model)
            if first_only:
                return True
        else:  # branch
            result.branchings += 1
        return False

    # -- node processing ----------------------------------------------------------

    def _node_engine(self) -> StandardChase:
        """One chase engine (with private compiled plans) per thread."""
        engine = getattr(self._local, "engine", None)
        if engine is None:
            engine = StandardChase(
                self.standard, self.source_relations, self.config
            )
            self._local.engine = engine
        return engine

    def _process_node(
        self, working: Instance, depth: int, next_id: int
    ) -> _NodeOutcome:
        """Chase one node to quiescence and expand it — no shared state.

        All fresh nulls come from a private factory starting at
        ``next_id``; the caller reconciles the shared factory (and
        shifts the fresh ids if the snapshot was stale).
        """
        factory = NullFactory(next_id)
        chased = self._node_engine().run(working, null_factory=factory)
        if not chased.ok:
            return _NodeOutcome("failed", factory.next_id - next_id)
        chased_working = chased.working
        assert chased_working is not None
        violation = self._find_ded_violation(chased_working)
        if violation is None:
            return _NodeOutcome(
                "model",
                factory.next_id - next_id,
                model=self._extract_target(chased_working),
            )
        if depth >= self.max_branch_depth:
            return _NodeOutcome("overdepth", factory.next_id - next_id)
        dependency, binding = violation
        children = self._branch(dependency, binding, chased_working, factory)
        if not children:
            return _NodeOutcome("deadend", factory.next_id - next_id)
        return _NodeOutcome(
            "branch", factory.next_id - next_id, children=children
        )

    # -- internals ----------------------------------------------------------------

    def _extract_target(self, working: Instance) -> Instance:
        target = Instance()
        for fact in working:
            if fact.relation not in self.source_relations:
                target.add(fact)
        return target

    def _find_ded_violation(
        self, working: Instance
    ) -> Optional[Tuple[Dependency, Dict[Variable, Term]]]:
        # Deds are scanned lazily in order, but *within* the first
        # violated ded the canonically-least violating match is chosen
        # (not whichever hash order surfaced first): branching must not
        # depend on set-iteration order, or two runs of the same
        # scenario — serial vs. speculative, or across interpreter hash
        # seeds — could explore different trees.
        for dependency in self.deds:
            violations = [
                binding
                for binding in evaluate_iter(dependency.premise, working)
                if not any(
                    _disjunct_satisfied(disjunct, binding, working)
                    for disjunct in dependency.disjuncts
                )
            ]
            if violations:
                return dependency, min(violations, key=_binding_order)
        return None

    def _branch(
        self,
        dependency: Dependency,
        binding: Dict[Variable, Term],
        working: Instance,
        factory: NullFactory,
    ) -> List[Instance]:
        children: List[Instance] = []
        for disjunct in dependency.disjuncts:
            child = _apply_disjunct(disjunct, binding, working, factory)
            if child is not None:
                children.append(child)
        return children


def _disjunct_satisfied(
    disjunct: Disjunct, binding: Dict[Variable, Term], working: Instance
) -> bool:
    for equality in disjunct.equalities:
        if _resolve(equality.left, binding) != _resolve(equality.right, binding):
            return False
    for comparison in disjunct.comparisons:
        if not _ground_check(comparison, binding):
            return False
    if disjunct.atoms:
        return exists(Conjunction(atoms=disjunct.atoms), working, seed=binding)
    return True


def _apply_disjunct(
    disjunct: Disjunct,
    binding: Dict[Variable, Term],
    working: Instance,
    factory: NullFactory,
) -> Optional[Instance]:
    """A copy of ``working`` with the disjunct enforced, or None if impossible."""
    for comparison in disjunct.comparisons:
        if not _ground_check(comparison, binding):
            return None
    # Equalities first: a constant/constant clash kills the branch.
    null_map: Dict[Null, Term] = {}

    def find(term: Term) -> Term:
        while isinstance(term, Null) and term in null_map:
            term = null_map[term]
        return term

    for equality in disjunct.equalities:
        left = find(_resolve(equality.left, binding))
        right = find(_resolve(equality.right, binding))
        if left == right:
            continue
        if isinstance(left, Null):
            null_map[left] = right
        elif isinstance(right, Null):
            null_map[right] = left
        else:
            return None
    child = working.copy()
    if null_map:
        child.apply_null_map({n: find(n) for n in null_map})
    if disjunct.atoms:
        extended = dict(binding)
        for atom in disjunct.atoms:
            for variable in atom.variables():
                if variable not in extended:
                    extended[variable] = factory.fresh(hint=variable.name)
        for atom in disjunct.atoms:
            child.add(
                Atom(atom.relation, tuple(_resolve(t, extended) for t in atom.terms))
            )
    return child


def _minimize_models(models: List[Instance]) -> List[Instance]:
    """Drop models that another model maps into homomorphically."""
    kept: List[Instance] = []
    atom_lists = [list(m) for m in models]
    for i, model in enumerate(models):
        redundant = False
        for j, other in enumerate(models):
            if i == j:
                continue
            if exists_homomorphism(atom_lists[j], atom_lists[i]):
                # `other` maps into `model`: model is redundant *unless*
                # they map into each other and other is already kept/later.
                if exists_homomorphism(atom_lists[i], atom_lists[j]):
                    if j < i:
                        redundant = True
                        break
                else:
                    redundant = True
                    break
        if not redundant:
            kept.append(model)
    return kept


def disjunctive_chase(
    dependencies: Sequence[Dependency],
    source_instance: Instance,
    source_relations: Iterable[str] = (),
    config: Optional[ChaseConfig] = None,
    first_only: bool = False,
    minimize: bool = False,
    max_leaves: int = 4096,
) -> DisjunctiveResult:
    """One-shot convenience wrapper around :class:`DisjunctiveChase`."""
    engine = DisjunctiveChase(
        dependencies, source_relations, config, max_leaves=max_leaves
    )
    return engine.run(source_instance, first_only=first_only, minimize=minimize)
