"""The full disjunctive chase: universal model sets.

Ground truth (and worst case) for ded scenarios.  Deutsch, Nash and
Remmel ("The chase revisited", the paper's [3]) show that for deds the
right notion of result is a *universal model set* — a set of instances
such that every model of the scenario is reachable homomorphically from
one of them — and that such sets can be exponential in the size of the
source instance.  The paper uses this to motivate the greedy strategy;
we implement the exact chase too, both as a correctness oracle for the
greedy engine and to reproduce the exponential blow-up experiment (E3).

The algorithm is a chase *tree*: standard dependencies are chased to
quiescence in place; when a ded has an unsatisfied premise match the
current instance branches, one child per applicable disjunct.  Leaves
are either successful (no violations anywhere) or failed (hard egd
failure, denial, or a ded firing with no applicable disjunct).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chase.engine import ChaseConfig, StandardChase, _ground_check, _resolve
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import Dependency, Disjunct
from repro.logic.homomorphism import exists_homomorphism
from repro.logic.terms import Null, NullFactory, Term, Variable
from repro.relational.instance import Instance
from repro.relational.query import evaluate_iter, exists

__all__ = ["DisjunctiveChase", "DisjunctiveResult", "disjunctive_chase"]


@dataclass
class DisjunctiveResult:
    """Outcome of a disjunctive chase run.

    ``models`` is the computed universal model set (target instances of
    successful leaves, optionally minimized); ``leaves`` counts all
    terminal nodes, ``failures`` the failed ones; ``branchings`` counts
    the internal branching nodes — the direct measure of the exponential
    behaviour the paper warns about.
    """

    models: List[Instance] = field(default_factory=list)
    leaves: int = 0
    failures: int = 0
    branchings: int = 0
    truncated: bool = False
    elapsed_seconds: float = 0.0

    @property
    def satisfiable(self) -> bool:
        return bool(self.models)

    def first(self) -> Optional[Instance]:
        return self.models[0] if self.models else None


class DisjunctiveChase:
    """Exhaustive (or first-solution) chase of a ded scenario."""

    def __init__(
        self,
        dependencies: Sequence[Dependency],
        source_relations: Iterable[str] = (),
        config: Optional[ChaseConfig] = None,
        max_leaves: int = 4096,
        max_branch_depth: int = 64,
    ) -> None:
        self.standard = [d for d in dependencies if not d.is_ded()]
        self.deds = [d for d in dependencies if d.is_ded()]
        self.source_relations = frozenset(source_relations)
        base = config or ChaseConfig()
        self.config = ChaseConfig(
            max_rounds=base.max_rounds,
            max_facts=base.max_facts,
            policy=base.policy,
            keep_working=True,
        )
        self.max_leaves = max_leaves
        self.max_branch_depth = max_branch_depth
        self._engine = StandardChase(self.standard, self.source_relations, self.config)

    # -- public API ------------------------------------------------------------

    def run(
        self,
        source_instance: Instance,
        first_only: bool = False,
        minimize: bool = False,
    ) -> DisjunctiveResult:
        """Compute the universal model set (or just the first model).

        ``minimize`` drops models into which another model maps
        homomorphically, yielding a ⊆-minimal universal model set.
        """
        start = time.perf_counter()
        result = DisjunctiveResult()
        factory = NullFactory()
        root = Instance()
        for fact in source_instance:
            root.add(fact)
        factory.advance_past(root.nulls())
        stack: List[Tuple[Instance, int]] = [(root, 0)]
        while stack:
            if result.leaves >= self.max_leaves:
                result.truncated = True
                break
            working, depth = stack.pop()
            chased = self._engine.run(working, null_factory=factory)
            if not chased.ok:
                result.leaves += 1
                result.failures += 1
                continue
            working = chased.working
            assert working is not None
            violation = self._find_ded_violation(working)
            if violation is None:
                result.leaves += 1
                result.models.append(self._extract_target(working))
                if first_only:
                    break
                continue
            if depth >= self.max_branch_depth:
                result.truncated = True
                result.leaves += 1
                result.failures += 1
                continue
            dependency, binding = violation
            children = self._branch(dependency, binding, working, factory)
            if not children:
                result.leaves += 1
                result.failures += 1
                continue
            result.branchings += 1
            for child in reversed(children):
                stack.append((child, depth + 1))
        if minimize:
            result.models = _minimize_models(result.models)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # -- internals ----------------------------------------------------------------

    def _extract_target(self, working: Instance) -> Instance:
        target = Instance()
        for fact in working:
            if fact.relation not in self.source_relations:
                target.add(fact)
        return target

    def _find_ded_violation(
        self, working: Instance
    ) -> Optional[Tuple[Dependency, Dict[Variable, Term]]]:
        # Lazy scan: the generator pipeline stops at the first premise
        # match with no satisfied disjunct instead of materializing every
        # match of every ded at every tree node.
        for dependency in self.deds:
            for binding in evaluate_iter(dependency.premise, working):
                if not any(
                    _disjunct_satisfied(disjunct, binding, working)
                    for disjunct in dependency.disjuncts
                ):
                    return dependency, binding
        return None

    def _branch(
        self,
        dependency: Dependency,
        binding: Dict[Variable, Term],
        working: Instance,
        factory: NullFactory,
    ) -> List[Instance]:
        children: List[Instance] = []
        for disjunct in dependency.disjuncts:
            child = _apply_disjunct(disjunct, binding, working, factory)
            if child is not None:
                children.append(child)
        return children


def _disjunct_satisfied(
    disjunct: Disjunct, binding: Dict[Variable, Term], working: Instance
) -> bool:
    for equality in disjunct.equalities:
        if _resolve(equality.left, binding) != _resolve(equality.right, binding):
            return False
    for comparison in disjunct.comparisons:
        if not _ground_check(comparison, binding):
            return False
    if disjunct.atoms:
        return exists(Conjunction(atoms=disjunct.atoms), working, seed=binding)
    return True


def _apply_disjunct(
    disjunct: Disjunct,
    binding: Dict[Variable, Term],
    working: Instance,
    factory: NullFactory,
) -> Optional[Instance]:
    """A copy of ``working`` with the disjunct enforced, or None if impossible."""
    for comparison in disjunct.comparisons:
        if not _ground_check(comparison, binding):
            return None
    # Equalities first: a constant/constant clash kills the branch.
    null_map: Dict[Null, Term] = {}

    def find(term: Term) -> Term:
        while isinstance(term, Null) and term in null_map:
            term = null_map[term]
        return term

    for equality in disjunct.equalities:
        left = find(_resolve(equality.left, binding))
        right = find(_resolve(equality.right, binding))
        if left == right:
            continue
        if isinstance(left, Null):
            null_map[left] = right
        elif isinstance(right, Null):
            null_map[right] = left
        else:
            return None
    child = working.copy()
    if null_map:
        child.apply_null_map({n: find(n) for n in null_map})
    if disjunct.atoms:
        extended = dict(binding)
        for atom in disjunct.atoms:
            for variable in atom.variables():
                if variable not in extended:
                    extended[variable] = factory.fresh(hint=variable.name)
        for atom in disjunct.atoms:
            child.add(
                Atom(atom.relation, tuple(_resolve(t, extended) for t in atom.terms))
            )
    return child


def _minimize_models(models: List[Instance]) -> List[Instance]:
    """Drop models that another model maps into homomorphically."""
    kept: List[Instance] = []
    atom_lists = [list(m) for m in models]
    for i, model in enumerate(models):
        redundant = False
        for j, other in enumerate(models):
            if i == j:
                continue
            if exists_homomorphism(atom_lists[j], atom_lists[i]):
                # `other` maps into `model`: model is redundant *unless*
                # they map into each other and other is already kept/later.
                if exists_homomorphism(atom_lists[i], atom_lists[j]):
                    if j < i:
                        redundant = True
                        break
                else:
                    redundant = True
                    break
        if not redundant:
            kept.append(model)
    return kept


def disjunctive_chase(
    dependencies: Sequence[Dependency],
    source_instance: Instance,
    source_relations: Iterable[str] = (),
    config: Optional[ChaseConfig] = None,
    first_only: bool = False,
    minimize: bool = False,
    max_leaves: int = 4096,
) -> DisjunctiveResult:
    """One-shot convenience wrapper around :class:`DisjunctiveChase`."""
    engine = DisjunctiveChase(
        dependencies, source_relations, config, max_leaves=max_leaves
    )
    return engine.run(source_instance, first_only=first_only, minimize=minimize)
