"""The greedy ded chase (Section 3, "Handling Complexity").

Chasing disjunctive embedded dependencies is fundamentally harder than
chasing tgds/egds: the right notion of result is a *universal model
set*, which may be exponentially large (Deutsch–Nash–Remmel, the
paper's [3]).  GROM's answer is a **greedy** strategy:

    "searching for solutions to a set of deds by running multiple
     standard scenarios made of tgds and egds derived from the given
     deds [...] that capture specific branches in the deds."

Concretely: for every ded with ``k`` disjuncts, selecting one branch
yields a standard dependency; a *selection* (one branch per ded) yields
a standard scenario, which the classical chase can run.  Any solution of
a derived scenario satisfies the original deds, so the strategy is sound
(but not complete — a solvable ded set can have all uniform-selection
scenarios fail).

Selections are enumerated in a cost-heuristic order — branches that only
equate values come before branches that invent facts, smaller branches
before larger ones — and the first scenario that chases to success wins.
The paper's Section 4 observation that "many of the generated scenarios
fail and new ones need to be executed" on intricate constraints is
directly observable through :attr:`ChaseResult.scenarios_tried`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.chase.compiled import compile_dependencies
from repro.chase.engine import ChaseConfig, StandardChase
from repro.chase.parallel import (
    create_sharder,
    effective_parallelism,
    parse_parallelism,
)
from repro.analysis.termination import TerminationReport
from repro.chase.race import ProcessRacer, create_racer
from repro.chase.result import ChaseResult, ChaseStats, ChaseStatus
from repro.obs.recorder import TraceConfig, resolve_recorder
from repro.logic.dependencies import Dependency, Disjunct
from repro.relational.instance import Instance

__all__ = ["GreedyDedChase", "branch_cost", "greedy_ded_chase"]


def branch_cost(disjunct: Disjunct) -> Tuple[int, int, int]:
    """Heuristic cost of enforcing a disjunct; lower chases first.

    Equality-only branches are cheapest (they merge values instead of
    inventing facts); then fewer atoms, then fewer equalities.  This is
    the "greedy" part: cheap branches tend to keep instances small and
    succeed fast, matching the paper's observation that the greedy chase
    is "often surprisingly quick in returning some solution".
    """
    return (1 if disjunct.atoms else 0, len(disjunct.atoms), len(disjunct.equalities))


@dataclass
class _DedInfo:
    dependency: Dependency
    branch_order: List[int]


def _branch_timing(
    index: int,
    selection: Tuple[int, ...],
    result: ChaseResult,
    seconds: float,
    worker: str,
) -> Dict[str, object]:
    """One derived scenario's entry in ``ChaseResult.branch_timings``."""
    return {
        "index": index,
        "selection": list(selection),
        "status": str(result.status),
        "seconds": seconds,
        "worker": worker,
    }


class GreedyDedChase:
    """Greedy branch-selection search over derived standard scenarios."""

    def __init__(
        self,
        dependencies: Sequence[Dependency],
        source_relations: Iterable[str] = (),
        config: Optional[ChaseConfig] = None,
        max_scenarios: int = 256,
        termination: Optional["TerminationReport"] = None,
    ) -> None:
        """``termination`` is the analyzer's verdict for the *whole* ded
        set (disjuncts union-edged), so it is sound for every derived
        scenario regardless of branch selection and is forwarded to each
        :class:`StandardChase` the sweep runs."""
        self.standard = [d for d in dependencies if not d.is_ded()]
        self.deds = [d for d in dependencies if d.is_ded()]
        self.source_relations = frozenset(source_relations)
        self.config = config or ChaseConfig()
        self.max_scenarios = max_scenarios
        self.termination = termination
        self._infos = [
            _DedInfo(
                dependency=ded,
                branch_order=sorted(
                    range(len(ded.disjuncts)),
                    key=lambda i: branch_cost(ded.disjuncts[i]),
                ),
            )
            for ded in self.deds
        ]
        # Every derived scenario shares one dependency list (standard part
        # followed by the whole deds); compile its plans once so the
        # selection sweep never re-plans a join between scenarios.
        self._compiled = compile_dependencies(
            self.standard + [info.dependency for info in self._infos]
        )

    # -- selection enumeration ----------------------------------------------

    def selections(self) -> Iterator[Tuple[int, ...]]:
        """Branch selections in heuristic order.

        The cartesian product of per-ded branch orders, enumerated so
        that globally cheaper selections come first: the sort key is the
        tuple of per-ded *ranks*, i.e. the first selection takes every
        ded's best branch, then single deviations, and so on.

        The enumeration is lazy up to the product construction;
        :attr:`max_scenarios` bounds how many the caller will consume.
        """
        if not self._infos:
            yield ()
            return
        ranked = [list(enumerate(info.branch_order)) for info in self._infos]
        # itertools.product of (rank, branch) pairs, sorted by total rank.
        product = itertools.product(*ranked)
        for combination in sorted(
            itertools.islice(product, self.max_scenarios * 4),
            key=lambda pairs: (sum(rank for rank, _ in pairs),
                               tuple(rank for rank, _ in pairs)),
        ):
            yield tuple(branch for _rank, branch in combination)

    def scenario_for(
        self, selection: Tuple[int, ...]
    ) -> Tuple[List[Dependency], Dict[int, int]]:
        """The dependency list and branch-choice map for a selection.

        The deds are kept whole (so the chase's satisfaction check sees
        every disjunct) and the choice map directs enforcement to the
        selected branch — the "standard scenario derived from the deds"
        of the paper.
        """
        dependencies = self.standard + [info.dependency for info in self._infos]
        offset = len(self.standard)
        choice = {
            offset + position: branch
            for position, branch in enumerate(selection)
        }
        return dependencies, choice

    # -- search ------------------------------------------------------------------

    def run(
        self,
        source_instance: Instance,
        target_instance: Optional[Instance] = None,
        recorder=None,
    ) -> ChaseResult:
        """Try derived scenarios until one chases to success.

        Returns the first successful result (annotated with the winning
        selection and the number of scenarios tried), or the FAILURE
        result of the last attempt when all scenarios fail or the budget
        is exhausted.

        When ``config.branch_parallelism`` asks for workers, the derived
        scenarios *race* on a worker pool (:mod:`repro.chase.race`): the
        winner is the lowest selection in canonical order that succeeds,
        so status, target, statistics and ``scenarios_tried`` are
        bit-identical to the serial sweep; losers past the winner are
        cancelled early.

        ``recorder`` follows the engine convention: an external recorder
        keeps the trace; otherwise one is built from ``config.trace``
        and its payload lands on ``ChaseResult.trace``.  Raced branches
        always record into their own recorder and ship the payload home
        on the branch result (over the racer's existing pickle channel);
        the parent folds the payloads in canonical selection order, so
        the merged trace is deterministic and structurally identical to
        the serial sweep's.
        """
        rec = resolve_recorder(recorder, self.config.trace)
        owned_rec = recorder is None and rec.enabled
        selections = list(
            itertools.islice(self.selections(), self.max_scenarios)
        )
        _mode, workers = parse_parallelism(self.config.branch_parallelism)
        with rec.span(
            "chase.search",
            selections=len(selections),
            racing=self.config.branch_parallelism,
        ):
            if workers > 1 and len(selections) > 1:
                result = self._run_raced(
                    selections, source_instance, target_instance, rec
                )
            else:
                result = self._run_serial(
                    selections, source_instance, target_instance, rec
                )
        result.trace = rec.to_payload() if owned_rec else None
        return result

    def _run_serial(
        self,
        selections: List[Tuple[int, ...]],
        source_instance: Instance,
        target_instance: Optional[Instance],
        rec,
    ) -> ChaseResult:
        start = time.perf_counter()
        aggregate = ChaseStats()
        last: Optional[ChaseResult] = None
        timings: List[Dict[str, object]] = []
        tried = 0
        # One sharder serves the whole selection sweep: every derived
        # scenario shares the compiled plans, so the worker fan-out is
        # configured once and re-armed per run (begin_run/end_run).
        sharder = create_sharder(self.config.parallelism)
        try:
            for selection in selections:
                tried += 1
                dependencies, choice = self.scenario_for(selection)
                engine = StandardChase(
                    dependencies,
                    self.source_relations,
                    self.config,
                    branch_choice=choice,
                    compiled=self._compiled,
                    sharder=sharder,
                    termination=self.termination,
                )
                step = time.perf_counter()
                result = engine.run(
                    source_instance, target_instance, recorder=rec
                )
                seconds = time.perf_counter() - step
                timings.append(
                    _branch_timing(tried - 1, selection, result, seconds, "serial")
                )
                rec.observe("race.branch_seconds", seconds)
                aggregate = aggregate.merge(result.stats)
                if result.ok:
                    result.stats = aggregate
                    result.stats.elapsed_seconds = time.perf_counter() - start
                    result.scenarios_tried = tried
                    result.branch_selection = {
                        info.dependency.describe(): branch
                        for info, branch in zip(self._infos, selection)
                    }
                    result.branch_timings = timings
                    return result
                last = result
            if last is None:  # no scenario budget?  run the standard part once
                engine = StandardChase(
                    self.standard,
                    self.source_relations,
                    self.config,
                    compiled=self._compiled[: len(self.standard)],
                    sharder=sharder,
                    termination=self.termination,
                )
                step = time.perf_counter()
                last = engine.run(
                    source_instance, target_instance, recorder=rec
                )
                timings.append(
                    _branch_timing(
                        0, (), last, time.perf_counter() - step, "serial"
                    )
                )
                tried = 1
        finally:
            sharder.close()
        return self._finish_failure(last, aggregate, tried, start, timings)

    def _run_raced(
        self,
        selections: List[Tuple[int, ...]],
        source_instance: Instance,
        target_instance: Optional[Instance],
        rec,
    ) -> ChaseResult:
        start = time.perf_counter()
        racer = create_racer(self.config.branch_parallelism)
        # Branches record into their own recorder (fork/thread-safe) and
        # ship the payload on the result; make sure the branch config asks
        # for one whenever this sweep is being traced at all (the trace
        # may have been handed down as an external recorder).
        branch_trace = self.config.trace
        if rec.enabled and (branch_trace is None or not branch_trace.enabled):
            branch_trace = TraceConfig(enabled=True)
        # Every raced branch chases under the shared CPU budget: its
        # intra-chase shards divide the per-branch share, and nested
        # racing is off (one level of fan-out is the whole budget).
        inner_config = replace(
            self.config,
            parallelism=effective_parallelism(
                self.config.parallelism, jobs=racer.workers
            ),
            branch_parallelism="serial",
            trace=branch_trace,
        )
        # Forked race workers inherit the sweep's compiled plans
        # copy-on-write; racing *threads* must not share mutable plan
        # caches, so each thread compiles its own set once and reuses it
        # across all the branches it chases.
        dependencies_template = self.standard + [
            info.dependency for info in self._infos
        ]
        shared_plans = isinstance(racer, ProcessRacer)
        local = threading.local()

        def compiled_for_worker():
            if shared_plans:
                return self._compiled
            plans = getattr(local, "compiled", None)
            if plans is None:
                plans = compile_dependencies(dependencies_template)
                local.compiled = plans
            return plans

        def run_selection(index: int) -> ChaseResult:
            dependencies, choice = self.scenario_for(selections[index])
            engine = StandardChase(
                dependencies,
                self.source_relations,
                inner_config,
                branch_choice=choice,
                compiled=compiled_for_worker(),
                termination=self.termination,
            )
            return engine.run(source_instance, target_instance)

        race = racer.race(
            len(selections), run_selection, success=lambda r: r.ok
        )
        ordered = race.ordered()
        timings = [
            _branch_timing(
                outcome.index,
                selections[outcome.index],
                outcome.result,
                outcome.seconds,
                outcome.worker,
            )
            for outcome in ordered
        ]
        aggregate = ChaseStats()
        for outcome in ordered:
            aggregate = aggregate.merge(outcome.result.stats)
        if rec.enabled:
            # Fold branch traces home in canonical selection order: the
            # merged span sequence matches what the serial sweep records.
            for outcome in ordered:
                rec.merge_payload(outcome.result.trace, worker=outcome.worker)
                outcome.result.trace = None
                rec.observe("race.branch_seconds", outcome.seconds)
            rec.count("race.branches", len(ordered))
            rec.count("race.skipped", len(selections) - race.tried)
        if race.winner is not None:
            selection = selections[race.winner]
            result = race.outcomes[race.winner].result
            result.stats = aggregate
            result.stats.elapsed_seconds = time.perf_counter() - start
            result.scenarios_tried = race.tried
            result.branch_selection = {
                info.dependency.describe(): branch
                for info, branch in zip(self._infos, selection)
            }
            result.branch_racing = racer.describe()
            result.branch_timings = timings
            return result
        last = race.outcomes[len(selections) - 1].result
        result = self._finish_failure(
            last, aggregate, race.tried, start, timings
        )
        result.branch_racing = racer.describe()
        return result

    def _finish_failure(
        self,
        last: ChaseResult,
        aggregate: ChaseStats,
        tried: int,
        start: float,
        timings: List[Dict[str, object]],
    ) -> ChaseResult:
        last.stats = aggregate.merge(ChaseStats())
        last.stats.elapsed_seconds = time.perf_counter() - start
        last.scenarios_tried = tried
        last.branch_timings = timings
        if last.status is ChaseStatus.SUCCESS:
            return last
        last.failure_reason = (
            f"all {tried} derived scenarios failed "
            f"(last: {last.failure_reason})"
        )
        return last


def greedy_ded_chase(
    dependencies: Sequence[Dependency],
    source_instance: Instance,
    source_relations: Iterable[str] = (),
    config: Optional[ChaseConfig] = None,
    max_scenarios: int = 256,
) -> ChaseResult:
    """One-shot convenience wrapper around :class:`GreedyDedChase`."""
    return GreedyDedChase(
        dependencies, source_relations, config, max_scenarios
    ).run(source_instance)
