"""The greedy ded chase (Section 3, "Handling Complexity").

Chasing disjunctive embedded dependencies is fundamentally harder than
chasing tgds/egds: the right notion of result is a *universal model
set*, which may be exponentially large (Deutsch–Nash–Remmel, the
paper's [3]).  GROM's answer is a **greedy** strategy:

    "searching for solutions to a set of deds by running multiple
     standard scenarios made of tgds and egds derived from the given
     deds [...] that capture specific branches in the deds."

Concretely: for every ded with ``k`` disjuncts, selecting one branch
yields a standard dependency; a *selection* (one branch per ded) yields
a standard scenario, which the classical chase can run.  Any solution of
a derived scenario satisfies the original deds, so the strategy is sound
(but not complete — a solvable ded set can have all uniform-selection
scenarios fail).

Selections are enumerated in a cost-heuristic order — branches that only
equate values come before branches that invent facts, smaller branches
before larger ones — and the first scenario that chases to success wins.
The paper's Section 4 observation that "many of the generated scenarios
fail and new ones need to be executed" on intricate constraints is
directly observable through :attr:`ChaseResult.scenarios_tried`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.chase.compiled import compile_dependencies
from repro.chase.engine import ChaseConfig, StandardChase
from repro.chase.parallel import create_sharder
from repro.chase.result import ChaseResult, ChaseStats, ChaseStatus
from repro.logic.dependencies import Dependency, Disjunct
from repro.relational.instance import Instance

__all__ = ["GreedyDedChase", "branch_cost", "greedy_ded_chase"]


def branch_cost(disjunct: Disjunct) -> Tuple[int, int, int]:
    """Heuristic cost of enforcing a disjunct; lower chases first.

    Equality-only branches are cheapest (they merge values instead of
    inventing facts); then fewer atoms, then fewer equalities.  This is
    the "greedy" part: cheap branches tend to keep instances small and
    succeed fast, matching the paper's observation that the greedy chase
    is "often surprisingly quick in returning some solution".
    """
    return (1 if disjunct.atoms else 0, len(disjunct.atoms), len(disjunct.equalities))


@dataclass
class _DedInfo:
    dependency: Dependency
    branch_order: List[int]


class GreedyDedChase:
    """Greedy branch-selection search over derived standard scenarios."""

    def __init__(
        self,
        dependencies: Sequence[Dependency],
        source_relations: Iterable[str] = (),
        config: Optional[ChaseConfig] = None,
        max_scenarios: int = 256,
    ) -> None:
        self.standard = [d for d in dependencies if not d.is_ded()]
        self.deds = [d for d in dependencies if d.is_ded()]
        self.source_relations = frozenset(source_relations)
        self.config = config or ChaseConfig()
        self.max_scenarios = max_scenarios
        self._infos = [
            _DedInfo(
                dependency=ded,
                branch_order=sorted(
                    range(len(ded.disjuncts)),
                    key=lambda i: branch_cost(ded.disjuncts[i]),
                ),
            )
            for ded in self.deds
        ]
        # Every derived scenario shares one dependency list (standard part
        # followed by the whole deds); compile its plans once so the
        # selection sweep never re-plans a join between scenarios.
        self._compiled = compile_dependencies(
            self.standard + [info.dependency for info in self._infos]
        )

    # -- selection enumeration ----------------------------------------------

    def selections(self) -> Iterator[Tuple[int, ...]]:
        """Branch selections in heuristic order.

        The cartesian product of per-ded branch orders, enumerated so
        that globally cheaper selections come first: the sort key is the
        tuple of per-ded *ranks*, i.e. the first selection takes every
        ded's best branch, then single deviations, and so on.

        The enumeration is lazy up to the product construction;
        :attr:`max_scenarios` bounds how many the caller will consume.
        """
        if not self._infos:
            yield ()
            return
        ranked = [list(enumerate(info.branch_order)) for info in self._infos]
        # itertools.product of (rank, branch) pairs, sorted by total rank.
        product = itertools.product(*ranked)
        for combination in sorted(
            itertools.islice(product, self.max_scenarios * 4),
            key=lambda pairs: (sum(rank for rank, _ in pairs),
                               tuple(rank for rank, _ in pairs)),
        ):
            yield tuple(branch for _rank, branch in combination)

    def scenario_for(
        self, selection: Tuple[int, ...]
    ) -> Tuple[List[Dependency], Dict[int, int]]:
        """The dependency list and branch-choice map for a selection.

        The deds are kept whole (so the chase's satisfaction check sees
        every disjunct) and the choice map directs enforcement to the
        selected branch — the "standard scenario derived from the deds"
        of the paper.
        """
        dependencies = self.standard + [info.dependency for info in self._infos]
        offset = len(self.standard)
        choice = {
            offset + position: branch
            for position, branch in enumerate(selection)
        }
        return dependencies, choice

    # -- search ------------------------------------------------------------------

    def run(
        self,
        source_instance: Instance,
        target_instance: Optional[Instance] = None,
    ) -> ChaseResult:
        """Try derived scenarios until one chases to success.

        Returns the first successful result (annotated with the winning
        selection and the number of scenarios tried), or the FAILURE
        result of the last attempt when all scenarios fail or the budget
        is exhausted.
        """
        start = time.perf_counter()
        aggregate = ChaseStats()
        last: Optional[ChaseResult] = None
        tried = 0
        # One sharder serves the whole selection sweep: every derived
        # scenario shares the compiled plans, so the worker fan-out is
        # configured once and re-armed per run (begin_run/end_run).
        sharder = create_sharder(self.config.parallelism)
        try:
            for selection in self.selections():
                if tried >= self.max_scenarios:
                    break
                tried += 1
                dependencies, choice = self.scenario_for(selection)
                engine = StandardChase(
                    dependencies,
                    self.source_relations,
                    self.config,
                    branch_choice=choice,
                    compiled=self._compiled,
                    sharder=sharder,
                )
                result = engine.run(source_instance, target_instance)
                aggregate = aggregate.merge(result.stats)
                if result.ok:
                    result.stats = aggregate
                    result.stats.elapsed_seconds = time.perf_counter() - start
                    result.scenarios_tried = tried
                    result.branch_selection = {
                        info.dependency.describe(): branch
                        for info, branch in zip(self._infos, selection)
                    }
                    return result
                last = result
            if last is None:  # no deds and the standard part failed?  run it once
                engine = StandardChase(
                    self.standard,
                    self.source_relations,
                    self.config,
                    compiled=self._compiled[: len(self.standard)],
                    sharder=sharder,
                )
                last = engine.run(source_instance, target_instance)
                tried = 1
        finally:
            sharder.close()
        last.stats = aggregate.merge(ChaseStats())
        last.stats.elapsed_seconds = time.perf_counter() - start
        last.scenarios_tried = tried
        if last.status is ChaseStatus.SUCCESS:
            return last
        last.failure_reason = (
            f"all {tried} derived scenarios failed "
            f"(last: {last.failure_reason})"
        )
        return last


def greedy_ded_chase(
    dependencies: Sequence[Dependency],
    source_instance: Instance,
    source_relations: Iterable[str] = (),
    config: Optional[ChaseConfig] = None,
    max_scenarios: int = 256,
) -> ChaseResult:
    """One-shot convenience wrapper around :class:`GreedyDedChase`."""
    return GreedyDedChase(
        dependencies, source_relations, config, max_scenarios
    ).run(source_instance)
