"""Chase termination analysis: weak acyclicity.

The chase is only guaranteed to terminate for *weakly acyclic* sets of
tgds (Fagin, Kolaitis, Miller, Popa — the paper's [4]).  The rewriter's
output is checked with this module before chasing; scenarios that are
not weakly acyclic still run, but under a step budget.

For deds, every disjunct is treated as a tgd head: if every derived
standard scenario is weakly acyclic, every branch of the greedy ded
chase terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from repro.logic.dependencies import Dependency
from repro.logic.terms import Variable

__all__ = ["PositionGraph", "position_graph", "is_weakly_acyclic", "weak_acyclicity_report"]

Position = Tuple[str, int]
"""(relation, column index)."""


@dataclass
class PositionGraph:
    """The dependency position graph with regular and special edges."""

    regular: Set[Tuple[Position, Position]]
    special: Set[Tuple[Position, Position]]

    def all_edges(self) -> List[Tuple[Position, Position, bool]]:
        out = [(a, b, False) for a, b in sorted(self.regular)]
        out += [(a, b, True) for a, b in sorted(self.special)]
        return out


def position_graph(dependencies: Iterable[Dependency]) -> PositionGraph:
    """Build the position graph of a dependency set.

    For each dependency, each disjunct is treated as a tgd conclusion:
    for every premise position ``p`` of a frontier variable ``x``:

    * a regular edge ``p → q`` for every conclusion position ``q`` of ``x``;
    * a special edge ``p → q'`` for every conclusion position ``q'`` of an
      existentially quantified variable in the same disjunct.
    """
    regular: Set[Tuple[Position, Position]] = set()
    special: Set[Tuple[Position, Position]] = set()
    for dependency in dependencies:
        premise_positions: Dict[Variable, List[Position]] = {}
        for atom in dependency.premise.atoms:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    premise_positions.setdefault(term, []).append(
                        (atom.relation, index)
                    )
        for disjunct in dependency.disjuncts:
            if not disjunct.atoms:
                continue
            conclusion_positions: Dict[Variable, List[Position]] = {}
            for atom in disjunct.atoms:
                for index, term in enumerate(atom.terms):
                    if isinstance(term, Variable):
                        conclusion_positions.setdefault(term, []).append(
                            (atom.relation, index)
                        )
            frontier = [
                v for v in conclusion_positions if v in premise_positions
            ]
            existential = [
                v for v in conclusion_positions if v not in premise_positions
            ]
            for variable in frontier:
                for source in premise_positions[variable]:
                    for target in conclusion_positions[variable]:
                        regular.add((source, target))
                    for invented in existential:
                        for target in conclusion_positions[invented]:
                            special.add((source, target))
    return PositionGraph(regular, special)


def is_weakly_acyclic(dependencies: Iterable[Dependency]) -> bool:
    """Whether the dependency set is weakly acyclic.

    True iff the position graph has no cycle passing through a special
    edge — equivalently, no strongly connected component contains a
    special edge.
    """
    graph = position_graph(dependencies)
    digraph = nx.DiGraph()
    for source, target in graph.regular | graph.special:
        digraph.add_edge(source, target)
    component_of: Dict[Position, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(digraph)):
        for node in component:
            component_of[node] = index
    for source, target in graph.special:
        if component_of.get(source) is not None and component_of.get(
            source
        ) == component_of.get(target):
            return False
    return True


def weak_acyclicity_report(
    dependencies: Sequence[Dependency],
) -> Tuple[bool, List[Tuple[Position, Position]]]:
    """Weak acyclicity plus the special edges inside cycles (the culprits)."""
    graph = position_graph(dependencies)
    digraph = nx.DiGraph()
    for source, target in graph.regular | graph.special:
        digraph.add_edge(source, target)
    component_of: Dict[Position, int] = {}
    for index, component in enumerate(nx.strongly_connected_components(digraph)):
        for node in component:
            component_of[node] = index
    culprits = [
        (source, target)
        for source, target in sorted(graph.special)
        if component_of.get(source) == component_of.get(target)
        and component_of.get(source) is not None
    ]
    return (not culprits, culprits)
