"""Deprecated location: termination analysis lives in ``repro.analysis``.

The weak-acyclicity check grew into the full termination ladder (weak /
joint / super-weak acyclicity) of :mod:`repro.analysis.termination`.
This shim re-exports the original names so existing imports keep
working; new code should import from ``repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.termination import (
    Position,
    PositionGraph,
    is_weakly_acyclic,
    position_graph,
    weak_acyclicity_report,
)

__all__ = [
    "Position",
    "PositionGraph",
    "position_graph",
    "is_weakly_acyclic",
    "weak_acyclicity_report",
]
