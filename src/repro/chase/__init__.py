"""Chase engines: standard (tgd/egd/denial), greedy ded, and disjunctive.

The execution half of GROM (the paper builds on the Llunatic chase
engine and extends it for deds).  :class:`StandardChase` implements the
classical restricted chase; :class:`GreedyDedChase` the paper's greedy
branch-selection strategy; :class:`DisjunctiveChase` the exact
universal-model-set chase used as ground truth.
"""

from repro.chase.ded import GreedyDedChase, branch_cost, greedy_ded_chase
from repro.chase.disjunctive import (
    DisjunctiveChase,
    DisjunctiveResult,
    disjunctive_chase,
)
from repro.chase.engine import ChaseConfig, StandardChase, chase
from repro.chase.parallel import (
    MatchSharder,
    ProcessSharder,
    ThreadSharder,
    chase_worker_budget,
    compose_parallelism,
    create_sharder,
    effective_parallelism,
    parse_parallelism,
)
from repro.chase.race import (
    BranchOutcome,
    ProcessRacer,
    RaceResult,
    SerialRacer,
    ThreadRacer,
    create_racer,
)
from repro.chase.result import ChaseResult, ChaseStats, ChaseStatus
from repro.chase.termination import (
    is_weakly_acyclic,
    position_graph,
    weak_acyclicity_report,
)
from repro.chase.universal import core_of, is_universal_for, satisfies, violations

__all__ = [
    "ChaseConfig",
    "StandardChase",
    "chase",
    "MatchSharder",
    "ThreadSharder",
    "ProcessSharder",
    "create_sharder",
    "parse_parallelism",
    "chase_worker_budget",
    "effective_parallelism",
    "compose_parallelism",
    "BranchOutcome",
    "RaceResult",
    "SerialRacer",
    "ThreadRacer",
    "ProcessRacer",
    "create_racer",
    "ChaseResult",
    "ChaseStats",
    "ChaseStatus",
    "GreedyDedChase",
    "greedy_ded_chase",
    "branch_cost",
    "DisjunctiveChase",
    "DisjunctiveResult",
    "disjunctive_chase",
    "is_weakly_acyclic",
    "position_graph",
    "weak_acyclicity_report",
    "satisfies",
    "violations",
    "is_universal_for",
    "core_of",
]
