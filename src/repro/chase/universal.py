"""Universal solutions: satisfaction checking and core computation.

Universal solutions (Fagin–Kolaitis–Miller–Popa, the paper's [4]) are
the "good" solutions of standard data-exchange scenarios: they map
homomorphically into every other solution.  This module provides

* :func:`satisfies` / :func:`violations` — does an instance satisfy a
  dependency set (the definition of *solution*);
* :func:`is_universal_for` — is one solution universal relative to a
  set of candidate solutions (tested via homomorphism existence);
* :func:`core_of` — the core of an instance with labeled nulls, i.e.
  the smallest homomorphically-equivalent subinstance.  The core is the
  canonical minimal universal solution; Llunatic (the chase engine GROM
  builds on) ships core computation, so we do too.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.logic.atoms import Conjunction
from repro.logic.dependencies import Dependency
from repro.logic.homomorphism import (
    apply_assignment,
    exists_homomorphism,
    find_homomorphism,
)
from repro.logic.terms import Null, Term, Variable
from repro.relational.instance import Instance
from repro.relational.query import evaluate_iter, exists

__all__ = ["satisfies", "violations", "is_universal_for", "core_of"]


def violations(
    dependencies: Sequence[Dependency],
    instance: Instance,
    limit: int = 10,
) -> List[Tuple[str, Dict[Variable, Term]]]:
    """Premise matches with no satisfied conclusion disjunct."""
    found: List[Tuple[str, Dict[Variable, Term]]] = []
    for dependency in dependencies:
        # Lazy premise scan: with limit=1 (the `satisfies` fast path) the
        # generator pipeline stops at the first unsatisfied match.
        for binding in evaluate_iter(dependency.premise, instance):
            satisfied = False
            for disjunct in dependency.disjuncts:
                equal = all(
                    _resolve(e.left, binding) == _resolve(e.right, binding)
                    for e in disjunct.equalities
                )
                if not equal:
                    continue
                comparisons_ok = True
                for comparison in disjunct.comparisons:
                    resolved = comparison
                    try:
                        resolved = type(comparison)(
                            comparison.op,
                            _resolve(comparison.left, binding),
                            _resolve(comparison.right, binding),
                        )
                        if not resolved.evaluate():
                            comparisons_ok = False
                            break
                    except Exception:
                        comparisons_ok = False
                        break
                if not comparisons_ok:
                    continue
                if disjunct.atoms:
                    if exists(
                        Conjunction(atoms=disjunct.atoms), instance, seed=binding
                    ):
                        satisfied = True
                        break
                else:
                    satisfied = True
                    break
            if not satisfied:
                found.append((dependency.describe(), binding))
                if len(found) >= limit:
                    return found
    return found


def satisfies(dependencies: Sequence[Dependency], instance: Instance) -> bool:
    """Whether ``instance`` satisfies every dependency (is a *model*)."""
    return not violations(dependencies, instance, limit=1)


def is_universal_for(
    solution: Instance, others: Iterable[Instance]
) -> bool:
    """Whether ``solution`` maps homomorphically into every other solution."""
    mine = list(solution)
    return all(exists_homomorphism(mine, list(other)) for other in others)


def core_of(instance: Instance) -> Instance:
    """The core of an instance with labeled nulls.

    Computed by repeatedly looking for a *proper retraction*: a
    homomorphism from the instance into itself whose image misses at
    least one fact.  When no proper retraction exists the instance is
    its own core.  Exponential in the worst case (core computation is
    NP-hard) but perfectly fine at the scenario sizes GROM produces.
    """
    current = list(instance)
    changed = True
    while changed:
        changed = False
        for index, fact in enumerate(current):
            if not any(isinstance(t, Null) for t in fact.terms):
                continue
            rest = current[:index] + current[index + 1 :]
            assignment = find_homomorphism(current, rest)
            if assignment is None:
                continue
            image = {apply_assignment(assignment, a) for a in current}
            if len(image) < len(current):
                current = sorted(image, key=str)
                changed = True
                break
    core = Instance()
    for fact in current:
        core.add(fact)
    return core


def _resolve(term: Term, binding: Dict[Variable, Term]) -> Term:
    if isinstance(term, Variable):
        return binding.get(term, term)
    return term
