"""Per-dependency compiled execution plans for the chase hot path.

A chase run evaluates the same handful of dependencies over and over:
every round re-finds premise matches, and every premise match probes
every conclusion disjunct for satisfaction.  Re-planning those joins on
each call dominated the profile, so this module compiles each dependency
once and caches

* the premise join plan (full evaluation),
* one *anchored* premise plan per premise atom (delta evaluation joins
  the anchor — restricted to the round's new facts — first),
* per disjunct: the equality/comparison schedule plus a compiled
  satisfaction probe seeded with the premise variables.

Satisfaction probing is a **hash anti-join**: the conclusion relation's
hash index (on the positions the premise binds) is the build side, the
premise matches are the probe side, and a match is *unsatisfied* exactly
when its key misses the index.  Because
:meth:`repro.relational.instance.Instance.index` maintains live indexes
incrementally on insertion, facts created by enforcing one match are
visible to the next match's probe — preserving the restricted chase's
semantics while each probe costs O(1) instead of a fresh join.

Plans are data-independent (relation sizes only break ties), so one
:class:`CompiledDependency` is reusable across rounds, runs, and — for
the greedy ded search — across all derived scenarios of a selection
sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ChaseError, TypingError
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import Dependency
from repro.logic.terms import Term, Variable
from repro.relational.instance import Instance
from repro.relational import query as _query
from repro.relational.query import (
    Binding,
    CompiledQuery,
    evaluate,
    evaluate_delta,
    exists,
)

__all__ = ["CompiledDependency", "compile_dependencies"]


def _resolve(term: Term, binding: Binding) -> Term:
    """Strict resolution: an unbound variable in a disjunct equality or
    comparison is a malformed dependency and must fail loudly (matching
    the engine's historical behaviour and ``DisjunctiveChase``)."""
    if isinstance(term, Variable):
        value = binding.get(term)
        if value is None:
            raise ChaseError(f"unbound variable {term} during chase step")
        return value
    return term


def _ground_check(comparison, binding: Binding) -> bool:
    ground = type(comparison)(
        comparison.op,
        _resolve(comparison.left, binding),
        _resolve(comparison.right, binding),
    )
    try:
        return ground.evaluate()
    except TypingError:
        return False


class CompiledDependency:
    """One dependency's cached premise and satisfaction plans.

    Plans are recompiled when the relations they touch have grown past
    twice the size they were compiled at: join-order quality depends on
    selectivity estimates, and the first probes of a chase run happen
    against still-empty target relations whose statistics are useless.
    The doubling rule keeps recompiles logarithmic in the final instance
    size while plans never run against statistics more than 2x stale.
    """

    __slots__ = ("dependency", "_premise_vars", "_satisfaction_bodies", "_plans")

    #: Below this many facts any plan is fine; avoids churn on tiny data.
    _RECOMPILE_FLOOR = 8

    def __init__(self, dependency: Dependency) -> None:
        self.dependency = dependency
        self._premise_vars = frozenset(dependency.premise.positive_variables())
        self._satisfaction_bodies = [
            Conjunction(atoms=disjunct.atoms) for disjunct in dependency.disjuncts
        ]
        # plan-key -> (CompiledQuery, watched relation size at compile)
        self._plans: Dict[object, Tuple[CompiledQuery, int]] = {}

    def _plan(
        self,
        key: object,
        body: Conjunction,
        bound: frozenset,
        instance: Instance,
        first_atom: Optional[int] = None,
    ) -> CompiledQuery:
        entry = self._plans.get(key)
        size = instance.size
        current = sum(size(r) for r in {a.relation for a in body.atoms})
        if entry is not None:
            plan, compiled_at = entry
            if current < 2 * max(compiled_at, self._RECOMPILE_FLOOR):
                return plan
        plan = CompiledQuery(body, bound, instance, first_atom)
        self._plans[key] = (plan, current)
        return plan

    # -- premise -----------------------------------------------------------

    def premise_matches(
        self, working: Instance, delta: Optional[Set[Atom]]
    ) -> List[Binding]:
        """All premise bindings, optionally restricted to ``delta`` facts."""
        if _query.reference_mode_active():
            if delta is None:
                return evaluate(self.dependency.premise, working)
            return evaluate_delta(self.dependency.premise, working, delta)
        if delta is None:
            plan = self._plan(
                "premise", self.dependency.premise, frozenset(), working
            )
            return list(plan.bindings(working))
        return self._delta_matches(working, delta)

    def _delta_matches(self, working: Instance, delta: Set[Atom]) -> List[Binding]:
        premise = self.dependency.premise
        if not premise.atoms:
            return self.premise_matches(working, None)
        relations_in_delta = {f.relation for f in delta}
        out: List[Binding] = []
        seen: Set[Tuple[Tuple[Variable, Term], ...]] = set()
        for anchor_index, anchor in enumerate(premise.atoms):
            if anchor.relation not in relations_in_delta:
                continue
            plan = self._plan(
                ("anchor", anchor_index),
                premise,
                frozenset(),
                working,
                first_atom=anchor_index,
            )
            for binding in plan.bindings(working, delta=delta):
                key = tuple(sorted(binding.items()))
                if key not in seen:
                    seen.add(key)
                    out.append(binding)
        return out

    # -- satisfaction ------------------------------------------------------

    def disjunct_satisfied(
        self, disjunct_index: int, binding: Binding, working: Instance
    ) -> bool:
        """Whether one conclusion disjunct already holds under ``binding``."""
        disjunct = self.dependency.disjuncts[disjunct_index]
        for equality in disjunct.equalities:
            if _resolve(equality.left, binding) != _resolve(equality.right, binding):
                return False
        for comparison in disjunct.comparisons:
            if not _ground_check(comparison, binding):
                return False
        if not disjunct.atoms:
            return True
        if _query.reference_mode_active():
            return exists(Conjunction(atoms=disjunct.atoms), working, seed=binding)
        plan = self._plan(
            ("satisfied", disjunct_index),
            self._satisfaction_bodies[disjunct_index],
            self._premise_vars,
            working,
        )
        return plan.exists(working, binding)

    def satisfied(self, binding: Binding, working: Instance) -> bool:
        """Whether *any* conclusion disjunct holds under ``binding``."""
        return any(
            self.disjunct_satisfied(i, binding, working)
            for i in range(len(self.dependency.disjuncts))
        )


def compile_dependencies(
    dependencies: Sequence[Dependency],
) -> List[CompiledDependency]:
    """Compile every dependency of a scenario (plans fill in lazily)."""
    return [CompiledDependency(dependency) for dependency in dependencies]
