"""Per-dependency compiled execution plans for the chase hot path.

A chase run evaluates the same handful of dependencies over and over:
every round re-finds premise matches, and every premise match probes
every conclusion disjunct for satisfaction.  Re-planning those joins on
each call dominated the profile, so this module compiles each dependency
once on top of the shared incremental engine
(:mod:`repro.relational.delta`) and caches

* the premise :class:`~repro.relational.delta.DeltaPlans` (full
  evaluation plus one *anchored* plan per premise atom — delta
  evaluation joins the anchor, restricted to the round's new facts,
  first),
* per disjunct: the equality/comparison schedule plus a compiled
  satisfaction probe seeded with the premise variables.

Satisfaction probing is a **hash anti-join**: the conclusion relation's
hash index (on the positions the premise binds) is the build side, the
premise matches are the probe side, and a match is *unsatisfied* exactly
when its key misses the index.  Because
:meth:`repro.relational.instance.Instance.index` maintains live indexes
incrementally on insertion, facts created by enforcing one match are
visible to the next match's probe — preserving the restricted chase's
semantics while each probe costs O(1) instead of a fresh join.

All of a dependency's plans share one :class:`~repro.relational.delta.PlanCache`,
whose recompile policy (size doubling + distinct-key selectivity drift)
keeps plans no more than a constant factor stale.  Plans are otherwise
data-independent, so one :class:`CompiledDependency` is reusable across
rounds, runs, and — for the greedy ded search — across all derived
scenarios of a selection sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ChaseError, TypingError
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import Dependency
from repro.logic.terms import Term, Variable
from repro.relational.delta import DeltaPlans, PlanCache, RowDelta
from repro.relational.instance import Instance
from repro.relational.kernel import ColumnarInstance, TermPool
from repro.relational.query import Binding

__all__ = ["CompiledDependency", "compile_dependencies"]


def _resolve(term: Term, binding: Binding) -> Term:
    """Strict resolution: an unbound variable in a disjunct equality or
    comparison is a malformed dependency and must fail loudly (matching
    the engine's historical behaviour and ``DisjunctiveChase``)."""
    if isinstance(term, Variable):
        value = binding.get(term)
        if value is None:
            raise ChaseError(f"unbound variable {term} during chase step")
        return value
    return term


def _ground_check(comparison, binding: Binding) -> bool:
    ground = type(comparison)(
        comparison.op,
        _resolve(comparison.left, binding),
        _resolve(comparison.right, binding),
    )
    try:
        return ground.evaluate()
    except TypingError:
        return False


def _code_getter(term: Term, slot_of: Dict[Variable, int], pool: TermPool):
    """A closure reading one disjunct term's code off a premise row.

    Mirrors the strict :func:`_resolve`: a variable the premise does not
    bind is a malformed dependency and must fail loudly *when fired*,
    not at compile time (the engine may never reach the disjunct)."""
    if isinstance(term, Variable):
        slot = slot_of.get(term)
        if slot is None:
            def missing(_row, _term=term):
                raise ChaseError(f"unbound variable {_term} during chase step")

            return missing
        return lambda row, _slot=slot: row[_slot]
    code = pool.encode(term)
    return lambda _row, _code=code: _code


def _encoded_ground_check(comparison, slot_of: Dict[Variable, int], pool: TermPool):
    left_get = _code_getter(comparison.left, slot_of, pool)
    right_get = _code_getter(comparison.right, slot_of, pool)
    decode = pool.decode

    def check(row) -> bool:
        ground = type(comparison)(
            comparison.op, decode(left_get(row)), decode(right_get(row))
        )
        try:
            return ground.evaluate()
        except TypingError:
            return False

    return check


class _DisjunctKernel:
    """One conclusion disjunct lowered onto premise rows.

    ``equalities`` are (left, right) code getters (codes compare like
    terms: the pool interns by term equality); ``comparisons`` pair the
    original comparison (failure messages) with a compiled check;
    ``atom_templates`` are per-atom (relation, entries) where each entry
    is (kind, value) with kind 0 = premise slot, 1 = existential index,
    2 = interned code; ``existential_hints`` are the fresh-null hints in
    the engine's invention order (first occurrence across the disjunct's
    atoms, left to right — matching the decoded enforcement loop)."""

    __slots__ = ("equalities", "comparisons", "atom_templates", "existential_hints")

    def __init__(self, disjunct, slot_of: Dict[Variable, int], pool: TermPool) -> None:
        self.equalities = tuple(
            (
                _code_getter(equality.left, slot_of, pool),
                _code_getter(equality.right, slot_of, pool),
            )
            for equality in disjunct.equalities
        )
        self.comparisons = tuple(
            (comparison, _encoded_ground_check(comparison, slot_of, pool))
            for comparison in disjunct.comparisons
        )
        existential_index: Dict[Variable, int] = {}
        hints: List[str] = []
        templates: List[Tuple[str, Tuple[Tuple[int, int], ...]]] = []
        for atom in disjunct.atoms:
            entries: List[Tuple[int, int]] = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    slot = slot_of.get(term)
                    if slot is not None:
                        entries.append((0, slot))
                    else:
                        index = existential_index.get(term)
                        if index is None:
                            index = len(hints)
                            existential_index[term] = index
                            hints.append(term.name)
                        entries.append((1, index))
                else:
                    entries.append((2, pool.encode(term)))
            templates.append((atom.relation, tuple(entries)))
        self.atom_templates = tuple(templates)
        self.existential_hints = tuple(hints)


class CompiledDependency:
    """One dependency's cached premise and satisfaction plans.

    Plans live in a per-dependency :class:`PlanCache` and are recompiled
    under its shared policy: join-order quality depends on selectivity
    estimates, and the first probes of a chase run happen against
    still-empty target relations whose statistics are useless.  The
    size-doubling rule keeps recompiles logarithmic in the final
    instance size while the drift rule reacts to key-distribution
    changes growth alone would miss.
    """

    __slots__ = (
        "dependency",
        "_premise",
        "_satisfaction",
        "_cache",
        "premise_varlist",
        "_kernel_pool",
        "_kernels",
    )

    def __init__(self, dependency: Dependency) -> None:
        self.dependency = dependency
        self._cache = PlanCache()
        self._premise = DeltaPlans(
            dependency.premise, cache=self._cache, key="premise"
        )
        premise_vars = frozenset(dependency.premise.positive_variables())
        self._satisfaction = [
            DeltaPlans(
                Conjunction(atoms=disjunct.atoms),
                bound=premise_vars,
                cache=self._cache,
                key=("satisfied", index),
            )
            for index, disjunct in enumerate(dependency.disjuncts)
        ]
        #: Layout of encoded premise rows: the premise's positive
        #: variables in name order — by construction the same varlist
        #: every encoded premise plan produces (bound is empty, fresh is
        #: exactly this set), and the same order the engine's canonical
        #: ``sorted(binding)`` iteration visits.
        self.premise_varlist: Tuple[Variable, ...] = tuple(sorted(premise_vars))
        self._kernel_pool: Optional[TermPool] = None
        self._kernels: List[Optional[_DisjunctKernel]] = [
            None for _ in dependency.disjuncts
        ]

    # -- premise -----------------------------------------------------------

    def premise_matches(
        self, working: Instance, delta: Optional[Set[Atom]]
    ) -> List[Binding]:
        """All premise bindings, optionally restricted to ``delta`` facts."""
        if delta is None:
            return self._premise.matches(working)
        return self._premise.delta_matches(working, delta)

    # -- sharded enumeration (the parallel chase's read-only surface) ------

    @property
    def premise_atoms(self):
        """The premise's positive atoms (shard anchors index into these)."""
        return self._premise.body.atoms

    def anchor_indices(self, delta_relations: Set[str]) -> List[int]:
        """Premise-atom positions whose relation gained delta facts —
        exactly the anchors :meth:`premise_matches` would delta-join on."""
        return [
            index
            for index, atom in enumerate(self._premise.body.atoms)
            if atom.relation in delta_relations
        ]

    def premise_matches_encoded(
        self, working, delta_rows: Optional[RowDelta]
    ) -> List[Tuple[int, ...]]:
        """Encoded premise bindings as code rows aligned to
        :attr:`premise_varlist`, optionally delta-restricted.
        ``delta_rows`` values may be row-id sets or the engine's
        per-round :class:`~repro.relational.kernel.RowMask` windows —
        the block probes restrict index buckets through either."""
        if delta_rows is None:
            return self._premise.matches_encoded(working)
        return self._premise.delta_matches_encoded(working, delta_rows)

    def anchor_matches_encoded(
        self, working, anchor_index: int, restrict
    ) -> List[Tuple[int, ...]]:
        """Encoded twin of :meth:`anchor_matches` over row-id shards
        (sharder chunks arrive as plain sets; the encoded plan wraps
        them as masks before probing)."""
        return self._premise.anchor_matches_encoded(working, anchor_index, restrict)

    def warm_enumeration_plans(self, working: Instance) -> None:
        """Pre-compile anchored premise plans and their indexes (called
        pre-fork so replica workers inherit both copy-on-write).

        Over the columnar kernel this also lowers the satisfaction plans
        and disjunct kernels, interning every literal the dependency
        mentions — replica workers then never grow the term pool, so the
        parent's pool snapshot stays authoritative for the whole run."""
        self._premise.warm(working)
        if isinstance(working, ColumnarInstance):
            for index, plans in enumerate(self._satisfaction):
                plans.varlist(working)
                self.disjunct_kernel(index, working.pool)

    def disjunct_kernel(self, disjunct_index: int, pool: TermPool) -> _DisjunctKernel:
        """The disjunct's enforcement kernel lowered onto ``pool``
        (cached; templates and literal codes are data-independent)."""
        if self._kernel_pool is not pool:
            self._kernel_pool = pool
            self._kernels = [None for _ in self.dependency.disjuncts]
        kernel = self._kernels[disjunct_index]
        if kernel is None:
            slot_of = {v: i for i, v in enumerate(self.premise_varlist)}
            kernel = _DisjunctKernel(
                self.dependency.disjuncts[disjunct_index], slot_of, pool
            )
            self._kernels[disjunct_index] = kernel
        return kernel

    def anchor_matches(
        self, working, anchor_index: int, restrict: Set[Atom]
    ) -> List[Binding]:
        """One shard of the premise's delta matches: the plan anchored at
        ``anchor_index`` with the anchor restricted to ``restrict``.

        ``working`` may be a live :class:`Instance` (thread workers) or a
        :class:`~repro.relational.instance.ProbeView` over a replica
        (process workers); the evaluator only touches the read surface.
        Bindings are raw — the sharded merge deduplicates across anchors
        and chunks before enforcement.
        """
        return self._premise.anchor_matches(working, anchor_index, restrict)

    # -- observability -----------------------------------------------------

    @property
    def plan_cache(self) -> PlanCache:
        """The dependency's plan cache (counter harvest for ``plan.*``)."""
        return self._cache

    # -- satisfaction ------------------------------------------------------

    def disjunct_satisfied(
        self, disjunct_index: int, binding: Binding, working: Instance
    ) -> bool:
        """Whether one conclusion disjunct already holds under ``binding``."""
        disjunct = self.dependency.disjuncts[disjunct_index]
        for equality in disjunct.equalities:
            if _resolve(equality.left, binding) != _resolve(equality.right, binding):
                return False
        for comparison in disjunct.comparisons:
            if not _ground_check(comparison, binding):
                return False
        if not disjunct.atoms:
            return True
        return self._satisfaction[disjunct_index].exists(working, binding)

    def satisfied(self, binding: Binding, working: Instance) -> bool:
        """Whether *any* conclusion disjunct holds under ``binding``."""
        return any(
            self.disjunct_satisfied(i, binding, working)
            for i in range(len(self.dependency.disjuncts))
        )

    def disjunct_satisfied_encoded(
        self, disjunct_index: int, row: Tuple[int, ...], working
    ) -> bool:
        """Encoded :meth:`disjunct_satisfied` over a premise code row.

        Equality is code equality (the pool interns by term equality),
        comparisons decode-and-delegate, and the atom probe is the same
        hash anti-join over the incrementally-maintained *encoded*
        index — facts enforced for one match stay visible to the next."""
        kernel = self.disjunct_kernel(disjunct_index, working.pool)
        for left_get, right_get in kernel.equalities:
            if left_get(row) != right_get(row):
                return False
        for _comparison, check in kernel.comparisons:
            if not check(row):
                return False
        if not kernel.atom_templates:
            return True
        return self._satisfaction[disjunct_index].exists_encoded(
            working, self.premise_varlist, row
        )

    def satisfied_encoded(self, row: Tuple[int, ...], working) -> bool:
        """Encoded :meth:`satisfied` over a premise code row."""
        return any(
            self.disjunct_satisfied_encoded(i, row, working)
            for i in range(len(self.dependency.disjuncts))
        )


def compile_dependencies(
    dependencies: Sequence[Dependency],
) -> List[CompiledDependency]:
    """Compile every dependency of a scenario (plans fill in lazily)."""
    return [CompiledDependency(dependency) for dependency in dependencies]
