"""Per-dependency compiled execution plans for the chase hot path.

A chase run evaluates the same handful of dependencies over and over:
every round re-finds premise matches, and every premise match probes
every conclusion disjunct for satisfaction.  Re-planning those joins on
each call dominated the profile, so this module compiles each dependency
once on top of the shared incremental engine
(:mod:`repro.relational.delta`) and caches

* the premise :class:`~repro.relational.delta.DeltaPlans` (full
  evaluation plus one *anchored* plan per premise atom — delta
  evaluation joins the anchor, restricted to the round's new facts,
  first),
* per disjunct: the equality/comparison schedule plus a compiled
  satisfaction probe seeded with the premise variables.

Satisfaction probing is a **hash anti-join**: the conclusion relation's
hash index (on the positions the premise binds) is the build side, the
premise matches are the probe side, and a match is *unsatisfied* exactly
when its key misses the index.  Because
:meth:`repro.relational.instance.Instance.index` maintains live indexes
incrementally on insertion, facts created by enforcing one match are
visible to the next match's probe — preserving the restricted chase's
semantics while each probe costs O(1) instead of a fresh join.

All of a dependency's plans share one :class:`~repro.relational.delta.PlanCache`,
whose recompile policy (size doubling + distinct-key selectivity drift)
keeps plans no more than a constant factor stale.  Plans are otherwise
data-independent, so one :class:`CompiledDependency` is reusable across
rounds, runs, and — for the greedy ded search — across all derived
scenarios of a selection sweep.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.errors import ChaseError, TypingError
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import Dependency
from repro.logic.terms import Term, Variable
from repro.relational.delta import DeltaPlans, PlanCache
from repro.relational.instance import Instance
from repro.relational.query import Binding

__all__ = ["CompiledDependency", "compile_dependencies"]


def _resolve(term: Term, binding: Binding) -> Term:
    """Strict resolution: an unbound variable in a disjunct equality or
    comparison is a malformed dependency and must fail loudly (matching
    the engine's historical behaviour and ``DisjunctiveChase``)."""
    if isinstance(term, Variable):
        value = binding.get(term)
        if value is None:
            raise ChaseError(f"unbound variable {term} during chase step")
        return value
    return term


def _ground_check(comparison, binding: Binding) -> bool:
    ground = type(comparison)(
        comparison.op,
        _resolve(comparison.left, binding),
        _resolve(comparison.right, binding),
    )
    try:
        return ground.evaluate()
    except TypingError:
        return False


class CompiledDependency:
    """One dependency's cached premise and satisfaction plans.

    Plans live in a per-dependency :class:`PlanCache` and are recompiled
    under its shared policy: join-order quality depends on selectivity
    estimates, and the first probes of a chase run happen against
    still-empty target relations whose statistics are useless.  The
    size-doubling rule keeps recompiles logarithmic in the final
    instance size while the drift rule reacts to key-distribution
    changes growth alone would miss.
    """

    __slots__ = ("dependency", "_premise", "_satisfaction", "_cache")

    def __init__(self, dependency: Dependency) -> None:
        self.dependency = dependency
        self._cache = PlanCache()
        self._premise = DeltaPlans(
            dependency.premise, cache=self._cache, key="premise"
        )
        premise_vars = frozenset(dependency.premise.positive_variables())
        self._satisfaction = [
            DeltaPlans(
                Conjunction(atoms=disjunct.atoms),
                bound=premise_vars,
                cache=self._cache,
                key=("satisfied", index),
            )
            for index, disjunct in enumerate(dependency.disjuncts)
        ]

    # -- premise -----------------------------------------------------------

    def premise_matches(
        self, working: Instance, delta: Optional[Set[Atom]]
    ) -> List[Binding]:
        """All premise bindings, optionally restricted to ``delta`` facts."""
        if delta is None:
            return self._premise.matches(working)
        return self._premise.delta_matches(working, delta)

    # -- sharded enumeration (the parallel chase's read-only surface) ------

    @property
    def premise_atoms(self):
        """The premise's positive atoms (shard anchors index into these)."""
        return self._premise.body.atoms

    def anchor_indices(self, delta_relations: Set[str]) -> List[int]:
        """Premise-atom positions whose relation gained delta facts —
        exactly the anchors :meth:`premise_matches` would delta-join on."""
        return [
            index
            for index, atom in enumerate(self._premise.body.atoms)
            if atom.relation in delta_relations
        ]

    def warm_enumeration_plans(self, working: Instance) -> None:
        """Pre-compile anchored premise plans and their indexes (called
        pre-fork so replica workers inherit both copy-on-write)."""
        self._premise.warm(working)

    def anchor_matches(
        self, working, anchor_index: int, restrict: Set[Atom]
    ) -> List[Binding]:
        """One shard of the premise's delta matches: the plan anchored at
        ``anchor_index`` with the anchor restricted to ``restrict``.

        ``working`` may be a live :class:`Instance` (thread workers) or a
        :class:`~repro.relational.instance.ProbeView` over a replica
        (process workers); the evaluator only touches the read surface.
        Bindings are raw — the sharded merge deduplicates across anchors
        and chunks before enforcement.
        """
        return self._premise.anchor_matches(working, anchor_index, restrict)

    # -- observability -----------------------------------------------------

    @property
    def plan_cache(self) -> PlanCache:
        """The dependency's plan cache (counter harvest for ``plan.*``)."""
        return self._cache

    # -- satisfaction ------------------------------------------------------

    def disjunct_satisfied(
        self, disjunct_index: int, binding: Binding, working: Instance
    ) -> bool:
        """Whether one conclusion disjunct already holds under ``binding``."""
        disjunct = self.dependency.disjuncts[disjunct_index]
        for equality in disjunct.equalities:
            if _resolve(equality.left, binding) != _resolve(equality.right, binding):
                return False
        for comparison in disjunct.comparisons:
            if not _ground_check(comparison, binding):
                return False
        if not disjunct.atoms:
            return True
        return self._satisfaction[disjunct_index].exists(working, binding)

    def satisfied(self, binding: Binding, working: Instance) -> bool:
        """Whether *any* conclusion disjunct holds under ``binding``."""
        return any(
            self.disjunct_satisfied(i, binding, working)
            for i in range(len(self.dependency.disjuncts))
        )


def compile_dependencies(
    dependencies: Sequence[Dependency],
) -> List[CompiledDependency]:
    """Compile every dependency of a scenario (plans fill in lazily)."""
    return [CompiledDependency(dependency) for dependency in dependencies]
