"""Chase outcomes: status, produced instance, statistics and traces."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.relational.instance import Instance

__all__ = ["ChaseStatus", "ChaseStats", "ChaseResult"]


class ChaseStatus(enum.Enum):
    """How a chase run ended."""

    SUCCESS = "success"
    FAILURE = "failure"
    """An egd equated distinct constants, a denial fired, or a required
    disjunct comparison was unsatisfiable — the scenario has no solution
    on this branch."""

    NONTERMINATION = "nontermination"
    """Step/round budget exhausted; the scenario may not terminate."""

    def __str__(self) -> str:
        return self.value


@dataclass
class ChaseStats:
    """Counters accumulated during one chase run."""

    rounds: int = 0
    tgd_fires: int = 0
    egd_unifications: int = 0
    facts_created: int = 0
    nulls_created: int = 0
    premise_matches: int = 0
    null_rewrites: int = 0
    elapsed_seconds: float = 0.0

    dependencies_pruned: int = 0
    """Dependencies the static analyzer proved dead for this run's base
    instance (their premise mentions a never-populatable relation); the
    engine never enumerates them."""

    enumerations_skipped: int = 0
    """Enumerate phases skipped without calling the sharder — dead
    dependencies plus delta rounds whose new facts cannot touch the
    premise."""

    def merge(self, other: "ChaseStats") -> "ChaseStats":
        return ChaseStats(
            rounds=self.rounds + other.rounds,
            tgd_fires=self.tgd_fires + other.tgd_fires,
            egd_unifications=self.egd_unifications + other.egd_unifications,
            facts_created=self.facts_created + other.facts_created,
            nulls_created=self.nulls_created + other.nulls_created,
            premise_matches=self.premise_matches + other.premise_matches,
            null_rewrites=self.null_rewrites + other.null_rewrites,
            elapsed_seconds=self.elapsed_seconds + other.elapsed_seconds,
            dependencies_pruned=self.dependencies_pruned
            + other.dependencies_pruned,
            enumerations_skipped=self.enumerations_skipped
            + other.enumerations_skipped,
        )


@dataclass
class ChaseResult:
    """The outcome of a chase run.

    ``target`` is the produced physical target instance (source and
    auxiliary requirement relations stripped); ``working`` is the full
    working instance for diagnosis.  ``failure_reason`` explains
    FAILURE/NONTERMINATION outcomes.  For greedy ded runs,
    ``branch_selection`` records which disjunct of each ded the winning
    standard scenario used and ``scenarios_tried`` how many scenarios
    were attempted before success (or exhaustion).
    """

    status: ChaseStatus
    target: Instance
    working: Optional[Instance] = None
    stats: ChaseStats = field(default_factory=ChaseStats)
    failure_reason: str = ""
    branch_selection: Optional[Dict[str, int]] = None
    scenarios_tried: int = 0
    sharding: str = "serial"
    """How the enumerate phase was sharded (``serial``, ``thread:N`` or
    ``process:N`` — see :mod:`repro.chase.parallel`)."""

    branch_racing: str = "serial"
    """How the disjunctive search raced its derived scenarios
    (``serial``, ``thread:N`` or ``process:N`` — see
    :mod:`repro.chase.race`)."""

    branch_timings: Optional[List[Dict[str, object]]] = None
    """Per derived-scenario timings of the greedy ded sweep, in
    canonical selection order up to the winner: ``index``, ``selection``,
    ``status``, ``seconds`` and the ``worker`` that chased it."""

    guards: str = "enforced"
    """``enforced`` when the run kept its step budget and bounded
    trigger memory, ``dropped`` when a static termination proof let the
    engine run unbudgeted with exact trigger memory (see
    :meth:`repro.analysis.TerminationReport.proven_for`)."""

    trace: Optional[Dict[str, object]] = None
    """Flight-recorder payload (spans + metric snapshot) when the run
    owned its recorder — i.e. tracing was enabled via ``config.trace``
    and no external recorder was passed in.  Raced branches use this
    field to ship their trace across the process boundary: the payload
    is plain picklable data (see :meth:`repro.obs.FlightRecorder.to_payload`)."""

    @property
    def ok(self) -> bool:
        return self.status is ChaseStatus.SUCCESS

    def __str__(self) -> str:
        if self.ok:
            return (
                f"chase: success in {self.stats.rounds} rounds, "
                f"{len(self.target)} target facts, "
                f"{self.stats.nulls_created} nulls"
            )
        return f"chase: {self.status} ({self.failure_reason})"
