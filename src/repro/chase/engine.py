"""The standard chase: tgds, egds, mixed dependencies and denials.

A Llunatic-style restricted chase over the in-memory substrate:

* **tgd step** — for every premise match with no satisfied conclusion
  (the *restricted* condition), instantiate the conclusion, inventing a
  fresh labeled null per existential variable;
* **egd step** — for every premise match whose equalities do not hold,
  unify: null/term unions go through a union-find; equating two distinct
  constants is a hard :class:`ChaseFailure`;
* **denial step** — any premise match is a hard failure;
* **disjunct comparisons** — a conclusion whose comparison checks fail
  under the match cannot be satisfied, which is also a failure (the
  greedy ded driver relies on this to discard bad branches).

Rounds are delta-driven: after the first full round, premises are only
re-evaluated against matches involving newly created facts.  Egd
rewrites invalidate the delta bookkeeping, so a round that performed
null rewriting forces a full re-evaluation round — simple and sound.

Each dependency's round is an explicit two-phase pipeline:

* **enumerate** — find every premise match (a read-only join over the
  working instance).  This phase is delegated to a
  :class:`~repro.chase.parallel.MatchSharder`, which may fan the work
  across threads or forked replica processes
  (``ChaseConfig.parallelism``); premise matches are independent of one
  another until enforcement, so sharding them is safe.
* **enforce** — sort the matches into canonical order, then serially
  probe satisfaction and fire tgd/egd steps.  Because enforcement order
  is canonical and serial, null invention and ``_NullMap`` unions are
  bit-identical whichever sharder enumerated the matches.

Premise negation is rejected unless it only mentions *source* relations
(which the chase never modifies); that is exactly the shape the rewriter
emits when asked to unfold source premises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ChaseError, ChaseFailure, ChaseNonTermination
from repro.analysis.firing import dead_dependency_indices
from repro.analysis.termination import TerminationReport
from repro.chase.compiled import (
    CompiledDependency,
    compile_dependencies,
    _ground_check,
    _resolve,
)
from repro.chase.parallel import MatchSharder, create_sharder
from repro.chase.result import ChaseResult, ChaseStats, ChaseStatus
from repro.obs.recorder import TraceConfig, resolve_recorder
from repro.logic.atoms import Atom
from repro.logic.dependencies import Dependency, Disjunct
from repro.logic.terms import Null, NullFactory, Term, Variable
from repro.relational import query as _query
from repro.relational.delta import RowDelta, group_rows, mask_rows
from repro.relational.instance import Instance
from repro.relational.kernel import ColumnarInstance
from repro.relational.types import term_order_key

__all__ = ["ChaseConfig", "StandardChase", "chase"]


@dataclass
class ChaseConfig:
    """Tunables for a chase run."""

    max_rounds: int = 10_000
    max_facts: Optional[int] = 5_000_000
    policy: str = "restricted"
    """``restricted`` (skip satisfied premises) or ``oblivious``
    (fire every premise match once, regardless of satisfaction)."""

    keep_working: bool = False
    """Retain the full working instance on the result (debugging)."""

    oblivious_trigger_limit: int = 100_000
    """How many oblivious-policy triggers are remembered *exactly*.
    Past the limit, fired triggers spill into a fixed-size Bloom filter,
    bounding the memory of long oblivious runs (see
    :class:`_TriggerMemory`)."""

    parallelism: str = "serial"
    """How the enumerate phase is sharded: ``serial`` (default),
    ``thread[:N]`` or ``process[:N]`` — see
    :func:`repro.chase.parallel.parse_parallelism`.  Enforcement is
    always a serial, canonically-ordered merge, so every mode produces
    bit-identical instances and null resolutions."""

    branch_parallelism: str = "serial"
    """How the *disjunctive search* races independent branches:
    ``serial`` (default), ``thread[:N]`` or ``process[:N]``.  The greedy
    ded sweep races whole candidate selections and the disjunctive
    chase prefetches tree nodes; winner selection is canonical (lowest
    selection index / DFS order), so results are bit-identical to the
    serial sweep — see :mod:`repro.chase.race`."""

    trace: Optional[TraceConfig] = None
    """Flight-recorder knobs (:class:`repro.obs.TraceConfig`).  ``None``
    or a disabled config means the chase runs uninstrumented — every
    probe degrades to a no-op on the shared null recorder."""

    guards: str = "auto"
    """``auto`` (default): when a static termination proof covering
    this run's policy is supplied, drop the round/fact budgets and keep
    trigger memory exact and unbounded — the proof, not the budget, is
    what guarantees the run ends.  ``on``: always enforce budgets and
    bounded trigger memory, proof or not (the differential suite uses
    this to assert guarded and unguarded runs are bit-identical)."""

    kernel: str = "columnar"
    """Which instance kernel the working instance uses: ``columnar``
    (default — interned terms over struct-of-arrays storage, encoded
    join probes and match shipping) or ``reference`` (the set-based
    :class:`~repro.relational.instance.Instance`).  Both produce
    bit-identical results — the differential suite asserts it — so the
    reference kernel exists for exactly that comparison (and as the
    fallback while :func:`repro.relational.query.reference_evaluator`
    mode is active, which bypasses compiled plans entirely)."""


class _NullMap:
    """Union-find over labeled nulls, with constants as sinks."""

    def __init__(self) -> None:
        self._parent: Dict[Null, Term] = {}

    def find(self, term: Term) -> Term:
        seen: List[Null] = []
        while isinstance(term, Null) and term in self._parent:
            seen.append(term)
            term = self._parent[term]
        for null in seen[:-1]:  # path compression
            self._parent[null] = term
        return term

    def union(self, left: Term, right: Term, context: str) -> bool:
        """Merge the classes of two terms; returns True when a change happened.

        Raises :class:`ChaseFailure` when both resolve to distinct
        constants — the classical hard egd failure.
        """
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        left_null = isinstance(left_root, Null)
        right_null = isinstance(right_root, Null)
        if not left_null and not right_null:
            raise ChaseFailure(
                f"{context}: cannot equate distinct constants "
                f"{left_root} and {right_root}"
            )
        if left_null and right_null:
            # Deterministic orientation: larger id points to smaller.
            if left_root.id < right_root.id:  # type: ignore[union-attr]
                self._parent[right_root] = left_root  # type: ignore[index]
            else:
                self._parent[left_root] = right_root  # type: ignore[index]
        elif left_null:
            self._parent[left_root] = right_root  # type: ignore[index]
        else:
            self._parent[right_root] = left_root  # type: ignore[index]
        return True

    def resolution(self) -> Dict[Null, Term]:
        return {null: self.find(null) for null in self._parent}

    def __len__(self) -> int:
        return len(self._parent)


class _EncodedNullMap:
    """Union-find over encoded terms (the columnar kernel's `_NullMap`).

    Codes are ints: nulls negative (``-(id + 1)``), constants positive.
    Orientation matches :class:`_NullMap` exactly — the *smaller null
    id* wins a null/null union, and null ids decrease as codes decrease,
    so the larger code is the smaller id's... inverse: code ``-(id+1)``
    means smaller id ⇔ larger code.  Failure messages decode through the
    working instance so they are byte-identical to the reference
    kernel's.
    """

    __slots__ = ("_parent", "_decode")

    def __init__(self, working: "ColumnarInstance") -> None:
        self._parent: Dict[int, int] = {}
        self._decode = working.decode_term

    def find(self, code: int) -> int:
        parent = self._parent
        seen: List[int] = []
        while code < 0 and code in parent:
            seen.append(code)
            code = parent[code]
        for c in seen[:-1]:  # path compression
            parent[c] = code
        return code

    def union(self, left: int, right: int, context: str) -> bool:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return False
        left_null = left_root < 0
        right_null = right_root < 0
        if not left_null and not right_null:
            raise ChaseFailure(
                f"{context}: cannot equate distinct constants "
                f"{self._decode(left_root)} and {self._decode(right_root)}"
            )
        if left_null and right_null:
            # id(left) < id(right) ⇔ left_root > right_root.
            if left_root > right_root:
                self._parent[right_root] = left_root
            else:
                self._parent[left_root] = right_root
        elif left_null:
            self._parent[left_root] = right_root
        else:
            self._parent[right_root] = left_root
        return True

    def resolution(self) -> Dict[int, int]:
        return {code: self.find(code) for code in self._parent}

    def __len__(self) -> int:
        return len(self._parent)


class _TriggerMemory:
    """Bounded memory of fired oblivious-policy triggers.

    The oblivious chase must remember every (dependency, premise
    binding) it ever fired, and on long runs an exact set grows without
    bound — the ROADMAP's "oblivious-policy trigger memory" item.  This
    structure keeps the first ``exact_limit`` triggers exactly; once the
    limit is hit, *new* triggers spill into a fixed-size double-hashed
    Bloom filter (``BLOOM_BITS`` bits, ``HASHES`` probes ≈ 1% false
    positives at 10^5 spilled entries), so memory is bounded by
    ``exact_limit`` tuples plus ``BLOOM_BITS / 8`` bytes regardless of
    run length.

    There are no false negatives — every added trigger is found again,
    so a trigger never fires twice.  A Bloom false positive makes the
    chase skip a trigger it never actually fired: for the oblivious
    policy (a termination/analysis tool, deliberately over-firing) an
    occasional conservative skip is an acceptable trade for bounded
    memory; the default restricted policy never consults this structure
    and stays exact.

    Probe positions come from a *stable* digest of the trigger, not
    Python's per-process-randomized ``hash()``: which triggers collide
    (and are therefore conservatively skipped) must be identical across
    runs, or two oblivious chases of the same input could produce
    different instances once spilling starts.

    ``exact_limit=None`` disables spilling entirely — every trigger is
    remembered exactly.  That mode is only sound when something else
    bounds the run, which is exactly what a static termination proof
    provides (``ChaseConfig.guards``).
    """

    __slots__ = ("_exact", "_limit", "_bits", "_spilled")

    BLOOM_BITS = 1 << 20  # 128 KiB of bytearray once spilling starts
    HASHES = 4

    def __init__(self, exact_limit: Optional[int]) -> None:
        self._exact: Set[Tuple[int, Tuple[Term, ...]]] = set()
        self._limit = None if exact_limit is None else max(0, exact_limit)
        self._bits: Optional[bytearray] = None
        self._spilled = 0

    @staticmethod
    def _stable_digest(trigger) -> Tuple[int, int]:
        """Two 64-bit hashes from a canonical trigger serialization.

        Nulls serialize by id only (their ``hint`` is excluded from
        equality, so it must be excluded here too).
        """
        import hashlib

        parts: List[str] = [str(trigger[0])]
        for term in trigger[1]:
            if isinstance(term, Null):
                parts.append(f"n{term.id}")
            else:
                parts.append(repr(term))
        digest = hashlib.blake2b(
            "\x1f".join(parts).encode("utf-8", "surrogatepass"),
            digest_size=16,
        ).digest()
        return (
            int.from_bytes(digest[:8], "big"),
            int.from_bytes(digest[8:], "big"),
        )

    def _probes(self, trigger) -> List[int]:
        first, second = self._stable_digest(trigger)
        second |= 1  # odd: visits all slots
        mask = self.BLOOM_BITS - 1
        return [(first + i * second) & mask for i in range(self.HASHES)]

    def __contains__(self, trigger) -> bool:
        if trigger in self._exact:
            return True
        bits = self._bits
        if bits is None:
            return False
        return all(bits[p >> 3] & (1 << (p & 7)) for p in self._probes(trigger))

    def add(self, trigger) -> None:
        if self._bits is None:
            if self._limit is None or len(self._exact) < self._limit:
                self._exact.add(trigger)
                return
            self._bits = bytearray(self.BLOOM_BITS // 8)
        for p in self._probes(trigger):
            self._bits[p >> 3] |= 1 << (p & 7)
        self._spilled += 1

    # -- introspection (memory-growth regression tests) --------------------

    @property
    def exact_size(self) -> int:
        return len(self._exact)

    @property
    def spilled(self) -> int:
        return self._spilled

    @property
    def approximate_bytes(self) -> int:
        """Upper bound on the structure's own storage (test hook)."""
        bloom = len(self._bits) if self._bits is not None else 0
        return bloom + sum(64 + 48 * len(t[1]) for t in self._exact)


class StandardChase:
    """Chases a set of *standard* dependencies (no deds).

    The engine is reusable: :meth:`run` takes the instances and returns a
    fresh :class:`ChaseResult` each time.
    """

    def __init__(
        self,
        dependencies: Sequence[Dependency],
        source_relations: Iterable[str] = (),
        config: Optional[ChaseConfig] = None,
        branch_choice: Optional[Dict[int, int]] = None,
        compiled: Optional[Sequence[CompiledDependency]] = None,
        sharder: Optional[MatchSharder] = None,
        termination: Optional[TerminationReport] = None,
    ) -> None:
        """``branch_choice`` maps a dependency's *position* in
        ``dependencies`` to the disjunct index to enforce, turning a ded
        into a standard dependency: satisfaction still checks **all**
        disjuncts (so an already-satisfied ded never fires), but when the
        ded is violated only the chosen branch is enforced.  This is how
        the greedy ded chase derives its standard scenarios.

        ``compiled`` supplies pre-built :class:`CompiledDependency` plans
        aligned with ``dependencies`` — the greedy ded search passes the
        same plans to every derived scenario so nothing is re-planned
        between selections.

        ``sharder`` supplies an externally-owned match sharder (again the
        greedy ded search, which reuses one across all derived
        scenarios); when omitted, each :meth:`run` builds one from
        ``config.parallelism`` and closes it on exit.

        ``termination`` is the static analyzer's verdict for the
        dependency set (or a superset of it — the proof is monotone
        under removing dependencies).  With ``config.guards == "auto"``
        and a proof covering ``config.policy``, the run drops its
        round/fact budgets and keeps trigger memory exact."""
        self.dependencies = list(dependencies)
        self.source_relations = frozenset(source_relations)
        self.config = config or ChaseConfig()
        self.branch_choice = dict(branch_choice or {})
        self._sharder = sharder
        if compiled is not None and len(compiled) != len(self.dependencies):
            raise ChaseError(
                "compiled plans must align one-to-one with dependencies"
            )
        self.compiled = (
            list(compiled)
            if compiled is not None
            else compile_dependencies(self.dependencies)
        )
        for position, dependency in enumerate(self.dependencies):
            if dependency.is_ded() and position not in self.branch_choice:
                raise ChaseError(
                    f"{dependency.describe()}: the standard chase cannot "
                    f"handle deds without a branch choice; use "
                    f"GreedyDedChase or DisjunctiveChase"
                )
            self._check_premise_negation(dependency)
        self.termination = termination
        self._unguarded = bool(
            termination is not None
            and self.config.guards == "auto"
            and termination.proven_for(self.config.policy)
        )
        self._premise_relations = [
            frozenset(atom.relation for atom in dependency.premise.atoms)
            for dependency in self.dependencies
        ]

    def _check_premise_negation(self, dependency: Dependency) -> None:
        for negation in dependency.premise.negations:
            outside = negation.inner.relations() - self.source_relations
            if outside:
                raise ChaseError(
                    f"{dependency.describe()}: premise negation over "
                    f"non-source relations {sorted(outside)} is not "
                    f"chaseable (the rewriter should have eliminated it)"
                )

    # -- public API ------------------------------------------------------------

    def run(
        self,
        source_instance: Instance,
        target_instance: Optional[Instance] = None,
        null_factory: Optional[NullFactory] = None,
        recorder=None,
    ) -> ChaseResult:
        """Chase ``source_instance`` (plus optional pre-existing target).

        Returns SUCCESS with the produced target, FAILURE when the
        scenario is unsatisfiable, or NONTERMINATION past the budget.

        ``recorder`` is an externally-owned flight recorder (the caller
        keeps the trace); when omitted, one is built from
        ``config.trace`` and its payload is attached to
        ``ChaseResult.trace`` — or everything no-ops on the shared null
        recorder when tracing is off.
        """
        start = time.perf_counter()
        rec = resolve_recorder(recorder, self.config.trace)
        owned_rec = recorder is None and rec.enabled
        plan_mark = self._plan_counters() if rec.enabled else (0, 0, 0)
        # Reference-evaluator mode bypasses compiled plans, which the
        # encoded pipeline rides — fall back to the reference kernel.
        if self.config.kernel == "columnar" and not _query.reference_mode_active():
            working: Instance = ColumnarInstance()  # type: ignore[assignment]
        else:
            working = Instance()
        kernel_mark = (
            len(working.pool) if isinstance(working, ColumnarInstance) else 0
        )
        # Columnar-to-columnar seeding moves encoded rows (the pipeline
        # hands over the semantic database's columnar store directly —
        # no decode/re-encode of the whole input).
        if isinstance(working, ColumnarInstance):
            ingest = working.ingest
            for instance in (source_instance, target_instance):
                if instance is None:
                    continue
                if isinstance(instance, ColumnarInstance):
                    ingest(instance)
                else:
                    working.add_all(instance)
        else:
            for fact in source_instance:
                working.add(fact)
            if target_instance is not None:
                for fact in target_instance:
                    working.add(fact)
        factory = null_factory or NullFactory()
        factory.advance_past(working.nulls())
        stats = ChaseStats()
        status = ChaseStatus.SUCCESS
        reason = ""
        sharder = self._sharder
        owned = sharder is None
        if owned:
            sharder = create_sharder(self.config.parallelism)
        with rec.span(
            "chase.run",
            dependencies=len(self.dependencies),
            parallelism=self.config.parallelism,
            guards="dropped" if self._unguarded else "enforced",
        ):
            sharder.set_recorder(rec)
            try:
                sharder.begin_run(working, self.compiled)
                try:
                    self._chase_rounds(working, factory, stats, sharder, rec)
                except ChaseFailure as failure:
                    status = ChaseStatus.FAILURE
                    reason = str(failure)
                except ChaseNonTermination as overrun:
                    status = ChaseStatus.NONTERMINATION
                    reason = str(overrun)
            finally:
                sharder.end_run()
                sharder.set_recorder(None)
                if owned:
                    sharder.close()
        stats.elapsed_seconds = time.perf_counter() - start
        if rec.enabled:
            self._harvest_metrics(rec, stats, working, plan_mark, kernel_mark)
        target = self._extract_target(working)
        return ChaseResult(
            status=status,
            target=target,
            working=working if self.config.keep_working else None,
            stats=stats,
            failure_reason=reason,
            sharding=sharder.describe(),
            guards="dropped" if self._unguarded else "enforced",
            trace=rec.to_payload() if owned_rec else None,
        )

    def _plan_counters(self) -> Tuple[int, int, int]:
        """Summed plan-cache counters across this engine's dependencies."""
        compiles = recompiles = served = 0
        for compiled in self.compiled:
            cache = compiled.plan_cache
            compiles += cache.compiles
            recompiles += cache.recompiles
            served += cache.served
        return compiles, recompiles, served

    def _harvest_metrics(
        self,
        rec,
        stats: ChaseStats,
        working: Instance,
        plan_mark: Tuple[int, int, int],
        kernel_mark: int = 0,
    ) -> None:
        """Fold this run's statistics into the recorder.

        ``chase.*`` counters mirror :class:`ChaseStats` and are
        bit-identical across execution tiers; ``plan.*`` /
        ``instance.*`` describe this process's caches and may
        legitimately differ (racing threads compile private plans,
        replicas build their own indexes).  Plan counters are *deltas*
        against the run's start because the greedy ded search reuses one
        compiled plan set across every derived scenario.
        """
        rec.count("chase.runs")
        rec.count("chase.rounds", stats.rounds)
        rec.count("chase.tgd_fires", stats.tgd_fires)
        rec.count("chase.egd_unifications", stats.egd_unifications)
        rec.count("chase.facts_created", stats.facts_created)
        rec.count("chase.nulls_created", stats.nulls_created)
        rec.count("chase.premise_matches", stats.premise_matches)
        rec.count("chase.null_rewrites", stats.null_rewrites)
        rec.count("chase.dependencies_pruned", stats.dependencies_pruned)
        rec.count("chase.enumerations_skipped", stats.enumerations_skipped)
        compiles, recompiles, served = self._plan_counters()
        rec.count("plan.compiles", compiles - plan_mark[0])
        rec.count("plan.recompiles", recompiles - plan_mark[1])
        rec.count("plan.served", served - plan_mark[2])
        rec.count("instance.index_builds", working.index_builds)
        if isinstance(working, ColumnarInstance):
            kernel_stats = working.kernel_stats
            rec.count("kernel.interned_terms", len(working.pool) - kernel_mark)
            rec.count("kernel.encoded_appends", kernel_stats.encoded_appends)
            rec.count("kernel.probe_rows", kernel_stats.probe_rows)
            rec.count("kernel.probe_survivors", kernel_stats.probe_survivors)
            rec.gauge("instance.intern_size", len(working.pool))

    # -- internals ----------------------------------------------------------------

    def _extract_target(self, working: Instance) -> Instance:
        target = Instance()
        for fact in working:
            if fact.relation not in self.source_relations:
                target.add(fact)
        return target

    def _chase_rounds(
        self,
        working: Instance,
        factory: NullFactory,
        stats: ChaseStats,
        sharder: MatchSharder,
        rec,
    ) -> None:
        fired_triggers = _TriggerMemory(
            None if self._unguarded else self.config.oblivious_trigger_limit
        )
        # Exposed for memory-growth regression tests.
        self._trigger_memory = fired_triggers
        # Dead-dependency pruning: the populatable fixpoint is seeded
        # with the relations that actually hold facts *in this run's*
        # working instance, so the dead set is exact per run (a premise
        # over a never-populatable relation can never match, under any
        # ded branch choice).
        base = set(working.relations())
        dead = frozenset(dead_dependency_indices(self.dependencies, base))
        stats.dependencies_pruned = len(dead)
        # The delta has two shapes, one per kernel: a set of atoms for
        # the reference kernel, a relation -> row-id-set dict for the
        # columnar kernel (no Atom objects on the hot path).  ``None``
        # means "evaluate everything" in both.
        encoded = isinstance(working, ColumnarInstance)
        apply_dependency = (
            self._apply_dependency_encoded if encoded else self._apply_dependency
        )
        delta: Optional[Set[Atom]] = None
        delta_rows: Optional[RowDelta] = None
        since: Optional[int] = None  # generation the delta was taken from
        while True:
            stats.rounds += 1
            if not self._unguarded and stats.rounds > self.config.max_rounds:
                raise ChaseNonTermination(
                    f"exceeded {self.config.max_rounds} chase rounds"
                )
            generation = working.bump_generation()
            sharder.record_generation()
            if encoded:
                sharder.begin_round(delta_rows, since)
                delta_relations = (
                    set(delta_rows) if delta_rows is not None else None
                )
            else:
                sharder.begin_round(delta, since)
                delta_relations = (
                    {fact.relation for fact in delta}
                    if delta is not None
                    else None
                )
            rewrites_this_round = 0
            with rec.span(
                "chase.round", round=stats.rounds, full=since is None
            ) as round_span:
                for index, dependency in enumerate(self.dependencies):
                    if index in dead:
                        stats.enumerations_skipped += 1
                        continue
                    # Delta rounds anchor enumeration on the new facts:
                    # when none of them touch this premise, the sharder
                    # would return zero matches — skip the call.
                    if (
                        delta_relations is not None
                        and self._premise_relations[index]
                        and not (
                            self._premise_relations[index] & delta_relations
                        )
                    ):
                        stats.enumerations_skipped += 1
                        continue
                    rewrites_this_round += apply_dependency(
                        index, dependency, working, factory, stats, sharder,
                        fired_triggers, rec,
                    )
                if encoded:
                    new_rows = working.rows_since(generation)
                    new_count = len(new_rows)
                else:
                    new_facts = set(working.facts_since(generation))
                    new_count = len(new_facts)
                if rec.enabled:
                    round_span.annotate(new_facts=new_count)
            if (
                not self._unguarded
                and self.config.max_facts is not None
                and len(working) > self.config.max_facts
            ):
                raise ChaseNonTermination(
                    f"exceeded {self.config.max_facts} facts"
                )
            if new_count == 0 and rewrites_this_round == 0:
                return
            # Null rewrites change fact identity, so the delta bookkeeping
            # is unreliable: fall back to a full round.  Masks are built
            # once here and shared by every dependency's anchored probes
            # this round (span/contiguity precomputed once per relation).
            if encoded:
                delta_rows = (
                    None
                    if rewrites_this_round
                    else mask_rows(group_rows(new_rows))
                )
            else:
                delta = None if rewrites_this_round else new_facts
            since = None if rewrites_this_round else generation

    def _apply_dependency(
        self,
        index: int,
        dependency: Dependency,
        working: Instance,
        factory: NullFactory,
        stats: ChaseStats,
        sharder: MatchSharder,
        fired_triggers: "_TriggerMemory",
        rec,
    ) -> int:
        """Process one dependency for one round; returns #null-rewrites.

        Phase 1 (*enumerate*) asks the sharder for every premise match —
        possibly fanned across workers.  Phase 2 (*enforce*) replays the
        matches serially in canonical order; when the sharder keeps
        remote replicas, the phase's mutations are recorded so replicas
        stay in lockstep with the working instance.
        """
        compiled = self.compiled[index]
        with rec.span("chase.enumerate", dependency=index) as enum_span:
            matches = sharder.enumerate_matches(index)
            if rec.enabled:
                enum_span.annotate(matches=len(matches))
        if not matches:
            return 0
        stats.premise_matches += len(matches)
        if not dependency.disjuncts:  # denial
            # A denial match is final: the premise is positive, and facts
            # are never retracted, so the violation cannot disappear.
            # Report the canonically-first match so the failure is
            # identical whichever worker found it.
            binding = min(matches, key=_binding_order)
            raise ChaseFailure(
                f"denial {dependency.describe()} fired at "
                f"{_render_binding(binding)}",
                culprit=dependency,
            )
        chosen = dependency.disjuncts[self.branch_choice.get(index, 0)]
        null_map = _NullMap()
        rewrites = 0
        with rec.span("chase.enforce", dependency=index, matches=len(matches)):
            ordered = sorted(matches, key=_binding_order)
            track_events = sharder.wants_replica_events
            if track_events:
                mark = working.bump_generation()
                sharder.record_generation()
            for binding in ordered:
                resolved = {
                    variable: null_map.find(term)
                    for variable, term in binding.items()
                }
                trigger = (
                    index,
                    tuple(resolved[v] for v in sorted(resolved)),
                )
                if self.config.policy == "oblivious":
                    if trigger in fired_triggers:
                        continue
                    fired_triggers.add(trigger)
                elif compiled.satisfied(resolved, working):
                    continue
                self._enforce_disjunct(
                    dependency, chosen, resolved, working, factory, stats,
                    null_map,
                )
            if track_events:
                sharder.record_new_facts(working.facts_since(mark))
            if len(null_map):
                resolution = null_map.resolution()
                rewrites = working.apply_null_map(resolution)
                stats.null_rewrites += rewrites
                sharder.record_null_map(resolution)
        return rewrites

    def _enforce_disjunct(
        self,
        dependency: Dependency,
        disjunct: Disjunct,
        binding: Dict[Variable, Term],
        working: Instance,
        factory: NullFactory,
        stats: ChaseStats,
        null_map: _NullMap,
    ) -> None:
        # 1. Comparisons are checks: failing means this (only) branch is
        #    impossible, i.e. the scenario fails here.
        for comparison in disjunct.comparisons:
            if not _ground_check(comparison, binding):
                raise ChaseFailure(
                    f"{dependency.describe()}: required comparison "
                    f"{comparison} fails at {_render_binding(binding)}",
                    culprit=dependency,
                )
        # 2. Equalities unify.
        for equality in disjunct.equalities:
            left = _resolve(equality.left, binding)
            right = _resolve(equality.right, binding)
            if null_map.union(left, right, dependency.describe()):
                stats.egd_unifications += 1
        # 3. Atoms instantiate with fresh nulls for existentials.
        if disjunct.atoms:
            extended = dict(binding)
            for atom in disjunct.atoms:
                for variable in atom.variables():
                    if variable not in extended:
                        extended[variable] = factory.fresh(hint=variable.name)
                        stats.nulls_created += 1
            for atom in disjunct.atoms:
                fact = Atom(
                    atom.relation,
                    tuple(_resolve(t, extended) for t in atom.terms),
                )
                if working.add(fact):
                    stats.facts_created += 1
            stats.tgd_fires += 1

    # -- encoded pipeline (columnar kernel) --------------------------------

    def _apply_dependency_encoded(
        self,
        index: int,
        dependency: Dependency,
        working: "ColumnarInstance",
        factory: NullFactory,
        stats: ChaseStats,
        sharder: MatchSharder,
        fired_triggers: "_TriggerMemory",
        rec,
    ) -> int:
        """:meth:`_apply_dependency` over encoded premise rows.

        Matches are code tuples aligned to the dependency's
        ``premise_varlist`` (name-sorted, like the canonical binding
        order), sorted by the pool's cached per-code order keys — the
        same total order :func:`_binding_order` produces — so null
        invention and unions are bit-identical to the reference kernel.
        """
        compiled = self.compiled[index]
        with rec.span("chase.enumerate", dependency=index) as enum_span:
            matches = sharder.enumerate_matches(index)
            if rec.enabled:
                enum_span.annotate(matches=len(matches))
        if not matches:
            return 0
        stats.premise_matches += len(matches)
        order_key = working.pool.order_key
        row_order = lambda row: tuple(order_key(code) for code in row)
        varlist = compiled.premise_varlist
        decode = working.decode_term
        if not dependency.disjuncts:  # denial
            row = min(matches, key=row_order)
            binding = {v: decode(code) for v, code in zip(varlist, row)}
            raise ChaseFailure(
                f"denial {dependency.describe()} fired at "
                f"{_render_binding(binding)}",
                culprit=dependency,
            )
        chosen_index = self.branch_choice.get(index, 0)
        null_map = _EncodedNullMap(working)
        find = null_map.find
        parent = null_map._parent
        oblivious = self.config.policy == "oblivious"
        rewrites = 0
        with rec.span("chase.enforce", dependency=index, matches=len(matches)):
            ordered = sorted(matches, key=row_order)
            track_events = sharder.wants_replica_events
            if track_events:
                mark = working.bump_generation()
                sharder.record_generation()
            for row in ordered:
                resolved = (
                    tuple(find(code) if code < 0 else code for code in row)
                    if parent
                    else row
                )
                if oblivious:
                    # The trigger memory is shared with the reference
                    # kernel's digests, so decode the resolved row (hint
                    # differences don't matter: triggers hash nulls by
                    # id, and tuples compare by term equality).
                    trigger = (
                        index,
                        tuple(decode(code) for code in resolved),
                    )
                    if trigger in fired_triggers:
                        continue
                    fired_triggers.add(trigger)
                elif compiled.satisfied_encoded(resolved, working):
                    continue
                self._enforce_disjunct_encoded(
                    index, dependency, chosen_index, resolved, working,
                    factory, stats, null_map,
                )
            if track_events:
                sharder.record_new_facts(
                    working.export_rows(working.rows_since(mark))
                )
            if len(null_map):
                resolution = null_map.resolution()
                rewrites = working.apply_null_map_encoded(resolution)
                stats.null_rewrites += rewrites
                sharder.record_null_map(resolution)
        return rewrites

    def _enforce_disjunct_encoded(
        self,
        index: int,
        dependency: Dependency,
        chosen_index: int,
        row: Tuple[int, ...],
        working: "ColumnarInstance",
        factory: NullFactory,
        stats: ChaseStats,
        null_map: _EncodedNullMap,
    ) -> None:
        kernel = self.compiled[index].disjunct_kernel(chosen_index, working.pool)
        # 1. Comparisons are checks: failing means this (only) branch is
        #    impossible, i.e. the scenario fails here.
        for comparison, check in kernel.comparisons:
            if not check(row):
                decode = working.decode_term
                binding = {
                    v: decode(code)
                    for v, code in zip(
                        self.compiled[index].premise_varlist, row
                    )
                }
                raise ChaseFailure(
                    f"{dependency.describe()}: required comparison "
                    f"{comparison} fails at {_render_binding(binding)}",
                    culprit=dependency,
                )
        # 2. Equalities unify.
        for left_get, right_get in kernel.equalities:
            if null_map.union(
                left_get(row), right_get(row), dependency.describe()
            ):
                stats.egd_unifications += 1
        # 3. Atoms instantiate with fresh nulls for existentials.
        if kernel.atom_templates:
            fresh: List[int] = []
            for hint in kernel.existential_hints:
                null = factory.fresh(hint=hint)
                fresh.append(working.note_null(null))
                stats.nulls_created += 1
            add_encoded = working.add_encoded
            for relation, template in kernel.atom_templates:
                values = tuple(
                    row[value]
                    if kind == 0
                    else (fresh[value] if kind == 1 else value)
                    for kind, value in template
                )
                if add_encoded(relation, values):
                    stats.facts_created += 1
            stats.tgd_fires += 1


def _term_order(term: Term) -> Tuple:
    """Canonical, shift-equivariant sort key for a ground term.

    Nulls order numerically by id (never lexicographically: ``N10`` must
    sort after ``N9``), constants by their representation.  Because the
    key is *numeric* in the null id, uniformly shifting every fresh null
    id — which the speculative disjunctive chase does when it commits a
    prefetched subtree — preserves the relative order of all terms, so
    enforcement order (and hence every invented null) is identical
    whether a node was chased speculatively or in place.

    The single definition lives in :func:`repro.relational.types.term_order_key`
    so the columnar kernel's per-code order cache provably sorts encoded
    rows the same way.
    """
    return term_order_key(term)


def _binding_order(binding: Dict[Variable, Term]) -> Tuple:
    return tuple(sorted((v.name, _term_order(t)) for v, t in binding.items()))


def _render_binding(binding: Dict[Variable, Term]) -> str:
    inside = ", ".join(f"{v}={t}" for v, t in sorted(binding.items()))
    return f"[{inside}]"


def chase(
    dependencies: Sequence[Dependency],
    source_instance: Instance,
    source_relations: Iterable[str] = (),
    target_instance: Optional[Instance] = None,
    config: Optional[ChaseConfig] = None,
) -> ChaseResult:
    """One-shot convenience wrapper around :class:`StandardChase`."""
    engine = StandardChase(dependencies, source_relations, config)
    return engine.run(source_instance, target_instance)
