"""Exception hierarchy for the GROM reproduction.

Every error raised by the library derives from :class:`GromError`, so
callers can catch one type at an API boundary.  Sub-hierarchies mirror
the subsystems: logic kernel, relational substrate, Datalog engine,
rewriter, and chase engine.
"""

from __future__ import annotations

__all__ = [
    "GromError",
    "LogicError",
    "ArityError",
    "UnsafeDependencyError",
    "SchemaError",
    "UnknownRelationError",
    "TypingError",
    "DatalogError",
    "RecursionError_",
    "UnknownPredicateError",
    "RewriteError",
    "UnsupportedViewError",
    "ChaseError",
    "ChaseFailure",
    "ChaseNonTermination",
    "ParseError",
    "VerificationError",
]


class GromError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Logic kernel
# ---------------------------------------------------------------------------


class LogicError(GromError):
    """Malformed logical object (atom, dependency, substitution...)."""


class ArityError(LogicError):
    """An atom was built with the wrong number of terms for its relation."""

    def __init__(self, relation: str, expected: int, got: int) -> None:
        super().__init__(
            f"relation {relation!r} has arity {expected}, got {got} terms"
        )
        self.relation = relation
        self.expected = expected
        self.got = got


class UnsafeDependencyError(LogicError):
    """A dependency violates a safety condition (e.g. unbound variable)."""


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------


class SchemaError(GromError):
    """Invalid schema definition or schema mismatch."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced that the schema does not define."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation {name!r}")
        self.name = name


class TypingError(SchemaError):
    """A value does not conform to the declared attribute type."""


# ---------------------------------------------------------------------------
# Datalog engine
# ---------------------------------------------------------------------------


class DatalogError(GromError):
    """Invalid Datalog program."""


class RecursionError_(DatalogError):
    """The view program is recursive; GROM requires non-recursive Datalog."""


class UnknownPredicateError(DatalogError):
    """A rule body references a predicate that is neither base nor derived."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown predicate {name!r}")
        self.name = name


# ---------------------------------------------------------------------------
# Rewriter
# ---------------------------------------------------------------------------


class RewriteError(GromError):
    """The rewriter could not compile a scenario."""


class UnsupportedViewError(RewriteError):
    """A view definition falls outside the supported language."""


# ---------------------------------------------------------------------------
# Chase engine
# ---------------------------------------------------------------------------


class ChaseError(GromError):
    """Generic chase-engine error."""


class ChaseFailure(ChaseError):
    """The chase failed: an egd equated distinct constants or a denial fired.

    A failing chase is a *result*, not a bug; engines catch this internally
    and report it through :class:`repro.chase.result.ChaseResult`.  It is
    still an exception so low-level steps can abort eagerly.
    """

    def __init__(self, message: str, culprit: object = None) -> None:
        super().__init__(message)
        self.culprit = culprit


class ChaseNonTermination(ChaseError):
    """The chase exceeded its step budget (scenario may not terminate)."""


# ---------------------------------------------------------------------------
# DSL / verification
# ---------------------------------------------------------------------------


class ParseError(GromError):
    """Error while parsing the textual scenario format."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class VerificationError(GromError):
    """A produced solution does not satisfy the original semantic scenario."""
