"""The GROM rewriter: semantic mappings → executable physical dependencies.

Given a :class:`~repro.core.scenario.MappingScenario`, :func:`rewrite`
produces a set of dependencies over the *physical* schemas which is
**sound** in the paper's sense: whenever the rewritten scenario admits a
(universal) solution ``J_T`` over ``I_S``, then ``Υ_T(J_T)`` is a
solution of the original semantic scenario.  Completeness is given up —
exactly the trade-off Section 3 of the paper discusses.

The pipeline (reconstructed from the paper's contract and worked
example, see DESIGN.md §3):

1. Mapping premises stay in terms of the source vocabulary (the chase
   runs on ``I_S ∪ Υ_S(I_S)``, the paper's two-step reduction); with
   ``unfold_source_premises=True`` they are unfolded instead, leaving
   safe source-side negation in premises.
2. Mapping conclusions are unfolded over the target views.  Union views
   yield several conclusion branches (a ded); negated parts of view
   bodies yield *companion* constraints.
3. Target egd premises are unfolded; negated parts move to the
   conclusion as positive existential disjuncts
   (``P ∧ ¬N → C  ≡  P → C | N``) — this is precisely how the paper's
   key constraint ``e0`` becomes the ded ``d0``.
4. Nested negation is eliminated by a worklist that alternates the two
   moves above, introducing auxiliary *requirement predicates*
   (``_grom_req_*``) when a branch of a ded needs its own companion
   constraints.  Nesting depth strictly decreases, so the loop
   terminates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.scenario import MappingScenario
from repro.core.unfold import ExpansionBranch, expand_conjunction
from repro.errors import RewriteError, UnsupportedViewError
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import Dependency, DependencyKind, Disjunct
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, VariableFactory

__all__ = ["rewrite", "RewriteResult", "Provenance", "AUX_PREFIX"]

AUX_PREFIX = "_grom_req_"
"""Prefix of auxiliary requirement relations introduced by the rewriter."""


@dataclass(frozen=True)
class Provenance:
    """Where a rewritten dependency came from."""

    origin: str
    """Name of the original mapping or constraint."""

    views: Tuple[str, ...] = ()
    """Views inlined while producing this dependency."""

    role: str = "main"
    """``main`` for the direct rewriting, ``companion`` for guards and
    auxiliary definitions spawned by negated view bodies."""


@dataclass
class _RichDisjunct:
    """A disjunct that may still carry negated requirements."""

    atoms: Tuple[Atom, ...] = ()
    equalities: Tuple[Equality, ...] = ()
    comparisons: Tuple[Comparison, ...] = ()
    necs: Tuple[NegatedConjunction, ...] = ()

    def variables(self) -> Set[Variable]:
        out: Set[Variable] = set()
        for atom in self.atoms:
            out.update(atom.variables())
        for equality in self.equalities:
            out.update(equality.variables())
        for comparison in self.comparisons:
            out.update(comparison.variables())
        for nec in self.necs:
            out.update(nec.inner.variables())
        return out

    def is_empty(self) -> bool:
        return not (self.atoms or self.equalities or self.comparisons or self.necs)


@dataclass
class _RawDependency:
    """A dependency being normalized (negation not yet eliminated)."""

    premise: Conjunction
    disjuncts: List[_RichDisjunct]
    name: str
    origin: str
    role: str = "main"
    views: Tuple[str, ...] = ()


class RewriteResult:
    """The output of :func:`rewrite`.

    ``dependencies`` is the rewritten set ``Σ_ST ∪ Σ_T``; every
    dependency has negation-free premises except for safe *source-side*
    negation (evaluable against the immutable source).  ``aux_arities``
    lists the auxiliary requirement relations that must be added to the
    execution target schema.
    """

    def __init__(
        self,
        scenario: MappingScenario,
        dependencies: List[Dependency],
        provenance: Dict[str, Provenance],
        aux_arities: Dict[str, int],
    ) -> None:
        self.scenario = scenario
        self.dependencies = dependencies
        self.provenance = provenance
        self.aux_arities = aux_arities

    # -- classification ------------------------------------------------------

    def by_kind(self, kind: DependencyKind) -> List[Dependency]:
        return [d for d in self.dependencies if d.kind is kind]

    def tgds(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.TGD)

    def egds(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.EGD)

    def deds(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.DED)

    def denials(self) -> List[Dependency]:
        return self.by_kind(DependencyKind.DENIAL)

    @property
    def has_deds(self) -> bool:
        return any(d.is_ded() for d in self.dependencies)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for dependency in self.dependencies:
            out[dependency.kind.value] = out.get(dependency.kind.value, 0) + 1
        return out

    # -- vocabularies --------------------------------------------------------

    def source_relations(self) -> FrozenSet[str]:
        """Relations the chase must treat as immutable source input."""
        return frozenset(self.scenario.source_vocabulary())

    def target_relations(self) -> FrozenSet[str]:
        """Physical target relations plus auxiliary requirement relations."""
        return frozenset(self.scenario.target_schema.relation_names()) | frozenset(
            self.aux_arities
        )

    def verifier(
        self, source_instance, parallelism=None
    ) -> "ScenarioVerifier":
        """A soundness verifier for candidate targets of this rewriting.

        All candidates produced from one rewriting share the scenario's
        source side, so the returned
        :class:`~repro.core.verify.ScenarioVerifier` materializes
        ``I_S ∪ Υ_S(I_S)`` once into a shared semantic database and
        verifies each candidate against it.  ``parallelism`` (same spec
        syntax as the chase) lets ``verify_candidates`` fan whole
        candidates across a worker pool.
        """
        from repro.core.verify import ScenarioVerifier

        return ScenarioVerifier(
            self.scenario, source_instance, parallelism=parallelism
        )

    def problematic_views(self) -> List[str]:
        """Views implicated in the production of deds.

        This backs the paper's "GROM supports this process by highlighting
        problematic views" — the views a user should reformulate to avoid
        deds.
        """
        blamed: List[str] = []
        for dependency in self.dependencies:
            if not dependency.is_ded():
                continue
            info = self.provenance.get(dependency.name)
            if info is None:
                continue
            for view in info.views:
                if view not in blamed:
                    blamed.append(view)
        return blamed

    def __repr__(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        return f"RewriteResult({counts})"


# ---------------------------------------------------------------------------
# Disjunct construction helpers
# ---------------------------------------------------------------------------


def _branch_to_disjunct(branch: ExpansionBranch) -> _RichDisjunct:
    conjunction = branch.conjunction
    return _RichDisjunct(
        atoms=conjunction.atoms,
        comparisons=conjunction.comparisons,
        necs=conjunction.negations,
    )


def _expand_disjunct(disjunct, views, factory):
    """Expand one conclusion disjunct over the target views.

    Returns the rich disjuncts (one per expansion branch — union views
    fan out) plus the union of inlined-view names.  The disjunct's
    enforced equalities and comparisons are carried onto every branch.
    """
    branches = expand_conjunction(
        Conjunction(atoms=disjunct.atoms), views, factory
    )
    rich: List[_RichDisjunct] = []
    provenance: List[str] = []
    for branch in branches:
        conjunction = branch.conjunction
        rich.append(
            _RichDisjunct(
                atoms=conjunction.atoms,
                equalities=tuple(disjunct.equalities),
                comparisons=tuple(disjunct.comparisons)
                + conjunction.comparisons,
                necs=conjunction.negations,
            )
        )
        for view in branch.provenance:
            if view not in provenance:
                provenance.append(view)
    return rich, tuple(provenance)


def _nec_to_disjunct(nec: NegatedConjunction) -> _RichDisjunct:
    """Turn a premise NEC into a (positive) conclusion disjunct."""
    inner = nec.inner
    return _RichDisjunct(
        atoms=inner.atoms,
        comparisons=inner.comparisons,
        necs=inner.negations,
    )


def _simplify_disjunct(
    disjunct: _RichDisjunct,
    premise_vars: FrozenSet[Variable],
    context: str,
) -> _RichDisjunct:
    """Resolve comparisons over local (existential) variables.

    Equality comparisons binding a local variable are applied as
    substitutions; order comparisons or disequalities over locals cannot
    be *enforced* by inventing values soundly, so they are rejected with
    a pointer at the offending view (:class:`UnsupportedViewError`).
    """
    changed = True
    current = disjunct
    while changed:
        changed = False
        keep: List[Comparison] = []
        substitution: Optional[Substitution] = None
        for comparison in current.comparisons:
            local_left = (
                isinstance(comparison.left, Variable)
                and comparison.left not in premise_vars
            )
            local_right = (
                isinstance(comparison.right, Variable)
                and comparison.right not in premise_vars
            )
            if not (local_left or local_right):
                keep.append(comparison)
                continue
            if comparison.op == "=" and substitution is None:
                if local_left:
                    substitution = Substitution(
                        {comparison.left: comparison.right}  # type: ignore[dict-item]
                    )
                else:
                    substitution = Substitution(
                        {comparison.right: comparison.left}  # type: ignore[dict-item]
                    )
                changed = True
                continue
            if comparison.op == "=":
                keep.append(comparison)  # handled on the next pass
                continue
            raise UnsupportedViewError(
                f"{context}: cannot enforce comparison {comparison} over an "
                f"existential variable; only equalities can be compiled. "
                f"Reformulate the view so the compared value is determined "
                f"by the mapping."
            )
        if substitution is None:
            current = replace(current, comparisons=tuple(keep))
        else:
            current = _RichDisjunct(
                atoms=tuple(substitution.apply_atom(a) for a in current.atoms),
                equalities=tuple(
                    substitution.apply_equality(e) for e in current.equalities
                ),
                comparisons=tuple(
                    substitution.apply_comparison(c) for c in keep
                ),
                necs=tuple(substitution.apply_negation(n) for n in current.necs),
            )
    return current


# ---------------------------------------------------------------------------
# The normalization worklist
# ---------------------------------------------------------------------------


class _Normalizer:
    """Eliminates negation from raw dependencies (see module docstring)."""

    def __init__(self, source_vocabulary: FrozenSet[str]) -> None:
        self.source_vocabulary = source_vocabulary
        self.aux_arities: Dict[str, int] = {}
        self._aux_counter = itertools.count()
        self.finished: List[Dependency] = []
        self.provenance: Dict[str, Provenance] = {}
        self._name_counter: Dict[str, int] = {}

    # -- helpers ---------------------------------------------------------------

    def _is_source_nec(self, nec: NegatedConjunction) -> bool:
        return nec.inner.relations() <= self.source_vocabulary

    def _unique_name(self, base: str) -> str:
        count = self._name_counter.get(base, 0)
        self._name_counter[base] = count + 1
        return base if count == 0 else f"{base}~{count}"

    def _fresh_aux(self, raw: _RawDependency, variables: Sequence[Variable]) -> Atom:
        name = f"{AUX_PREFIX}{raw.origin}_{next(self._aux_counter)}"
        self.aux_arities[name] = len(variables)
        return Atom(name, tuple(variables))

    # -- main loop ---------------------------------------------------------------

    def run(self, raws: List[_RawDependency]) -> None:
        work = list(raws)
        guard = 0
        budget = 10_000 + 100 * len(raws)
        while work:
            guard += 1
            if guard > budget:
                raise RewriteError(
                    "normalization did not converge (internal error)"
                )
            raw = work.pop(0)
            if self._process_disjunct_necs(raw, work):
                continue
            if self._process_premise_necs(raw, work):
                continue
            self._finalize(raw)

    # -- step 1: disjunct-side NECs -------------------------------------------------

    def _process_disjunct_necs(
        self, raw: _RawDependency, work: List[_RawDependency]
    ) -> bool:
        if not any(d.necs for d in raw.disjuncts):
            return False
        if len(raw.disjuncts) == 1:
            disjunct = raw.disjuncts[0]
            for i, nec in enumerate(disjunct.necs):
                companion_premise = raw.premise.extend(
                    Conjunction(atoms=disjunct.atoms)
                ).extend(nec.inner)
                work.append(
                    _RawDependency(
                        premise=companion_premise,
                        disjuncts=[],
                        name=f"{raw.name}.g{i}",
                        origin=raw.origin,
                        role="companion",
                        views=raw.views,
                    )
                )
            raw.disjuncts = [replace(disjunct, necs=())]
            work.append(raw)
            return True
        # Several disjuncts: companions must be conditional on the branch,
        # so the branch is routed through an auxiliary requirement atom.
        premise_vars = raw.premise.positive_variables()
        for index, disjunct in enumerate(raw.disjuncts):
            if not disjunct.necs:
                continue
            shared = sorted(disjunct.variables() & premise_vars)
            aux_atom = self._fresh_aux(raw, shared)
            # Definition: choosing the branch asserts its positive content.
            work.append(
                _RawDependency(
                    premise=Conjunction(atoms=(aux_atom,)),
                    disjuncts=[replace(disjunct, necs=())],
                    name=f"{raw.name}.b{index}",
                    origin=raw.origin,
                    role="companion",
                    views=raw.views,
                )
            )
            # Guards: the branch's negated requirements, conditional on aux.
            for i, nec in enumerate(disjunct.necs):
                guard_premise = Conjunction(
                    atoms=(aux_atom,) + disjunct.atoms,
                    comparisons=disjunct.comparisons,
                ).extend(nec.inner)
                work.append(
                    _RawDependency(
                        premise=guard_premise,
                        disjuncts=[],
                        name=f"{raw.name}.b{index}.g{i}",
                        origin=raw.origin,
                        role="companion",
                        views=raw.views,
                    )
                )
            raw.disjuncts[index] = _RichDisjunct(atoms=(aux_atom,))
        work.append(raw)
        return True

    # -- step 2: premise-side NECs -------------------------------------------------

    def _process_premise_necs(
        self, raw: _RawDependency, work: List[_RawDependency]
    ) -> bool:
        movable = [
            n for n in raw.premise.negations if not self._is_source_nec(n)
        ]
        if not movable:
            return False
        staying = tuple(
            n for n in raw.premise.negations if self._is_source_nec(n)
        )
        for nec in movable:
            raw.disjuncts.append(_nec_to_disjunct(nec))
        raw.premise = Conjunction(
            raw.premise.atoms, raw.premise.comparisons, staying
        )
        work.append(raw)
        return True

    # -- step 3: finalize -----------------------------------------------------------

    def _finalize(self, raw: _RawDependency) -> None:
        premise = _dedupe_premise(raw.premise)
        # Premise comparisons that are ground decide the dependency's fate.
        kept_comparisons: List[Comparison] = []
        for comparison in premise.comparisons:
            if comparison.is_ground():
                if not comparison.evaluate():
                    return  # premise unsatisfiable: the dependency is vacuous
                continue
            kept_comparisons.append(comparison)
        premise = Conjunction(premise.atoms, tuple(kept_comparisons), premise.negations)
        premise_vars = premise.positive_variables()

        final_disjuncts: List[Disjunct] = []
        seen: Set[Tuple] = set()
        for disjunct in raw.disjuncts:
            simplified = _simplify_disjunct(
                disjunct, premise_vars, context=raw.name or raw.origin
            )
            assert not simplified.necs, "necs must be eliminated before finalize"
            # Trivial/unsatisfiable pieces.
            equalities = tuple(
                e for e in simplified.equalities if not e.is_trivial()
            )
            dropped_unsat = False
            comparisons: List[Comparison] = []
            for comparison in simplified.comparisons:
                if comparison.is_ground():
                    if not comparison.evaluate():
                        dropped_unsat = True
                        break
                    continue
                comparisons.append(comparison)
            if dropped_unsat:
                continue  # this branch can never be used
            if len(equalities) != len(simplified.equalities) and not (
                simplified.atoms or equalities or comparisons
            ):
                # A trivial equality (x = x) makes the disjunct always true,
                # hence the whole dependency holds vacuously.
                return
            candidate = Disjunct(
                atoms=simplified.atoms,
                equalities=equalities,
                comparisons=tuple(comparisons),
            )
            if candidate.is_empty():
                return  # an empty disjunct is `true`: dependency vacuous
            key = (candidate.atoms, candidate.equalities, candidate.comparisons)
            if key not in seen:
                seen.add(key)
                final_disjuncts.append(candidate)

        name = self._unique_name(raw.name)
        dependency = Dependency(premise, tuple(final_disjuncts), name)
        dependency.check_safety()
        self.finished.append(dependency)
        self.provenance[name] = Provenance(
            origin=raw.origin, views=raw.views, role=raw.role
        )


def _dedupe_premise(premise: Conjunction) -> Conjunction:
    seen_atoms: List[Atom] = []
    for atom in premise.atoms:
        if atom not in seen_atoms:
            seen_atoms.append(atom)
    seen_comparisons: List[Comparison] = []
    for comparison in premise.comparisons:
        if comparison not in seen_comparisons:
            seen_comparisons.append(comparison)
    return Conjunction(tuple(seen_atoms), tuple(seen_comparisons), premise.negations)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _collect_avoid(scenario: MappingScenario) -> Set[Variable]:
    avoid: Set[Variable] = set()
    for dependency in list(scenario.mappings) + list(scenario.target_constraints):
        avoid |= dependency.variables()
    for program in (scenario.source_views, scenario.target_views):
        if program is None:
            continue
        for rule in program:
            avoid |= rule.body.variables()
            avoid |= set(rule.head.variables())
    return avoid


def rewrite(
    scenario: MappingScenario,
    unfold_source_premises: bool = False,
) -> RewriteResult:
    """Rewrite a semantic mapping scenario into physical dependencies.

    With the default ``unfold_source_premises=False``, mapping premises
    keep their source-view atoms and the chase is expected to run over
    ``I_S ∪ Υ_S(I_S)`` (see :func:`repro.core.compose.extend_source`).
    With ``True`` the premises are unfolded instead; source-side negation
    then remains in premises (safe: the source never changes during the
    chase).
    """
    factory = VariableFactory(prefix="u", avoid=_collect_avoid(scenario))
    raws: List[_RawDependency] = []

    for mapping in scenario.mappings:
        conclusion = mapping.disjuncts[0]
        conclusion_conjunction = Conjunction(
            atoms=conclusion.atoms, comparisons=conclusion.comparisons
        )
        conclusion_branches = expand_conjunction(
            conclusion_conjunction, scenario.target_views, factory
        )
        if not conclusion_branches:
            raise RewriteError(
                f"mapping {mapping.describe()}: conclusion expands to an "
                f"empty union (no view rule matches)"
            )
        if unfold_source_premises and scenario.source_views is not None:
            premise_branches = expand_conjunction(
                mapping.premise, scenario.source_views, factory
            )
        else:
            premise_branches = [ExpansionBranch(mapping.premise)]
        multiple = len(premise_branches) > 1
        for index, premise_branch in enumerate(premise_branches):
            views = tuple(
                dict.fromkeys(
                    premise_branch.provenance
                    + tuple(
                        v for b in conclusion_branches for v in b.provenance
                    )
                )
            )
            name = mapping.describe()
            if multiple:
                name = f"{name}#p{index}"
            raws.append(
                _RawDependency(
                    premise=premise_branch.conjunction,
                    disjuncts=[_branch_to_disjunct(b) for b in conclusion_branches],
                    name=name,
                    origin=mapping.describe(),
                    views=views,
                )
            )

    for constraint in scenario.target_constraints:
        premise_branches = expand_conjunction(
            constraint.premise, scenario.target_views, factory
        )
        multiple = len(premise_branches) > 1
        for index, branch in enumerate(premise_branches):
            name = constraint.describe()
            if multiple:
                name = f"{name}#p{index}"
            disjuncts: List[_RichDisjunct] = []
            conclusion_views: Tuple[str, ...] = ()
            for original in constraint.disjuncts:
                if original.atoms:
                    # tgd-style constraint (foreign key / inclusion
                    # dependency over the semantic schema): the concluded
                    # view atoms unfold like mapping conclusions do.
                    expanded, views_used = _expand_disjunct(
                        original, scenario.target_views, factory
                    )
                    disjuncts.extend(expanded)
                    conclusion_views = conclusion_views + views_used
                else:
                    disjuncts.append(
                        _RichDisjunct(
                            atoms=original.atoms,
                            equalities=original.equalities,
                            comparisons=original.comparisons,
                        )
                    )
            raws.append(
                _RawDependency(
                    premise=branch.conjunction,
                    disjuncts=disjuncts,
                    name=name,
                    origin=constraint.describe(),
                    views=tuple(
                        dict.fromkeys(branch.provenance + conclusion_views)
                    ),
                )
            )

    normalizer = _Normalizer(frozenset(scenario.source_vocabulary()))
    normalizer.run(raws)
    return RewriteResult(
        scenario,
        normalizer.finished,
        normalizer.provenance,
        normalizer.aux_arities,
    )
