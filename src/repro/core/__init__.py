"""The paper's primary contribution: the semantic-mapping rewriter.

``core`` packages the scenario model (Section 3's inputs), the
polarity-aware view unfolding, the rewriting algorithm producing
tgds/egds/deds/denials over the physical schemas, the static
ded-prediction analysis, the source-view composition reduction, and the
end-to-end soundness verifier.
"""

from repro.core.analysis import DedPrediction, ViewDiagnostic, analyze, predict_deds
from repro.core.compose import (
    extend_source,
    materialize_source_views,
    source_database,
)
from repro.core.rewriter import AUX_PREFIX, Provenance, RewriteResult, rewrite
from repro.core.scenario import MappingScenario
from repro.core.verify import (
    ScenarioVerifier,
    VerificationReport,
    Violation,
    semantic_target,
    verify_solution,
)

__all__ = [
    "MappingScenario",
    "rewrite",
    "RewriteResult",
    "Provenance",
    "AUX_PREFIX",
    "predict_deds",
    "analyze",
    "DedPrediction",
    "ViewDiagnostic",
    "extend_source",
    "materialize_source_views",
    "source_database",
    "ScenarioVerifier",
    "verify_solution",
    "VerificationReport",
    "Violation",
    "semantic_target",
]
