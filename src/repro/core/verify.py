"""End-to-end soundness verification.

The paper's correctness contract for the rewriting is *soundness*:
whenever the rewritten dependencies ``Σ_ST ∪ Σ_T`` admit a universal
solution ``J_T`` over ``I_S``, then ``Υ_T(J_T)`` is a solution for the
original semantic scenario.  This module checks exactly that, given a
produced target instance:

* every mapping tgd of the scenario is satisfied by
  ``I_S ∪ Υ_S(I_S)`` versus ``J_T ∪ Υ_T(J_T)``;
* every target constraint (egd/denial over the semantic schema) is
  satisfied by ``Υ_T(J_T)``.

The verifier is used by the integration tests and by the property-based
soundness suite; it is also exported so downstream users can audit runs.

The source side ``I_S ∪ Υ_S(I_S)`` never depends on the candidate
target, so :class:`ScenarioVerifier` materializes it once (into a
shared :class:`~repro.datalog.evaluate.SemanticDatabase`) and reuses it
across every candidate — verifying k rewritings of one scenario costs
one source materialization, not k.

Per-dependency checks are independent read-only scans, so a verifier
may fan them across a thread pool (``parallelism``); the pool draws
from the same worker budget as the chase's match sharding (see
:mod:`repro.chase.parallel`), and violations are merged back in
dependency order so reports are identical to a serial check.  When many
candidates are checked at once, :meth:`ScenarioVerifier.verify_candidates`
fans *whole candidates* instead — the coarser unit the branch-racing
disjunctive search produces — with reports returned in candidate order.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.compose import source_database
from repro.core.scenario import MappingScenario
from repro.datalog.evaluate import materialize
from repro.logic.atoms import Conjunction
from repro.logic.dependencies import Dependency
from repro.logic.terms import Term, Variable
from repro.relational.instance import Instance
from repro.relational.query import evaluate_iter, exists

__all__ = [
    "Violation",
    "VerificationReport",
    "ScenarioVerifier",
    "verify_solution",
    "semantic_target",
]


@dataclass(frozen=True)
class Violation:
    """One unsatisfied premise match of a dependency."""

    dependency: str
    binding: Tuple[Tuple[Variable, Term], ...]
    reason: str

    def __str__(self) -> str:
        assignment = ", ".join(f"{v}={t}" for v, t in self.binding)
        return f"{self.dependency} violated at [{assignment}]: {self.reason}"


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_solution`."""

    ok: bool
    violations: List[Violation] = field(default_factory=list)
    mappings_checked: int = 0
    constraints_checked: int = 0
    premise_matches: int = 0

    def __str__(self) -> str:
        if self.ok:
            return (
                f"OK ({self.mappings_checked} mappings, "
                f"{self.constraints_checked} constraints, "
                f"{self.premise_matches} premise matches)"
            )
        lines = [f"FAILED with {len(self.violations)} violations:"]
        lines += [f"  {v}" for v in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"  ... {len(self.violations) - 10} more")
        return "\n".join(lines)


def semantic_target(
    scenario: MappingScenario, target_instance: Instance
) -> Instance:
    """``J_T ∪ Υ_T(J_T)``: the semantic view of a produced target."""
    combined = Instance()
    for fact in target_instance:
        combined.add(fact)
    if scenario.target_views is not None:
        for fact in materialize(scenario.target_views, target_instance):
            combined.add(fact)
    return combined


def _check_tgd(
    dependency: Dependency,
    source_side: Instance,
    target_side: Instance,
    violations: List[Violation],
    max_violations: int,
) -> int:
    matched = 0
    frontier = dependency.frontier()
    for binding in evaluate_iter(dependency.premise, source_side):
        matched += 1
        satisfied = False
        for disjunct in dependency.disjuncts:
            seed = {v: t for v, t in binding.items() if v in frontier}
            body = Conjunction(
                atoms=disjunct.atoms, comparisons=disjunct.comparisons
            )
            equalities_ok = all(
                _resolve(e.left, binding) == _resolve(e.right, binding)
                for e in disjunct.equalities
            )
            if equalities_ok and exists(body, target_side, seed=seed):
                satisfied = True
                break
        if not satisfied and len(violations) < max_violations:
            violations.append(
                Violation(
                    dependency.describe(),
                    tuple(sorted(binding.items())),
                    "no conclusion disjunct satisfied",
                )
            )
    return matched


def _resolve(term, binding):
    if isinstance(term, Variable):
        return binding.get(term, term)
    return term


def _check_constraint(
    dependency: Dependency,
    target_side: Instance,
    violations: List[Violation],
    max_violations: int,
) -> int:
    matched = 0
    for binding in evaluate_iter(dependency.premise, target_side):
        matched += 1
        if not dependency.disjuncts:
            if len(violations) < max_violations:
                violations.append(
                    Violation(
                        dependency.describe(),
                        tuple(sorted(binding.items())),
                        "denial premise matched",
                    )
                )
            continue
        satisfied = False
        for disjunct in dependency.disjuncts:
            equalities_ok = all(
                _resolve(e.left, binding) == _resolve(e.right, binding)
                for e in disjunct.equalities
            )
            body = Conjunction(
                atoms=disjunct.atoms, comparisons=disjunct.comparisons
            )
            if equalities_ok and exists(body, target_side, seed=binding):
                satisfied = True
                break
        if not satisfied and len(violations) < max_violations:
            violations.append(
                Violation(
                    dependency.describe(),
                    tuple(sorted(binding.items())),
                    "constraint conclusion not satisfied",
                )
            )
    return matched


class ScenarioVerifier:
    """Soundness checks for many candidate targets of one scenario.

    The source side ``I_S ∪ Υ_S(I_S)`` is materialized once — either
    handed in (``source_side``, typically the chase input the pipeline
    already built) or computed on first use — and shared by every
    :meth:`verify` call.  Only the target side, which differs per
    candidate, is materialized per call.
    """

    def __init__(
        self,
        scenario: MappingScenario,
        source_instance: Instance,
        source_side: Optional[Instance] = None,
        parallelism: Optional[str] = None,
    ) -> None:
        self.scenario = scenario
        self.source_instance = source_instance
        self._source_side = source_side
        self.parallelism = parallelism

    @property
    def source_side(self) -> Instance:
        """``I_S ∪ Υ_S(I_S)``, materialized lazily and kept."""
        if self._source_side is None:
            self._source_side = source_database(
                self.scenario, self.source_instance
            ).instance
        return self._source_side

    def verify(
        self,
        target_instance: Instance,
        max_violations: int = 100,
        _workers: Optional[int] = None,
    ) -> VerificationReport:
        """Check one candidate target against the semantic scenario."""
        report = VerificationReport(ok=True)
        source_side = self.source_side
        target_side = semantic_target(self.scenario, target_instance)

        checks: List[Tuple[str, Dependency]] = [
            ("mapping", m) for m in self.scenario.mappings
        ] + [("constraint", c) for c in self.scenario.target_constraints]

        workers = (
            _workers if _workers is not None else self._check_workers(len(checks))
        )
        if workers > 1:
            outcomes = self._run_parallel(
                checks, source_side, target_side, max_violations, workers
            )
        else:
            outcomes = [
                self._run_check(kind, dependency, source_side, target_side,
                                max_violations)
                for kind, dependency in checks
            ]

        # Merge in dependency order so the report (and its violation
        # prefix under the cap) is identical to a serial check.
        for (kind, _dependency), (matched, violations) in zip(checks, outcomes):
            report.premise_matches += matched
            if kind == "mapping":
                report.mappings_checked += 1
            else:
                report.constraints_checked += 1
            take = max_violations - len(report.violations)
            if take > 0:
                report.violations.extend(violations[:take])

        report.ok = not report.violations
        return report

    def verify_candidates(
        self,
        target_instances: Sequence[Instance],
        max_violations: int = 100,
    ) -> List[VerificationReport]:
        """Check many candidate targets, fanning *whole candidates*.

        The greedy ded sweep's k derived scenarios produce k candidate
        targets; per-candidate checks are far coarser-grained units than
        per-dependency checks, so with a worker budget this fans one
        candidate per worker (each candidate verified serially inside
        its worker) and returns reports in candidate order — identical
        to ``[verify(t) for t in targets]``.  The shared source side is
        materialized once, before the fan-out.
        """
        targets = list(target_instances)
        workers = min(self._candidate_workers(), len(targets))
        if workers <= 1:
            return [
                self.verify(target, max_violations=max_violations)
                for target in targets
            ]
        self.source_side  # materialize once, outside the pool
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="verify-candidate"
        ) as pool:
            futures = [
                pool.submit(
                    self.verify, target, max_violations, 1
                )
                for target in targets
            ]
            return [future.result() for future in futures]

    def _candidate_workers(self) -> int:
        """Thread-pool width for a candidate fan (1 = stay serial)."""
        if self.parallelism is None:
            return 1
        from repro.chase.parallel import parse_parallelism

        mode, workers = parse_parallelism(self.parallelism)
        return 1 if mode == "serial" else workers

    def _check_workers(self, checks: int) -> int:
        """Thread-pool width for this verify call (1 = stay serial)."""
        if self.parallelism is None or checks < 2:
            return 1
        from repro.chase.parallel import parse_parallelism

        mode, workers = parse_parallelism(self.parallelism)
        if mode == "serial":
            return 1
        # Dependency checks share one address space; threads suffice for
        # both the "thread" and "process" chase modes.
        return min(workers, checks)

    @staticmethod
    def _run_check(
        kind: str,
        dependency: Dependency,
        source_side: Instance,
        target_side: Instance,
        max_violations: int,
    ) -> Tuple[int, List[Violation]]:
        violations: List[Violation] = []
        if kind == "mapping":
            matched = _check_tgd(
                dependency, source_side, target_side, violations, max_violations
            )
        else:
            matched = _check_constraint(
                dependency, target_side, violations, max_violations
            )
        return matched, violations

    def _run_parallel(
        self,
        checks: List[Tuple[str, Dependency]],
        source_side: Instance,
        target_side: Instance,
        max_violations: int,
        workers: int,
    ) -> List[Tuple[int, List[Violation]]]:
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="verify-shard"
        ) as pool:
            futures = [
                pool.submit(
                    self._run_check, kind, dependency, source_side,
                    target_side, max_violations,
                )
                for kind, dependency in checks
            ]
            return [future.result() for future in futures]


def verify_solution(
    scenario: MappingScenario,
    source_instance: Instance,
    target_instance: Instance,
    max_violations: int = 100,
    source_side: Optional[Instance] = None,
    parallelism: Optional[str] = None,
) -> VerificationReport:
    """Check that ``target_instance`` solves the original semantic scenario.

    ``target_instance`` should contain physical target facts (auxiliary
    ``_grom_req_*`` relations, if present, are ignored by virtue of not
    being mentioned in the scenario's dependencies).  ``source_side``
    lets callers that already hold ``I_S ∪ Υ_S(I_S)`` (the pipeline's
    chase input) skip its re-materialization; verifying several
    candidates is cheaper still through :class:`ScenarioVerifier`.
    ``parallelism`` fans the per-dependency checks across threads (same
    spec syntax and worker budget as the chase).
    """
    return ScenarioVerifier(
        scenario, source_instance, source_side=source_side,
        parallelism=parallelism,
    ).verify(target_instance, max_violations=max_violations)
