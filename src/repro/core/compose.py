"""The paper's "Variants of the Problem" reduction (Section 3).

When both a source and a target semantic schema exist, GROM reduces the
general semantic-to-semantic problem to the source-to-semantic one by
composing two steps: (i) apply the source view definitions to the source
instance, materializing ``Υ_S(I_S)``; (ii) treat the materialized
instance as a new source database.  :func:`extend_source` implements
step (i); the chase then runs over the returned instance.

The materialization lives in a
:class:`~repro.datalog.evaluate.SemanticDatabase`: callers that check
many candidate targets over one scenario (the verifier, the batch
runtime) keep the database via :func:`source_database` and share the
single incrementally-maintained ``I_S ∪ Υ_S(I_S)`` instead of paying
one cold materialization per candidate.
"""

from __future__ import annotations


from repro.core.scenario import MappingScenario
from repro.datalog.evaluate import SemanticDatabase, materialize
from repro.relational.instance import Instance

__all__ = ["extend_source", "materialize_source_views", "source_database"]


def materialize_source_views(
    scenario: MappingScenario, source_instance: Instance
) -> Instance:
    """``Υ_S(I_S)``: just the source view extents (no base facts)."""
    if scenario.source_views is None:
        return Instance()
    return materialize(scenario.source_views, source_instance)


def source_database(
    scenario: MappingScenario, source_instance: Instance, recorder=None
) -> SemanticDatabase:
    """A live semantic database holding ``I_S ∪ Υ_S(I_S)``.

    Reusable and extendable: feed it more source facts and ``refresh()``
    to maintain the view extents semi-naively rather than rebuilding.
    ``recorder`` attaches a flight recorder before the initial
    materialization so its ``datalog.*`` metrics are captured too.
    """
    database = SemanticDatabase(scenario.source_views)
    if recorder is not None:
        database.set_recorder(recorder)
    database.add_facts(source_instance)
    database.refresh()
    return database


def extend_source(
    scenario: MappingScenario, source_instance: Instance, recorder=None
) -> Instance:
    """``I_S ∪ Υ_S(I_S)``: the instance mapping premises evaluate against.

    Without source views this is a plain copy (schema dropped, since the
    chase working instance mixes vocabularies).  The returned instance
    is freshly built and exclusively the caller's; holders that want to
    keep extending it should use :func:`source_database` instead.
    """
    return source_database(scenario, source_instance, recorder).instance
