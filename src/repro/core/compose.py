"""The paper's "Variants of the Problem" reduction (Section 3).

When both a source and a target semantic schema exist, GROM reduces the
general semantic-to-semantic problem to the source-to-semantic one by
composing two steps: (i) apply the source view definitions to the source
instance, materializing ``Υ_S(I_S)``; (ii) treat the materialized
instance as a new source database.  :func:`extend_source` implements
step (i); the chase then runs over the returned instance.
"""

from __future__ import annotations


from repro.core.scenario import MappingScenario
from repro.datalog.evaluate import materialize
from repro.relational.instance import Instance

__all__ = ["extend_source", "materialize_source_views"]


def materialize_source_views(
    scenario: MappingScenario, source_instance: Instance
) -> Instance:
    """``Υ_S(I_S)``: just the source view extents (no base facts)."""
    if scenario.source_views is None:
        return Instance()
    return materialize(scenario.source_views, source_instance)


def extend_source(
    scenario: MappingScenario, source_instance: Instance
) -> Instance:
    """``I_S ∪ Υ_S(I_S)``: the instance mapping premises evaluate against.

    Without source views this is a plain copy (schema dropped, since the
    chase working instance mixes vocabularies).
    """
    extended = Instance()
    for fact in source_instance:
        extended.add(fact)
    if scenario.source_views is not None:
        materialized = materialize(scenario.source_views, source_instance)
        for fact in materialized:
            extended.add(fact)
    return extended
