"""Static ded-prediction and problematic-view highlighting.

Section 3 of the paper: *"sufficient conditions to avoid the use of deds
in the output mappings have been identified under the form of
restrictions on the use of negations in view definitions.  As a
consequence, the system is able to look at the view definitions and tell
whether the rewritten mappings may contain deds or not."*  And Section 4:
*"GROM supports this process by highlighting problematic views."*

This module reconstructs that analysis.  It mirrors the rewriter's moves
symbolically — without building dependencies — and decides, per mapping
and per constraint, whether the rewriting **may** produce deds:

* an egd over views produces a ded as soon as its premise expansion
  exposes *any* negation (the equality disjunct plus at least one moved
  NEC ≥ 2 disjuncts — exactly the ``e0 → d0`` pattern);
* a mapping produces a ded when its conclusion expands to several
  branches (a union view used positively), or when eliminating nested
  negation yields a requirement with two or more alternatives
  (a NEC whose interior carries ≥ 2 negations after expansion).

The prediction is *sound for ded-freeness*: when it reports "no deds",
the rewriting is guaranteed ded-free.  (In rare corner cases a predicted
ded can collapse during simplification — the paper's phrasing "may
contain deds" allows exactly this conservatism.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.scenario import MappingScenario
from repro.core.unfold import expand_conjunction
from repro.logic.atoms import Conjunction
from repro.logic.terms import VariableFactory

__all__ = ["DedPrediction", "ViewDiagnostic", "predict_deds", "analyze"]


@dataclass(frozen=True)
class ViewDiagnostic:
    """Per-view facts relevant to ded generation."""

    name: str
    union: bool
    direct_negation: bool
    negation_depth: int
    problematic: bool
    reasons: Tuple[str, ...] = ()


@dataclass
class DedPrediction:
    """Outcome of the static analysis."""

    may_have_deds: bool
    culprits: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    """Per offending mapping/constraint: the views to blame."""

    view_diagnostics: Dict[str, ViewDiagnostic] = field(default_factory=dict)

    def problematic_views(self) -> List[str]:
        out: List[str] = []
        for views in self.culprits.values():
            for view in views:
                if view not in out:
                    out.append(view)
        return out


def _branch_nec_info(
    conjunction: Conjunction,
) -> Tuple[int, bool]:
    """(number of NECs, whether enforcing them recursively needs a ded).

    ``conjunction`` is a base-level expansion branch.  Enforcing the
    branch *positively* spawns one companion denial per NEC; a companion
    denial over a premise with ``k`` NECs becomes a ``k``-disjunct
    dependency after the premise NECs move to the conclusion — a ded for
    ``k ≥ 2``.  Each moved NEC is then enforced positively in turn.
    """
    necs = conjunction.negations
    nested_ded = False
    for nec in necs:
        inner_count, inner_ded = _branch_nec_info(nec.inner)
        if inner_count >= 2 or inner_ded:
            nested_ded = True
    return len(necs), nested_ded


def _positive_enforcement_needs_ded(branches) -> Tuple[bool, List[str]]:
    """Whether asserting a conclusion (DNF of branches) may yield a ded."""
    reasons: List[str] = []
    if len(branches) >= 2:
        reasons.append("union view in conclusion")
        culprit_views = [v for b in branches for v in b.provenance]
        return True, list(dict.fromkeys(culprit_views))
    needs = False
    culprits: List[str] = []
    for branch in branches:
        _count, nested = _branch_nec_info(branch.conjunction)
        if nested:
            needs = True
            culprits.extend(branch.provenance)
    return needs, list(dict.fromkeys(culprits))


def _negative_premise_needs_ded(branches, baseline_disjuncts: int) -> Tuple[bool, List[str]]:
    """Whether a constraint premise expansion may yield a ded.

    ``baseline_disjuncts`` is the number of conclusion disjuncts the
    constraint already has (1 for an egd, 0 for a denial).  Every NEC in
    a premise branch adds one disjunct; more than one total ⇒ ded.
    Moved NECs are then enforced positively, which can itself demand
    deds (nested negation with fan-out ≥ 2).
    """
    needs = False
    culprits: List[str] = []
    for branch in branches:
        count, nested = _branch_nec_info(branch.conjunction)
        if count + baseline_disjuncts >= 2 or nested:
            needs = True
            culprits.extend(branch.provenance)
    return needs, list(dict.fromkeys(culprits))


def _view_diagnostics(scenario: MappingScenario) -> Dict[str, ViewDiagnostic]:
    out: Dict[str, ViewDiagnostic] = {}
    for program in (scenario.source_views, scenario.target_views):
        if program is None:
            continue
        for name in program.view_names():
            rules = program.rules_for(name)
            depth = max(rule.body.negation_depth() for rule in rules)
            out[name] = ViewDiagnostic(
                name=name,
                union=program.is_union_view(name),
                direct_negation=any(rule.body.negations for rule in rules),
                negation_depth=depth,
                problematic=False,
            )
    return out


def predict_deds(scenario: MappingScenario) -> DedPrediction:
    """Static prediction of whether rewriting ``scenario`` may yield deds.

    Runs the same symbolic expansion the rewriter uses (no instance data
    involved) and applies the disjunct-counting rules described in the
    module docstring.
    """
    factory = VariableFactory(prefix="a")
    prediction = DedPrediction(may_have_deds=False)
    diagnostics = _view_diagnostics(scenario)

    for mapping in scenario.mappings:
        conclusion = mapping.disjuncts[0]
        branches = expand_conjunction(
            Conjunction(atoms=conclusion.atoms, comparisons=conclusion.comparisons),
            scenario.target_views,
            factory,
        )
        needs, culprits = _positive_enforcement_needs_ded(branches)
        if needs:
            prediction.may_have_deds = True
            prediction.culprits[mapping.describe()] = tuple(culprits)

    for constraint in scenario.target_constraints:
        branches = expand_conjunction(
            constraint.premise, scenario.target_views, factory
        )
        baseline = len(constraint.disjuncts)
        needs, culprits = _negative_premise_needs_ded(branches, baseline)
        # tgd-style constraints (foreign keys over the semantic schema)
        # additionally enforce view atoms positively, like mapping
        # conclusions: union fan-out or nested negation there also means
        # deds.
        for original in constraint.disjuncts:
            if not original.atoms:
                continue
            conclusion_branches = expand_conjunction(
                Conjunction(atoms=original.atoms),
                scenario.target_views,
                factory,
            )
            c_needs, c_culprits = _positive_enforcement_needs_ded(
                conclusion_branches
            )
            if c_needs:
                needs = True
                culprits = list(
                    dict.fromkeys(tuple(culprits) + tuple(c_culprits))
                )
        if needs:
            prediction.may_have_deds = True
            prediction.culprits[constraint.describe()] = tuple(culprits)

    blamed = set(prediction.problematic_views())
    for name, diagnostic in diagnostics.items():
        reasons: List[str] = []
        if name in blamed:
            if diagnostic.union:
                reasons.append("defined as a union")
            if diagnostic.direct_negation or diagnostic.negation_depth:
                reasons.append("uses negation")
        prediction.view_diagnostics[name] = ViewDiagnostic(
            name=name,
            union=diagnostic.union,
            direct_negation=diagnostic.direct_negation,
            negation_depth=diagnostic.negation_depth,
            problematic=name in blamed,
            reasons=tuple(reasons),
        )
    return prediction


def analyze(scenario: MappingScenario) -> Tuple[DedPrediction, "RewriteResult"]:
    """Full report: static prediction cross-checked against actual rewriting.

    Returns the prediction and the :class:`RewriteResult`; the prediction
    is sound, so ``prediction.may_have_deds`` is ``True`` whenever
    ``result.has_deds`` is.
    """
    from repro.core.rewriter import rewrite

    prediction = predict_deds(scenario)
    result = rewrite(scenario)
    return prediction, result
