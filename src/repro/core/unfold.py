"""Polarity-aware view expansion (unfolding) to base-level formulas.

Unfolding replaces view atoms by their definitions until only base
(physical) relations remain.  With conjunctive views this is the classic
view-unfolding algorithm; the complications the paper is about arise
from the richer language:

* a view defined by several rules (**union**) expands, under positive
  polarity, to a *disjunction* of alternatives — the expansion of a
  conjunction is therefore a DNF, a list of :class:`ExpansionBranch`;
* a **negated** view atom expands to the negation of that disjunction,
  i.e. a conjunction of *negated existential conjunctions* (NECs), each
  of which may itself contain nested NECs (negation over derived atoms
  nests arbitrarily, as in the running example's ``UnpopularProduct``);
* constants and repeated variables in rule heads surface as equality
  comparisons on the branch.

Every branch records the views that were inlined to produce it
(*provenance*), which is what lets the analysis module point at the
"problematic views" the paper's GUI highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.datalog.program import ViewProgram
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    NegatedConjunction,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, VariableFactory

__all__ = ["ExpansionBranch", "expand_conjunction", "expand_atom", "expand_negation"]


@dataclass(frozen=True)
class ExpansionBranch:
    """One alternative of a DNF expansion.

    ``conjunction`` only mentions base relations (at every polarity and
    nesting depth); ``provenance`` names the views inlined along the way,
    in inlining order (with repetition collapsed).
    """

    conjunction: Conjunction
    provenance: Tuple[str, ...] = ()

    def extend(self, other: "ExpansionBranch") -> "ExpansionBranch":
        provenance = self.provenance + tuple(
            p for p in other.provenance if p not in self.provenance
        )
        return ExpansionBranch(
            self.conjunction.extend(other.conjunction), provenance
        )


def _bind_head(
    rule_head: Atom, atom: Atom
) -> Optional[Tuple[Substitution, Tuple[Comparison, ...]]]:
    """Match a rule head against the view atom being unfolded.

    Returns the substitution sending head variables to the atom's terms,
    plus equality comparisons for repeated head variables and head
    constants met by outer variables.  Returns ``None`` when a head
    constant clashes with a constant in the atom (the rule cannot
    contribute).
    """
    mapping = {}
    comparisons: List[Comparison] = []
    for head_term, actual in zip(rule_head.terms, atom.terms):
        if isinstance(head_term, Variable):
            bound = mapping.get(head_term)
            if bound is None:
                mapping[head_term] = actual
            elif bound != actual:
                comparisons.append(Comparison("=", bound, actual))
        else:  # constant in the rule head
            if isinstance(actual, Variable):
                comparisons.append(Comparison("=", actual, head_term))
            elif actual != head_term:
                return None
    return Substitution(mapping), tuple(comparisons)


def expand_atom(
    atom: Atom,
    program: Optional[ViewProgram],
    factory: VariableFactory,
) -> List[ExpansionBranch]:
    """Expand a single atom to base level.

    Base atoms pass through unchanged; view atoms produce one branch per
    rule (standardized apart), recursively expanding the rule body.
    """
    if program is None or not program.is_view(atom.relation):
        return [ExpansionBranch(Conjunction(atoms=(atom,)))]
    branches: List[ExpansionBranch] = []
    for rule in program.rules_for(atom.relation):
        binding = _bind_head(rule.head, atom)
        if binding is None:
            continue
        head_sub, head_comparisons = binding
        # Standardize the body's local variables apart.
        locals_ = rule.body.variables() - frozenset(rule.head.variables())
        renaming = {v: factory.fresh(hint=v.name) for v in sorted(locals_)}
        full_sub = head_sub.merge(Substitution(renaming))
        assert full_sub is not None  # domains are disjoint by construction
        bound_body = full_sub.apply_conjunction(rule.body)
        for inner in expand_conjunction(bound_body, program, factory):
            conjunction = inner.conjunction.extend(
                Conjunction(comparisons=head_comparisons)
            )
            provenance = (atom.relation,) + tuple(
                p for p in inner.provenance if p != atom.relation
            )
            branches.append(ExpansionBranch(conjunction, provenance))
    return branches


def expand_negation(
    negation: NegatedConjunction,
    program: Optional[ViewProgram],
    factory: VariableFactory,
) -> Tuple[List[NegatedConjunction], Tuple[str, ...]]:
    """Expand a negated conjunction to base level.

    ``¬(B1 ∨ ... ∨ Bk)`` distributes into ``¬B1 ∧ ... ∧ ¬Bk``: the
    expansion of the inner conjunction (a DNF) yields one NEC per branch.
    Nested negation inside the branches is preserved — this is where the
    arbitrary nesting of the paper's language lives.
    """
    inner_branches = expand_conjunction(negation.inner, program, factory)
    necs: List[NegatedConjunction] = []
    provenance: List[str] = []
    for branch in inner_branches:
        necs.append(NegatedConjunction(branch.conjunction))
        for view in branch.provenance:
            if view not in provenance:
                provenance.append(view)
    return necs, tuple(provenance)


def expand_conjunction(
    conjunction: Conjunction,
    program: Optional[ViewProgram],
    factory: VariableFactory,
) -> List[ExpansionBranch]:
    """Expand a conjunction to a base-level DNF.

    The result is the cross product of the per-atom expansions (union
    views multiply branches), with the conjunction's comparisons carried
    onto every branch and its negations expanded via
    :func:`expand_negation`.
    """
    results = [ExpansionBranch(Conjunction(comparisons=conjunction.comparisons))]
    for atom in conjunction.atoms:
        atom_branches = expand_atom(atom, program, factory)
        results = [
            accumulated.extend(branch)
            for accumulated in results
            for branch in atom_branches
        ]
        if not results:
            return []
    for negation in conjunction.negations:
        necs, provenance = expand_negation(negation, program, factory)
        addition = ExpansionBranch(
            Conjunction(negations=tuple(necs)), provenance
        )
        results = [accumulated.extend(addition) for accumulated in results]
    return results
