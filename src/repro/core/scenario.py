"""Mapping scenarios: the full input of the GROM rewriting problem.

A :class:`MappingScenario` packages exactly the inputs enumerated in
Section 3 of the paper:

* a source relational schema ``S`` and a target relational schema ``T``;
* a source semantic schema ``V_S`` and a target semantic schema ``V_T``,
  given as view programs ``Υ_S``, ``Υ_T`` (either may be absent —
  the running example only has a target semantic schema);
* a set of target constraints ``Σ_{V_T}`` (egds over the semantic
  schema, e.g. keys and functional dependencies);
* the mapping ``Σ_{V_S,V_T}``: source-to-semantic / semantic-to-semantic
  s-t tgds with comparison atoms.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.datalog.program import ViewProgram
from repro.errors import SchemaError, UnsafeDependencyError
from repro.logic.atoms import Conjunction
from repro.logic.dependencies import Dependency, DependencyKind
from repro.relational.schema import Schema

__all__ = ["MappingScenario"]


class MappingScenario:
    """The input of the rewriting problem (Figure 2 of the paper)."""

    def __init__(
        self,
        source_schema: Schema,
        target_schema: Schema,
        mappings: Sequence[Dependency],
        target_views: Optional[ViewProgram] = None,
        source_views: Optional[ViewProgram] = None,
        target_constraints: Sequence[Dependency] = (),
        name: str = "scenario",
    ) -> None:
        self.name = name
        self.source_schema = source_schema
        self.target_schema = target_schema
        self.source_views = source_views
        self.target_views = target_views
        self.mappings: List[Dependency] = list(mappings)
        self.target_constraints: List[Dependency] = list(target_constraints)
        self.validate()

    # -- vocabularies ------------------------------------------------------

    def source_vocabulary(self) -> Set[str]:
        """Relations a mapping premise may mention: source tables + views."""
        names = set(self.source_schema.relation_names())
        if self.source_views is not None:
            names.update(self.source_views.view_names())
        return names

    def target_vocabulary(self) -> Set[str]:
        """Relations a conclusion / constraint may mention."""
        names = set(self.target_schema.relation_names())
        if self.target_views is not None:
            names.update(self.target_views.view_names())
        return names

    def target_view_names(self) -> Set[str]:
        return set(self.target_views.view_names()) if self.target_views else set()

    def source_view_names(self) -> Set[str]:
        return set(self.source_views.view_names()) if self.source_views else set()

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Check vocabulary discipline and dependency shapes.

        Mappings must be s-t tgds: premises over the source vocabulary,
        conclusions over the target vocabulary.  Target constraints must be
        egds, denials, or tgds entirely over the target vocabulary — the
        tgd form covers the foreign-key / inclusion dependencies the
        paper's footnote 1 refers to ("previous papers discuss how to
        handle foreign-key constraints as well").
        """
        if self.source_views is not None:
            if self.source_views.base_schema is not self.source_schema:
                raise SchemaError(
                    "source views must be defined over the source schema"
                )
            self.source_views.validate()
        if self.target_views is not None:
            if self.target_views.base_schema is not self.target_schema:
                raise SchemaError(
                    "target views must be defined over the target schema"
                )
            self.target_views.validate()

        source_vocab = self.source_vocabulary()
        target_vocab = self.target_vocabulary()

        for mapping in self.mappings:
            if mapping.kind is not DependencyKind.TGD:
                raise UnsafeDependencyError(
                    f"mapping {mapping.describe()} must be a tgd, got "
                    f"{mapping.kind}"
                )
            mapping.check_safety()
            self._check_vocabulary(
                mapping.premise, source_vocab, mapping.describe(), "premise"
            )
            for disjunct in mapping.disjuncts:
                unknown = disjunct.relations() - target_vocab
                if unknown:
                    raise SchemaError(
                        f"mapping {mapping.describe()} concludes over unknown "
                        f"target relations {sorted(unknown)}"
                    )

        for constraint in self.target_constraints:
            if constraint.kind not in (
                DependencyKind.EGD,
                DependencyKind.DENIAL,
                DependencyKind.TGD,
                DependencyKind.MIXED,
            ):
                raise UnsafeDependencyError(
                    f"target constraint {constraint.describe()} must be an "
                    f"egd, denial or tgd (foreign key / inclusion "
                    f"dependency), got {constraint.kind}"
                )
            constraint.check_safety()
            self._check_vocabulary(
                constraint.premise,
                target_vocab,
                constraint.describe(),
                "premise",
            )
            for disjunct in constraint.disjuncts:
                unknown = disjunct.relations() - target_vocab
                if unknown:
                    raise SchemaError(
                        f"constraint {constraint.describe()} concludes over "
                        f"unknown target relations {sorted(unknown)}"
                    )

    @staticmethod
    def _check_vocabulary(
        conjunction: Conjunction, vocabulary: Set[str], who: str, where: str
    ) -> None:
        unknown = conjunction.relations() - vocabulary
        if unknown:
            raise SchemaError(
                f"{who}: {where} mentions unknown relations {sorted(unknown)}"
            )

    # -- convenience ------------------------------------------------------------

    def uses_source_views(self) -> bool:
        """Whether any mapping premise mentions a source view."""
        if self.source_views is None:
            return False
        view_names = self.source_view_names()
        return any(
            mapping.premise.relations() & view_names for mapping in self.mappings
        )

    def constraint_names(self) -> List[str]:
        return [c.describe() for c in self.target_constraints]

    def mapping_names(self) -> List[str]:
        return [m.describe() for m in self.mappings]

    def __repr__(self) -> str:
        return (
            f"MappingScenario({self.name!r}, {len(self.mappings)} mappings, "
            f"{len(self.target_constraints)} constraints)"
        )
