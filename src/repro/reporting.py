"""Plain-text table rendering for benchmark harnesses and the CLI.

The benchmark scripts print the same kind of rows the paper's
experiments would tabulate; this module keeps that output aligned and
consistent without pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from repro.runtime.executor import BatchReport
    from repro.runtime.results import TaskRecord

__all__ = [
    "format_table",
    "format_row",
    "Table",
    "batch_summary_table",
    "batch_family_table",
    "batch_slowest_table",
]

Cell = Union[str, int, float, bool, None]


def _render_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_row(cells: Sequence[Cell], widths: Sequence[int]) -> str:
    rendered = [
        _render_cell(cell).rjust(width) if not isinstance(cell, str) else
        _render_cell(cell).ljust(width)
        for cell, width in zip(cells, widths)
    ]
    return "  ".join(rendered)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned table: left-aligned strings, right-aligned numbers."""
    materialized = [list(row) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_render_cell(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(format_row(row, widths))
    return "\n".join(lines)


class Table:
    """Accumulates rows and prints once — convenient inside benchmarks."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Cell]] = []

    def add(self, *cells: Cell) -> None:
        self.rows.append(list(cells))

    def render(self) -> str:
        return format_table(self.headers, self.rows, self.title)

    def print(self) -> None:
        print()
        print(self.render())


# ---------------------------------------------------------------------------
# Batch-run views (consume repro.runtime.results records)
# ---------------------------------------------------------------------------


def batch_summary_table(report: "BatchReport") -> Table:
    """One-row-per-metric overview of a batch run."""
    summary = report.summary
    table = Table(f"Batch run: {report.corpus}", ["metric", "value"])
    table.add("scenarios", summary.total)
    table.add("mode", f"{report.mode} (jobs={report.jobs})")
    table.add("chase sharding", report.parallelism)
    table.add("branch racing", report.branch_parallelism)
    table.add("succeeded", summary.succeeded)
    table.add("chase failures", summary.failed)
    table.add("nonterminated", summary.nonterminated)
    table.add("timeouts", summary.timeouts)
    table.add("errors", summary.errors)
    table.add("verified sound", summary.verified)
    table.add("proven terminating", summary.proven_terminating)
    table.add("guards dropped", summary.guards_dropped)
    if summary.by_termination:
        classes = ", ".join(
            f"{name}={count}"
            for name, count in sorted(summary.by_termination.items())
        )
        table.add("termination classes", classes)
    if summary.dead_dependencies:
        table.add("dead dependencies", summary.dead_dependencies)
    if summary.analysis_errors or summary.analysis_warnings:
        table.add(
            "lint diagnostics",
            f"{summary.analysis_errors} errors,"
            f" {summary.analysis_warnings} warnings",
        )
    table.add("cache hits", f"{summary.cache_hits}/{summary.cache_lookups}")
    table.add("cache hit rate", summary.cache_hit_rate)
    table.add("rewrite seconds", summary.rewrite_seconds)
    table.add("chase seconds", summary.chase_seconds)
    for phase, digest in summary.phase_latencies.items():
        table.add(
            f"{phase} p50/p99 s",
            f"{digest['p50']:.4f}/{digest['p99']:.4f}",
        )
    if summary.kernel_metrics:
        kernel = summary.kernel_metrics
        parts = [
            f"{name.split('.', 1)[1]}={int(kernel[name])}"
            for name in sorted(kernel)
            if name.startswith("kernel.")
        ]
        if parts:
            table.add("kernel", ", ".join(parts))
        if "instance.intern_size" in kernel:
            table.add("intern pool peak", int(kernel["instance.intern_size"]))
    table.add("wall seconds", summary.wall_seconds)
    table.add("scenarios/sec", summary.scenarios_per_second)
    if report.note:
        table.add("note", report.note)
    return table


def batch_family_table(records: Sequence["TaskRecord"]) -> Table:
    """Per-family outcome/timing breakdown of batch task records."""
    table = Table(
        "By family",
        ["family", "runs", "ok", "cache hits", "rewrite s", "chase s"],
    )
    families: List[str] = []
    for record in records:
        if record.family not in families:
            families.append(record.family)
    for family in families:
        mine = [r for r in records if r.family == family]
        table.add(
            family,
            len(mine),
            sum(1 for r in mine if r.ok),
            sum(1 for r in mine if r.cache_hit),
            sum(r.rewrite_seconds for r in mine),
            sum(r.chase_seconds for r in mine),
        )
    return table


def batch_slowest_table(records: Sequence["TaskRecord"], top: int = 5) -> Table:
    """The ``top`` slowest tasks — where a sharding PR should look first."""
    table = Table(
        f"Slowest {top} tasks",
        ["task", "status", "total s", "chase s", "target facts"],
    )
    ranked = sorted(records, key=lambda r: r.total_seconds, reverse=True)
    for record in ranked[:top]:
        table.add(
            record.label,
            record.status,
            record.total_seconds,
            record.chase_seconds,
            record.target_facts,
        )
    return table
