"""Plain-text table rendering for benchmark harnesses and the CLI.

The benchmark scripts print the same kind of rows the paper's
experiments would tabulate; this module keeps that output aligned and
consistent without pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_row", "Table"]

Cell = Union[str, int, float, bool, None]


def _render_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def format_row(cells: Sequence[Cell], widths: Sequence[int]) -> str:
    rendered = [
        _render_cell(cell).rjust(width) if not isinstance(cell, str) else
        _render_cell(cell).ljust(width)
        for cell, width in zip(cells, widths)
    ]
    return "  ".join(rendered)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned table: left-aligned strings, right-aligned numbers."""
    materialized = [list(row) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(_render_cell(cell)))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(format_row(row, widths))
    return "\n".join(lines)


class Table:
    """Accumulates rows and prints once — convenient inside benchmarks."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Cell]] = []

    def add(self, *cells: Cell) -> None:
        self.rows.append(list(cells))

    def render(self) -> str:
        return format_table(self.headers, self.rows, self.title)

    def print(self) -> None:
        print()
        print(self.render())
