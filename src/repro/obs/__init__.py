"""Flight recorder: spans, metrics and phase profiling.

The instrumentation layer behind ``--trace`` and ``grom profile``.
Everything funnels through :class:`FlightRecorder` (span tracer +
metrics registry); the disabled default is :data:`NULL_RECORDER`, whose
operations are no-ops so untraced runs pay a single attribute check.
"""

from repro.obs.jsonl import (
    TRACE_FORMAT_VERSION,
    TraceFile,
    TraceFormatError,
    read_trace,
    trace_records,
    write_trace,
)
from repro.obs.metrics import Histogram, MetricsRegistry, NullMetrics, percentile
from repro.obs.profile import (
    PhaseProfile,
    ProfileReport,
    phase_metrics,
    profile_trace,
    render_profile,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    NullRecorder,
    TraceConfig,
    resolve_recorder,
    span_records,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "TraceConfig",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "resolve_recorder",
    "span_records",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MetricsRegistry",
    "NullMetrics",
    "Histogram",
    "percentile",
    "TraceFile",
    "TraceFormatError",
    "TRACE_FORMAT_VERSION",
    "trace_records",
    "write_trace",
    "read_trace",
    "PhaseProfile",
    "ProfileReport",
    "profile_trace",
    "render_profile",
    "phase_metrics",
]
