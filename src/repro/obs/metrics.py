"""Named counters, gauges and histograms for the flight recorder.

One :class:`MetricsRegistry` per recorder unifies the statistics that
used to live in per-subsystem ad-hoc objects — chase
:class:`~repro.chase.result.ChaseStats` counters, plan-cache compile
counts, rewrite-cache hit/miss tallies, racer branch timings — under
one namespace:

* ``chase.*``   — semantic chase counters; **bit-identical across
  serial/thread/process execution tiers** (the determinism suite
  asserts this).
* ``plan.*``    — plan-cache compiles/recompiles; may legitimately
  differ across tiers (racing threads compile private plans).
* ``instance.*`` — storage-side counters (index builds).
* ``datalog.*`` — semi-naive materialization passes and derived facts.
* ``cache.*``   — rewrite-cache behaviour.
* ``race.*``    — branch-race bookkeeping.

Histograms keep exact ``count``/``sum``/``min``/``max`` and a bounded
sample buffer for quantiles (first ``sample_cap`` observations; the
runs this repo profiles stay far below the cap, and the summary is
explicit about ``count`` vs ``len(samples)`` so truncation is visible).

Merging snapshots is deterministic and commutative for counters and
histograms (sums); gauges take the merged-in value (last write wins in
merge order), which callers keep deterministic by merging workers in a
fixed order.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

__all__ = ["Histogram", "MetricsRegistry", "NullMetrics", "percentile"]

#: Default bound on stored histogram samples (quantile precision only;
#: count/sum/min/max stay exact past it).
DEFAULT_SAMPLE_CAP = 4096


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list (q in [0,100])."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


class Histogram:
    """Exact count/sum/min/max plus a bounded sample buffer."""

    __slots__ = ("count", "total", "min", "max", "samples", "_cap")

    def __init__(self, sample_cap: int = DEFAULT_SAMPLE_CAP) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self._cap = sample_cap

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self._cap:
            self.samples.append(value)

    def quantile(self, q: float) -> Optional[float]:
        if not self.samples:
            return None
        return percentile(self.samples, q)

    def summary(self) -> Dict[str, object]:
        """JSON-safe digest with the p50/p99 the service layer exports."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(50),
            "p99": self.quantile(99),
            "sampled": len(self.samples),
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold another histogram's snapshot (count/sum exact, samples
        concatenated up to the cap)."""
        self.count += int(snapshot.get("count", 0))
        self.total += float(snapshot.get("sum", 0.0))
        for bound, better in (("min", min), ("max", max)):
            value = snapshot.get(bound)
            if value is not None:
                mine = getattr(self, bound)
                setattr(
                    self,
                    bound,
                    float(value) if mine is None else better(mine, float(value)),
                )
        for value in snapshot.get("samples", ()):
            if len(self.samples) >= self._cap:
                break
            self.samples.append(float(value))


class MetricsRegistry:
    """Named counters, gauges and histograms."""

    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms", "_sample_cap")

    def __init__(self, sample_cap: int = DEFAULT_SAMPLE_CAP) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sample_cap = sample_cap

    # -- writing -----------------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(self._sample_cap)
            self._histograms[name] = histogram
        histogram.observe(value)

    # -- reading / shipping ------------------------------------------------

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe copy: what a worker ships to its parent.

        Histograms travel with their raw (bounded) samples so the parent
        can merge and still answer quantile questions.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {
                    "count": histogram.count,
                    "sum": histogram.total,
                    "min": histogram.min,
                    "max": histogram.max,
                    "samples": list(histogram.samples),
                }
                for name, histogram in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Optional[Dict[str, object]]) -> None:
        """Fold a worker's snapshot in: counters/histograms add, gauges
        take the incoming value."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, digest in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(self._sample_cap)
                self._histograms[name] = histogram
            histogram.merge(digest)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class NullMetrics:
    """The disabled registry: every operation is a no-op."""

    enabled = False

    __slots__ = ()

    def count(self, _name: str, _value: float = 1) -> None:
        pass

    def gauge(self, _name: str, _value: float) -> None:
        pass

    def observe(self, _name: str, _value: float) -> None:
        pass

    def counter_value(self, _name: str) -> float:
        return 0

    def histogram(self, _name: str) -> None:
        return None

    def snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, _snapshot) -> None:
        pass

    def __len__(self) -> int:
        return 0
