"""The flight recorder: one span tracer + one metrics registry.

:class:`FlightRecorder` is the object instrumented code talks to; the
disabled default is the shared :data:`NULL_RECORDER`, whose every
operation is a no-op — hot paths guard bigger instrumentation blocks
with ``if recorder.enabled:`` (a single attribute check) and otherwise
just call through.

Configuration travels as :class:`TraceConfig`, a frozen, picklable
dataclass that rides on :class:`~repro.chase.engine.ChaseConfig` and
:class:`~repro.runtime.executor.BatchOptions` — pool and fork workers
rebuild their own recorder from it and ship the result home as a
*payload* (:meth:`FlightRecorder.to_payload`), which the parent merges
deterministically (:meth:`FlightRecorder.merge_payload`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import (
    DEFAULT_SAMPLE_CAP,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import DEFAULT_MAX_SPANS, NullTracer, Tracer

__all__ = [
    "TraceConfig",
    "FlightRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "resolve_recorder",
]

PAYLOAD_VERSION = 1


@dataclass(frozen=True)
class TraceConfig:
    """Picklable tracing knobs (rides on ChaseConfig / BatchOptions)."""

    enabled: bool = False
    max_spans: int = DEFAULT_MAX_SPANS
    """Per-recorder span budget; past it spans are counted, not stored."""
    sample_cap: int = DEFAULT_SAMPLE_CAP
    """Histogram sample buffer bound (quantile precision only)."""

    def recorder(self, worker: str = "main") -> "FlightRecorder":
        """A recorder honouring this config (the null one when disabled)."""
        if not self.enabled:
            return NULL_RECORDER
        return FlightRecorder(
            worker=worker, max_spans=self.max_spans, sample_cap=self.sample_cap
        )


class FlightRecorder:
    """Span tracer + metrics registry behind one ``enabled`` flag."""

    enabled = True

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        worker: str = "main",
        max_spans: int = DEFAULT_MAX_SPANS,
        sample_cap: int = DEFAULT_SAMPLE_CAP,
    ) -> None:
        self.tracer = Tracer(worker=worker, max_spans=max_spans)
        self.metrics = MetricsRegistry(sample_cap=sample_cap)

    # -- instrumentation surface ------------------------------------------

    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def count(self, name: str, value: float = 1) -> None:
        self.metrics.count(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- worker shipping ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """Everything recorded so far, as one JSON/pickle-safe dict."""
        return {
            "version": PAYLOAD_VERSION,
            "worker": self.tracer.worker,
            "spans": list(self.tracer.records),
            "dropped_spans": self.tracer.dropped,
            "metrics": self.metrics.snapshot(),
        }

    def merge_payload(
        self,
        payload: Optional[Dict[str, object]],
        worker: Optional[str] = None,
        parent: Optional[int] = None,
    ) -> None:
        """Adopt a worker payload: spans re-parent under the current
        span, counters/histograms add, gauges take the incoming value.

        Deterministic as long as the caller merges workers in a fixed
        order (connection order for the sharder, canonical branch order
        for the race) — which they do.
        """
        if not payload:
            return
        self.tracer.merge_records(
            payload.get("spans", ()), worker=worker, parent=parent
        )
        dropped = payload.get("dropped_spans", 0)
        if dropped:
            self.tracer.dropped += dropped
        self.metrics.merge_snapshot(payload.get("metrics"))


class NullRecorder:
    """The disabled recorder; shared singleton :data:`NULL_RECORDER`."""

    enabled = False

    __slots__ = ()

    tracer = NullTracer()
    metrics = NullMetrics()

    def span(self, _name: str, **_attrs):
        return self.tracer.span(_name)

    def count(self, _name: str, _value: float = 1) -> None:
        pass

    def gauge(self, _name: str, _value: float) -> None:
        pass

    def observe(self, _name: str, _value: float) -> None:
        pass

    def to_payload(self) -> None:
        return None

    def merge_payload(self, _payload, worker=None, parent=None) -> None:
        pass


NULL_RECORDER = NullRecorder()


def resolve_recorder(
    recorder: Optional[object], config: Optional[TraceConfig]
) -> object:
    """The recorder an engine should use: an explicitly-passed one wins
    (the caller owns the trace), else one built from ``config``, else
    the shared null recorder."""
    if recorder is not None:
        return recorder
    if config is not None and config.enabled:
        return config.recorder()
    return NULL_RECORDER


def span_records(payload_or_recorder) -> List[dict]:
    """Span records from a recorder or a payload dict (test helper)."""
    if payload_or_recorder is None:
        return []
    if isinstance(payload_or_recorder, dict):
        return list(payload_or_recorder.get("spans", ()))
    return list(payload_or_recorder.tracer.records)
