"""The on-disk trace format: one JSON record per line.

A trace file is a stream of typed records:

* ``{"type": "meta", "version": 1, ...}`` — exactly one, first line:
  tool/command identity, corpus, wall-clock seconds, span counts.
* ``{"type": "span", "id", "parent", "name", "start", "end",
  "worker", "attrs"}`` — one per finished span.  ``start``/``end`` are
  seconds **relative to the trace origin** (the earliest span start),
  so readers never see raw monotonic-clock values.
* ``{"type": "counter"|"gauge", "name", "value"}`` — final registry
  values.
* ``{"type": "histogram", "name", "count", "sum", "min", "max",
  "p50", "p99", "sampled"}`` — histogram digests.

The stream is append-friendly (a crashed run still leaves a parseable
prefix) and standard-tooling-friendly (``jq``, pandas).  ``read_trace``
validates every record against this schema and raises
:class:`TraceFormatError` on violations — ``grom profile`` surfaces
that as a clean error instead of a stack trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceFormatError",
    "TraceFile",
    "trace_records",
    "write_trace",
    "read_trace",
]

TRACE_FORMAT_VERSION = 1

_SPAN_REQUIRED = ("id", "name", "start", "end", "worker")
_METRIC_KINDS = ("counter", "gauge", "histogram")


class TraceFormatError(ValueError):
    """A trace file violated the JSONL schema."""


@dataclass
class TraceFile:
    """A parsed trace: meta header, spans, and final metric values."""

    meta: Dict[str, object]
    spans: List[dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, dict] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        recorded = self.meta.get("wall_seconds")
        if recorded is not None:
            return float(recorded)
        if not self.spans:
            return 0.0
        return max(s["end"] for s in self.spans) - min(
            s["start"] for s in self.spans
        )


def trace_records(
    recorder, meta: Optional[Dict[str, object]] = None
) -> List[dict]:
    """A recorder's state as the list of JSONL records of one trace.

    Span times are rebased so the earliest span starts at 0.0.
    """
    payload = recorder.to_payload() or {}
    spans = payload.get("spans", [])
    origin = min((s["start"] for s in spans), default=0.0)
    header: Dict[str, object] = {
        "type": "meta",
        "version": TRACE_FORMAT_VERSION,
        "tool": "grom",
        "spans": len(spans),
        "dropped_spans": payload.get("dropped_spans", 0),
    }
    if meta:
        header.update(meta)
    out: List[dict] = [header]
    for span in spans:
        record = {
            "type": "span",
            "id": span["id"],
            "parent": span.get("parent"),
            "name": span["name"],
            "start": round(span["start"] - origin, 9),
            "end": round(span["end"] - origin, 9),
            "worker": span.get("worker", "main"),
        }
        attrs = span.get("attrs")
        if attrs:
            record["attrs"] = attrs
        out.append(record)
    metrics = payload.get("metrics", {})
    for name in sorted(metrics.get("counters", {})):
        out.append(
            {"type": "counter", "name": name, "value": metrics["counters"][name]}
        )
    for name in sorted(metrics.get("gauges", {})):
        out.append(
            {"type": "gauge", "name": name, "value": metrics["gauges"][name]}
        )
    histograms = metrics.get("histograms", {})
    for name in sorted(histograms):
        digest = histograms[name]
        samples = digest.get("samples", [])
        summary = {
            "type": "histogram",
            "name": name,
            "count": digest.get("count", len(samples)),
            "sum": digest.get("sum", 0.0),
            "min": digest.get("min"),
            "max": digest.get("max"),
            "p50": _nearest_rank(samples, 50),
            "p99": _nearest_rank(samples, 99),
            "sampled": len(samples),
        }
        out.append(summary)
    return out


def _nearest_rank(samples, q: float) -> Optional[float]:
    if not samples:
        return None
    from repro.obs.metrics import percentile

    return percentile(list(samples), q)


def write_trace(
    path, recorder, meta: Optional[Dict[str, object]] = None
) -> int:
    """Serialize ``recorder`` to ``path``; returns the record count."""
    records = trace_records(recorder, meta)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as stream:
        for record in records:
            stream.write(json.dumps(record, sort_keys=True))
            stream.write("\n")
    return len(records)


def _validate_span(record: dict, line_number: int) -> None:
    for key in _SPAN_REQUIRED:
        if key not in record:
            raise TraceFormatError(
                f"line {line_number}: span record missing {key!r}"
            )
    if not isinstance(record["name"], str):
        raise TraceFormatError(f"line {line_number}: span name must be a string")
    start, end = record["start"], record["end"]
    if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
        raise TraceFormatError(
            f"line {line_number}: span start/end must be numbers"
        )
    if end < start:
        raise TraceFormatError(
            f"line {line_number}: span {record['name']!r} ends before it starts"
        )


def read_trace(path) -> TraceFile:
    """Parse and validate a trace file written by :func:`write_trace`."""
    meta: Optional[Dict[str, object]] = None
    trace: Optional[TraceFile] = None
    with Path(path).open() as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TraceFormatError(
                    f"line {line_number}: not valid JSON ({exc})"
                ) from None
            if not isinstance(record, dict) or "type" not in record:
                raise TraceFormatError(
                    f"line {line_number}: expected an object with a 'type' key"
                )
            kind = record["type"]
            if meta is None:
                if kind != "meta":
                    raise TraceFormatError(
                        "first record must be the meta header"
                    )
                if record.get("version") != TRACE_FORMAT_VERSION:
                    raise TraceFormatError(
                        f"unsupported trace version {record.get('version')!r} "
                        f"(expected {TRACE_FORMAT_VERSION})"
                    )
                meta = record
                trace = TraceFile(meta=record)
                continue
            assert trace is not None
            if kind == "meta":
                raise TraceFormatError(
                    f"line {line_number}: duplicate meta header"
                )
            if kind == "span":
                _validate_span(record, line_number)
                trace.spans.append(record)
            elif kind == "counter":
                trace.counters[str(record["name"])] = float(record["value"])
            elif kind == "gauge":
                trace.gauges[str(record["name"])] = float(record["value"])
            elif kind == "histogram":
                trace.histograms[str(record["name"])] = record
            else:
                raise TraceFormatError(
                    f"line {line_number}: unknown record type {kind!r} "
                    f"(expected span or one of {_METRIC_KINDS})"
                )
    if trace is None:
        raise TraceFormatError(f"{path}: empty trace (no meta header)")
    return trace
