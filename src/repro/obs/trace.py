"""Nested, monotonic-clock span tracing for the flight recorder.

A :class:`Tracer` records a tree of timed spans.  Spans are opened as
context managers::

    with tracer.span("chase.round", round=3):
        ...

and recorded *flat* on close — each finished span is one plain dict
(``id``, ``parent``, ``name``, ``start``, ``end``, ``worker``,
``attrs``) so a whole trace serializes to JSONL without walking a tree
and merges across processes by re-identifying ids.

Times are raw :func:`time.perf_counter` readings; only differences are
meaningful, and the JSONL writer rebases them against the trace origin.
On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which forked workers
share, so merged parent/child traces stay on one coherent timeline
(elsewhere durations remain exact and only cross-process alignment is
approximate).

The disabled path is :class:`NullTracer`: ``span()`` returns one shared
no-op context manager, so instrumented code pays a single attribute
check (``tracer.enabled``) or one trivially-inlined method call when
tracing is off.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: Default bound on recorded spans per tracer; past it, spans are
#: counted as dropped instead of recorded (a trace must never be the
#: thing that exhausts memory on a pathological run).
DEFAULT_MAX_SPANS = 100_000


class Span:
    """An open span; finished by its ``with`` block."""

    __slots__ = ("_tracer", "id", "parent", "name", "start", "attrs", "_recorded")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent: Optional[int],
        name: str,
        attrs: Optional[dict],
        recorded: bool,
    ) -> None:
        self._tracer = tracer
        self.id = span_id
        self.parent = parent
        self.name = name
        self.attrs = attrs
        self._recorded = recorded
        self.start = time.perf_counter()

    def annotate(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. match counts)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is not None:
            self.annotate(error=exc_type.__name__)
        self._tracer._finish(self)
        return False


class _NullSpan:
    """The shared do-nothing span of :class:`NullTracer`."""

    __slots__ = ()

    def annotate(self, **_attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans as flat records.

    Not thread-safe: one tracer belongs to one thread of control.
    Worker threads/processes record into their own tracer and the
    parent merges the finished records (:meth:`merge_records`), which
    is how the parallel chase ships worker spans home.
    """

    enabled = True

    __slots__ = ("worker", "_records", "_stack", "_next_id", "_max_spans", "dropped")

    def __init__(
        self, worker: str = "main", max_spans: int = DEFAULT_MAX_SPANS
    ) -> None:
        self.worker = worker
        self._records: List[dict] = []
        self._stack: List[int] = []
        self._next_id = 0
        self._max_spans = max_spans
        self.dropped = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a nested span; finished when its ``with`` block exits."""
        parent = self._stack[-1] if self._stack else None
        recorded = len(self._records) + len(self._stack) < self._max_spans
        span = Span(
            self,
            self._next_id,
            parent,
            name,
            attrs or None,
            recorded,
        )
        self._next_id += 1
        self._stack.append(span.id)
        return span

    def _finish(self, span: Span) -> None:
        # Unwind to this span: an exception may have skipped inner
        # __exit__ calls (they have not — context managers unwind — but
        # a hand-held span closed out of order must not corrupt nesting).
        while self._stack and self._stack[-1] != span.id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if not span._recorded:
            self.dropped += 1
            return
        record = {
            "id": span.id,
            "parent": span.parent,
            "name": span.name,
            "start": span.start,
            "end": time.perf_counter(),
            "worker": self.worker,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._records.append(record)

    @property
    def current_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def add_raw(
        self,
        name: str,
        start: float,
        end: float,
        worker: Optional[str] = None,
        parent: Optional[int] = None,
        **attrs,
    ) -> int:
        """Record an already-timed span (after-the-fact bookkeeping)."""
        span_id = self._next_id
        self._next_id += 1
        if len(self._records) >= self._max_spans:
            self.dropped += 1
            return span_id
        record = {
            "id": span_id,
            "parent": parent if parent is not None else self.current_id,
            "name": name,
            "start": start,
            "end": end,
            "worker": worker if worker is not None else self.worker,
        }
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)
        return span_id

    # -- merging (worker span trees -> the parent trace) -------------------

    def merge_records(
        self,
        records: Sequence[dict],
        worker: Optional[str] = None,
        parent: Optional[int] = None,
    ) -> None:
        """Adopt finished span records from another tracer.

        Ids are re-assigned (the two tracers numbered independently);
        parentless spans are attached under ``parent`` (default: the
        caller's currently-open span).  ``worker`` relabels spans that
        carried the generic ``main`` label — a branch chased in a fork
        recorded itself as its own main — while spans that already carry
        a specific worker label keep it.  Merge order is the record
        order, so merging is deterministic whenever the caller iterates
        workers in a fixed order.
        """
        attach_to = parent if parent is not None else self.current_id
        # Two passes: records arrive in *completion* order, so a child
        # precedes its parent — ids must all be assigned before parent
        # references can be remapped, or every span would be re-rooted.
        id_map: Dict[int, int] = {}
        adopted_records: List[dict] = []
        for record in records:
            if len(self._records) + len(adopted_records) >= self._max_spans:
                self.dropped += 1
                continue
            id_map[record["id"]] = self._next_id
            self._next_id += 1
            adopted_records.append(record)
        for record in adopted_records:
            old_parent = record.get("parent")
            adopted = dict(record)
            adopted["id"] = id_map[record["id"]]
            adopted["parent"] = (
                id_map.get(old_parent, attach_to)
                if old_parent is not None
                else attach_to
            )
            if worker is not None and record.get("worker") == "main":
                adopted["worker"] = worker
            self._records.append(adopted)

    # -- reading -----------------------------------------------------------

    @property
    def records(self) -> List[dict]:
        """Finished span records, in completion order."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    worker = "main"
    dropped = 0

    __slots__ = ()

    def span(self, _name: str, **_attrs) -> _NullSpan:
        return _NULL_SPAN

    def add_raw(self, *_args, **_kwargs) -> int:
        return -1

    def merge_records(self, *_args, **_kwargs) -> None:
        pass

    @property
    def current_id(self) -> Optional[int]:
        return None

    @property
    def records(self) -> List[dict]:
        return []

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
