"""Aggregate a trace into a self-time-sorted phase profile.

``grom profile run.jsonl`` answers "where did the time go?": per span
name it reports call count, total (inclusive) time, **self time**
(inclusive minus time attributed to child spans, clamped at zero — the
number worth sorting by), and p50/p99 of per-span durations.  A footer
reconciles the profile against wall clock: the summed self-times of the
coordinating worker should cover the root span's duration, and the
``coverage`` ratio makes missing instrumentation visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.jsonl import TraceFile
from repro.obs.metrics import percentile

__all__ = [
    "PhaseProfile",
    "ProfileReport",
    "profile_trace",
    "render_profile",
    "phase_metrics",
]


@dataclass
class PhaseProfile:
    """Aggregated timing for one span name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_time: float = 0.0
    durations: List[float] = field(default_factory=list)
    workers: set = field(default_factory=set)

    @property
    def p50(self) -> Optional[float]:
        return percentile(self.durations, 50) if self.durations else None

    @property
    def p99(self) -> Optional[float]:
        return percentile(self.durations, 99) if self.durations else None


@dataclass
class ProfileReport:
    """A full profile: phases (self-time descending) plus reconciliation."""

    phases: List[PhaseProfile]
    wall_seconds: float
    main_self_seconds: float
    span_count: int
    workers: List[str]

    @property
    def coverage(self) -> Optional[float]:
        """Fraction of wall clock covered by coordinator self-times."""
        if not self.wall_seconds:
            return None
        return self.main_self_seconds / self.wall_seconds


def profile_trace(trace: TraceFile) -> ProfileReport:
    """Aggregate the spans of a parsed trace into per-name phases."""
    spans = trace.spans
    # Time attributed to children, per parent span id.  Only same-worker
    # children subtract from self time: a forked worker's span runs
    # concurrently with its parent, so its duration is not time the
    # parent itself lost.
    child_time: Dict[object, float] = {}
    by_id = {span["id"]: span for span in spans}
    for span in spans:
        parent = span.get("parent")
        if parent is None:
            continue
        parent_span = by_id.get(parent)
        if parent_span is None:
            continue
        if parent_span.get("worker") != span.get("worker"):
            continue
        child_time[parent] = child_time.get(parent, 0.0) + (
            span["end"] - span["start"]
        )

    phases: Dict[str, PhaseProfile] = {}
    main_self = 0.0
    workers = set()
    # Roots: spans with no (recorded) parent.  Wall is the envelope of
    # the coordinator's roots; the CLI writes an explicit root span, so
    # in practice this is that span's duration.
    root_start: Optional[float] = None
    root_end: Optional[float] = None
    for span in spans:
        name = span["name"]
        worker = span.get("worker", "main")
        workers.add(worker)
        duration = span["end"] - span["start"]
        self_time = max(0.0, duration - child_time.get(span["id"], 0.0))
        phase = phases.get(name)
        if phase is None:
            phase = phases[name] = PhaseProfile(name=name)
        phase.count += 1
        phase.total += duration
        phase.self_time += self_time
        phase.durations.append(duration)
        phase.workers.add(worker)
        if worker == "main":
            main_self += self_time
        parent = span.get("parent")
        if parent is None or parent not in by_id:
            if root_start is None or span["start"] < root_start:
                root_start = span["start"]
            if root_end is None or span["end"] > root_end:
                root_end = span["end"]

    wall = trace.wall_seconds
    if not wall and root_start is not None and root_end is not None:
        wall = root_end - root_start
    ordered = sorted(phases.values(), key=lambda p: (-p.self_time, p.name))
    return ProfileReport(
        phases=ordered,
        wall_seconds=wall,
        main_self_seconds=main_self,
        span_count=len(spans),
        workers=sorted(workers),
    )


def phase_metrics(report: ProfileReport) -> Dict[str, object]:
    """A trend-comparable digest of a profile (for ``BENCH_*.json``).

    Leaf names carry the ``_seconds``/``p50``/``p99``/``coverage``
    markers ``benchmarks/trend.py`` uses to assign polarity, so a traced
    CI batch feeds straight into the rolling-median regression check.
    """
    return {
        "wall_seconds": report.wall_seconds,
        "coordinator_self_seconds": report.main_self_seconds,
        "coverage": report.coverage if report.coverage is not None else 0.0,
        "span_count": report.span_count,
        "phases": {
            phase.name: {
                "calls": phase.count,
                "self_seconds": phase.self_time,
                "total_seconds": phase.total,
                "p50_seconds": phase.p50 if phase.p50 is not None else 0.0,
                "p99_seconds": phase.p99 if phase.p99 is not None else 0.0,
            }
            for phase in report.phases
        },
    }


def render_profile(
    report: ProfileReport,
    trace: Optional[TraceFile] = None,
    top: Optional[int] = None,
) -> str:
    """The ``grom profile`` output: phase table + reconciliation footer
    (+ counters when the trace carries them)."""
    from repro.reporting import format_table

    phases: Sequence[PhaseProfile] = report.phases
    dropped = 0
    if top is not None and len(phases) > top:
        dropped = len(phases) - top
        phases = phases[:top]
    rows = []
    for phase in phases:
        share = (
            phase.self_time / report.wall_seconds if report.wall_seconds else None
        )
        rows.append(
            [
                phase.name,
                phase.count,
                round(phase.self_time, 4),
                f"{share * 100:.1f}%" if share is not None else "-",
                round(phase.total, 4),
                round(phase.p50, 4) if phase.p50 is not None else None,
                round(phase.p99, 4) if phase.p99 is not None else None,
                len(phase.workers),
            ]
        )
    lines = [
        format_table(
            ["phase", "calls", "self_s", "self%", "total_s", "p50_s", "p99_s", "workers"],
            rows,
            title="Phase profile (self-time descending)",
        )
    ]
    if dropped:
        lines.append(f"... {dropped} more phase(s); use --top to widen")
    coverage = report.coverage
    lines.append("")
    lines.append(
        "wall {:.4f}s  coordinator self {:.4f}s  coverage {}  spans {}  workers {}".format(
            report.wall_seconds,
            report.main_self_seconds,
            f"{coverage * 100:.1f}%" if coverage is not None else "-",
            report.span_count,
            len(report.workers),
        )
    )
    if trace is not None and (trace.counters or trace.gauges):
        # One merged table: counters (monotone sums) and gauges (final
        # levels, e.g. ``instance.intern_size``) share the namespace.
        merged = dict(trace.counters)
        merged.update(trace.gauges)
        metric_rows = [[name, merged[name]] for name in sorted(merged)]
        lines.append("")
        lines.append(format_table(["counter", "value"], metric_rows))
    return "\n".join(lines)
