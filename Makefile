PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test ci-test bench fuzz example batch lint scenario-lint help

help:
	@echo "make test      - full suite (tier-1: tests + benchmarks)"
	@echo "make ci-test   - fast suite (benchmarks excluded by marker)"
	@echo "make bench     - benchmark suite only"
	@echo "make fuzz      - deep hypothesis profile over the property suites"
	@echo "make example   - regenerate examples/running_example.grom"
	@echo "make batch     - run the default batch corpus end to end"
	@echo "make lint      - determinism AST lint + ruff (when installed)"
	@echo "make scenario-lint - grom lint over examples/ and the default corpus"

test:
	$(PYTHON) -m pytest -x -q

ci-test:
	$(PYTHON) -m pytest -x -q -m "not bench"

bench:
	$(PYTHON) -m pytest benchmarks -q

# Nightly-style fuzzing: hundreds of fresh random examples per property
# (the CI run uses the fixed "ci" profile instead).  A failure prints
# the falsifying example; pin it as an @example line in the test file.
fuzz:
	HYPOTHESIS_PROFILE=deep $(PYTHON) -m pytest -q \
		tests/test_properties.py tests/test_property_parallel.py \
		tests/test_dsl_roundtrip.py

# The shipped DSL artifact is generated, never hand-edited: regenerate it
# from scenarios/running_example.py whenever the example or the
# serializer changes, so file and code cannot drift apart.
example:
	$(PYTHON) -m repro.cli export-example examples/running_example.grom

batch:
	$(PYTHON) -m repro.cli batch mixed --cache-dir .grom-cache --results batch-results.jsonl

# The merge paths of the parallel chase, the branch racer and the
# flight recorder promise bit-identical output; the AST lint rejects
# raw set iteration there.  ruff runs too when present (CI always has
# it; the dev container may not).
lint:
	$(PYTHON) tools/lint_determinism.py
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/ tests/ benchmarks/; \
	else \
		echo "ruff not installed; skipping (the CI lint job runs it)"; \
	fi

# Static mapping analysis over everything we ship: error-severity
# diagnostics fail the build.
scenario-lint:
	$(PYTHON) -m repro.cli lint examples/*.grom --corpus mixed
