PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test ci-test bench example batch help

help:
	@echo "make test      - full suite (tier-1: tests + benchmarks)"
	@echo "make ci-test   - fast suite (benchmarks excluded by marker)"
	@echo "make bench     - benchmark suite only"
	@echo "make example   - regenerate examples/running_example.grom"
	@echo "make batch     - run the default batch corpus end to end"

test:
	$(PYTHON) -m pytest -x -q

ci-test:
	$(PYTHON) -m pytest -x -q -m "not bench"

bench:
	$(PYTHON) -m pytest benchmarks -q

# The shipped DSL artifact is generated, never hand-edited: regenerate it
# from scenarios/running_example.py whenever the example or the
# serializer changes, so file and code cannot drift apart.
example:
	$(PYTHON) -m repro.cli export-example examples/running_example.grom

batch:
	$(PYTHON) -m repro.cli batch mixed --cache-dir .grom-cache --results batch-results.jsonl
