#!/usr/bin/env python
"""AST lint: no iteration over unordered sets in deterministic merge paths.

The parallel chase, the branch racer and the flight-recorder merge all
promise bit-identical output regardless of worker scheduling.  That
promise dies the moment a merge path iterates a ``set`` directly —
Python set order depends on insertion history and hash seeding.  This
tool walks the AST of the deterministic-merge modules and flags every
``for`` loop, comprehension or ``list``/``tuple`` call whose iterable
is statically set-typed, unless the iteration is wrapped in
``sorted(...)`` or consumed by an order-insensitive reducer (``len``,
``min``, ``max``, ``sum``, ``any``, ``all``, ``set``, ``frozenset``).

Set-typedness is tracked conservatively inside each function: set
literals and comprehensions, ``set(...)``/``frozenset(...)`` calls,
set-algebra binary operators over a tracked operand, and plain local
assignments of those.  A false positive can be waived with a trailing
``# det: ok`` comment on the offending line.

Usage::

    python tools/lint_determinism.py [FILE ...]

With no arguments the default merge-path modules are checked.  Exit
status is the number of findings (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_FILES = (
    "src/repro/chase/parallel.py",
    "src/repro/chase/race.py",
    "src/repro/obs/recorder.py",
)

SET_CONSTRUCTORS = {"set", "frozenset"}
ORDER_INSENSITIVE = {
    "sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset",
}
SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
WAIVER = "# det: ok"


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Conservative: True only when the expression is surely a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in SET_CONSTRUCTORS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SET_METHODS
            and _is_set_expr(func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, set_names) and _is_set_expr(
            node.orelse, set_names
        )
    return False


class _FunctionLinter(ast.NodeVisitor):
    """Lint one function body with simple local set tracking."""

    def __init__(self, path: Path, lines: List[str]) -> None:
        self.path = path
        self.lines = lines
        self.set_names: Set[str] = set()
        self.findings: List[Tuple[int, str]] = []

    def _waived(self, lineno: int) -> bool:
        line = self.lines[lineno - 1] if lineno - 1 < len(self.lines) else ""
        return WAIVER in line

    def _flag(self, node: ast.AST, what: str) -> None:
        if not self._waived(node.lineno):
            self.findings.append((node.lineno, what))

    # -- set tracking -----------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self.set_names)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            annotation = ast.unparse(node.annotation)
            if annotation.split("[")[0].rsplit(".", 1)[-1] in (
                "Set", "FrozenSet", "set", "frozenset",
            ):
                self.set_names.add(node.target.id)
            elif node.value is not None and _is_set_expr(
                node.value, self.set_names
            ):
                self.set_names.add(node.target.id)
            else:
                self.set_names.discard(node.target.id)
        self.generic_visit(node)

    # -- iteration sites --------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self.set_names):
            self._flag(node, f"for-loop iterates a set: {ast.unparse(node.iter)}")
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            if _is_set_expr(generator.iter, self.set_names):
                self._flag(
                    node,
                    f"comprehension iterates a set: "
                    f"{ast.unparse(generator.iter)}",
                )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and node.args
            and _is_set_expr(node.args[0], self.set_names)
        ):
            self._flag(
                node,
                f"{func.id}() materializes a set in raw order: "
                f"{ast.unparse(node.args[0])}",
            )
        self.generic_visit(node)

    # Nested functions get their own tracking scope.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._lint_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._lint_nested(node)

    def _lint_nested(self, node: ast.AST) -> None:
        nested = _FunctionLinter(self.path, self.lines)
        for child in ast.iter_child_nodes(node):
            nested.visit(child)
        self.findings.extend(nested.findings)


def lint_file(path: Path) -> List[Tuple[int, str]]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    findings: List[Tuple[int, str]] = []
    # Module scope and each top-level function/class get a fresh linter;
    # _FunctionLinter recurses into nested defs itself.
    linter = _FunctionLinter(path, lines)
    for node in tree.body:
        linter.visit(node)
    findings.extend(linter.findings)
    return sorted(set(findings))


def main(argv: List[str]) -> int:
    targets = [Path(arg) for arg in argv] or [
        REPO_ROOT / name for name in DEFAULT_FILES
    ]
    total = 0
    per_file: Dict[Path, List[Tuple[int, str]]] = {}
    for path in targets:
        if not path.exists():
            print(f"lint_determinism: missing file {path}", file=sys.stderr)
            return 2
        per_file[path] = lint_file(path)
        total += len(per_file[path])
    for path, findings in per_file.items():
        for lineno, message in findings:
            print(f"{path}:{lineno}: {message} (wrap in sorted() or waive "
                  f"with '{WAIVER}')")
    if total:
        print(f"lint_determinism: {total} finding(s)", file=sys.stderr)
    else:
        checked = ", ".join(str(p.relative_to(REPO_ROOT)) if p.is_relative_to(REPO_ROOT) else str(p) for p in per_file)
        print(f"lint_determinism: clean ({checked})")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
