"""Regression tests for the lazy compiled evaluator's short-circuiting.

The chase probes ``exists()`` once per premise match, so probe cost must
be independent of relation size: a satisfied conclusion on a 10k-fact
relation has to be found by one hash-index lookup, not by computing the
full join and truncating.  These tests instrument ``Instance.index`` to
count how many index lookups happen and how many facts the pipeline
actually examines.
"""

import pytest

from repro.errors import UnsafeDependencyError
from repro.logic.atoms import Atom, Comparison, Conjunction
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.query import (
    compile_query,
    evaluate,
    evaluate_iter,
    exists,
    reference_evaluator,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


class _CountingBucket:
    def __init__(self, bucket, counters):
        self._bucket = bucket
        self._counters = counters

    def __iter__(self):
        for fact in self._bucket:
            self._counters["facts_scanned"] += 1
            yield fact


class _CountingIndex:
    def __init__(self, base, counters):
        self._base = base
        self._counters = counters

    def get(self, key, default=()):
        return _CountingBucket(self._base.get(key, default), self._counters)

    def __contains__(self, key):
        self._counters["key_probes"] += 1
        return key in self._base

    def __len__(self):
        return len(self._base)


class ProbeCountingInstance(Instance):
    """Counts index lookups, key probes and facts examined by queries."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.counters = {"index_calls": 0, "key_probes": 0, "facts_scanned": 0}

    def index(self, relation, positions):
        self.counters["index_calls"] += 1
        return _CountingIndex(super().index(relation, positions), self.counters)

    def reset_counters(self):
        for key in self.counters:
            self.counters[key] = 0


def _bulk_instance(n):
    instance = ProbeCountingInstance()
    for i in range(n):
        instance.add(Atom("R", (Constant(i), Constant(f"name_{i}"), Constant(i % 7))))
    return instance


class TestExistsShortCircuit:
    def test_seeded_probe_is_constant_work(self):
        """A chase-style satisfaction probe does O(1) work at any size."""
        work = {}
        for n in (100, 10_000):
            instance = _bulk_instance(n)
            body = Conjunction(atoms=(Atom("R", (x, y, z)),))
            seed = {x: Constant(n // 2), y: Constant(f"name_{n // 2}")}
            assert exists(body, instance, seed=seed)
            instance.reset_counters()
            for _ in range(10):
                assert exists(body, instance, seed=seed)
            work[n] = dict(instance.counters)
        # Identical work at 100x the data: the probe is a key-membership
        # test on a live hash index, so no facts are ever scanned.
        assert work[100] == work[10_000]
        assert work[10_000]["facts_scanned"] == 0
        assert work[10_000]["key_probes"] == 10

    def test_unseeded_exists_scans_one_fact(self):
        instance = _bulk_instance(10_000)
        body = Conjunction(atoms=(Atom("R", (x, y, z)),))
        assert exists(body, instance)
        instance.reset_counters()
        assert exists(body, instance)
        assert instance.counters["facts_scanned"] <= 1

    def test_join_probe_stops_early(self):
        """exists() over a join stops at the first complete row."""
        instance = ProbeCountingInstance()
        for i in range(5_000):
            instance.add(Atom("E", (Constant(i), Constant(i + 1))))
        body = Conjunction(atoms=(Atom("E", (x, y)), Atom("E", (y, z))))
        assert exists(body, instance)
        instance.reset_counters()
        assert exists(body, instance)
        assert instance.counters["facts_scanned"] <= 4

    def test_negative_probe_misses_cheaply(self):
        instance = _bulk_instance(10_000)
        body = Conjunction(atoms=(Atom("R", (x, y, z)),))
        seed = {x: Constant(-1), y: Constant("nope")}
        instance.reset_counters()
        assert not exists(body, instance, seed=seed)
        assert instance.counters["facts_scanned"] == 0


class TestEvaluateLimit:
    def test_limit_truncates_work_not_just_output(self):
        instance = _bulk_instance(10_000)
        body = Conjunction(atoms=(Atom("R", (x, y, z)),))
        evaluate(body, instance, limit=1)  # warm plan + index
        instance.reset_counters()
        rows = evaluate(body, instance, limit=5)
        assert len(rows) == 5
        assert instance.counters["facts_scanned"] <= 5

    def test_iterator_is_lazy(self):
        instance = _bulk_instance(10_000)
        body = Conjunction(atoms=(Atom("R", (x, y, z)),))
        next(evaluate_iter(body, instance))  # warm
        instance.reset_counters()
        stream = evaluate_iter(body, instance)
        for _ in range(3):
            next(stream)
        assert instance.counters["facts_scanned"] == 3

    def test_limit_matches_reference_semantics(self):
        instance = _bulk_instance(50)
        body = Conjunction(
            atoms=(Atom("R", (x, y, z)),),
            comparisons=(Comparison("<", x, Constant(10)),),
        )
        fast = evaluate(body, instance)
        with reference_evaluator():
            slow = evaluate(body, instance)
        key = lambda b: sorted((v.name, str(t)) for v, t in b.items())
        assert sorted(map(key, fast)) == sorted(map(key, slow))
        assert len(evaluate(body, instance, limit=3)) == 3


class TestCompiledQueryEdgeCases:
    def test_unsafe_comparison_still_raises(self):
        body = Conjunction(
            atoms=(Atom("R", (x, y, z)),),
            comparisons=(Comparison("<", Variable("unbound"), Constant(1)),),
        )
        instance = _bulk_instance(3)
        with pytest.raises(UnsafeDependencyError):
            evaluate(body, instance)

    def test_unsafe_comparison_silent_on_empty_data(self):
        # The materialized evaluator returned [] before reaching the
        # safety check when no binding survived; the pipeline matches.
        body = Conjunction(
            atoms=(Atom("Missing", (x,)),),
            comparisons=(Comparison("<", Variable("unbound"), Constant(1)),),
        )
        assert evaluate(body, _bulk_instance(3)) == []

    def test_compile_cache_reuses_plans(self):
        body = Conjunction(atoms=(Atom("R", (x, y, z)),))
        instance = _bulk_instance(10)
        first = compile_query(body, (), instance)
        second = compile_query(Conjunction(atoms=(Atom("R", (x, y, z)),)), (), instance)
        assert first is second

    def test_repeated_fresh_variable_checked(self):
        instance = ProbeCountingInstance()
        instance.add(Atom("P", (Constant(1), Constant(2))))
        instance.add(Atom("P", (Constant(3), Constant(3))))
        rows = evaluate(Conjunction(atoms=(Atom("P", (x, x)),)), instance)
        assert len(rows) == 1 and rows[0][x] == Constant(3)
