"""Unit tests for the columnar instance kernel.

:class:`TermPool` interning and fork-delta shipping, the
:class:`ColumnarInstance` storage invariants (dedup, tombstone
resurrection, generation windows, incremental index maintenance), the
bulk ``extend_encoded`` path, pickling across a (simulated) process
boundary, and the cross-kernel equality contract the differential
suite (:mod:`tests.test_kernel_differential`) builds on.
"""

import pickle

import pytest

from repro.errors import SchemaError
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null
from repro.relational.instance import Instance
from repro.relational.kernel import (
    ColumnarInstance,
    TermPool,
    encode_null,
    null_id_of,
)


def atom(relation, *values):
    return Atom(
        relation,
        tuple(
            v if isinstance(v, (Constant, Null)) else Constant(v)
            for v in values
        ),
    )


class TestTermPool:
    def test_interns_dense_codes_and_decodes(self):
        pool = TermPool()
        a, b = Constant("a"), Constant("b")
        assert pool.encode(a) == 1
        assert pool.encode(b) == 2
        assert pool.encode(a) == 1  # stable on re-intern
        assert pool.decode(1) == a
        assert pool.decode(2) == b
        assert len(pool) == 2

    def test_nulls_encode_arithmetically_without_interning(self):
        pool = TermPool()
        assert pool.encode(Null(0)) == -1 == encode_null(0)
        assert pool.encode(Null(3)) == -4 == encode_null(3)
        assert null_id_of(-4) == 3
        assert len(pool) == 0  # nulls never touch the pool
        assert pool.decode(-4) == Null(3)

    def test_try_encode_never_interns(self):
        pool = TermPool()
        assert pool.try_encode(Constant("ghost")) is None
        assert len(pool) == 0
        code = pool.encode(Constant("real"))
        assert pool.try_encode(Constant("real")) == code

    def test_adopt_entries_keeps_fork_replicas_in_lockstep(self):
        parent = TermPool()
        parent.encode(Constant("a"))
        parent.encode(Constant("b"))
        # The replica's pool is a (simulated) copy-on-write snapshot.
        replica = TermPool()
        replica.encode(Constant("a"))
        replica.encode(Constant("b"))
        mark = parent.snapshot_mark
        parent.encode(Constant("c"))
        parent.encode(Constant("d"))
        replica.adopt_entries(mark, parent.entries_since(mark))
        for term in ("a", "b", "c", "d"):
            assert replica.encode(Constant(term)) == parent.encode(
                Constant(term)
            )

    def test_adopt_entries_rejects_a_diverged_replica(self):
        parent = TermPool()
        parent.encode(Constant("a"))
        mark = parent.snapshot_mark
        parent.encode(Constant("b"))
        replica = TermPool()
        replica.encode(Constant("a"))
        replica.encode(Constant("rogue"))  # local intern = divergence
        with pytest.raises(RuntimeError, match="diverged"):
            replica.adopt_entries(mark, parent.entries_since(mark))


class TestColumnarInstance:
    def test_add_dedups_and_decodes(self):
        inst = ColumnarInstance(pool=TermPool())
        assert inst.add(atom("R", "a", "b")) is True
        assert inst.add(atom("R", "a", "b")) is False
        assert len(inst) == 1
        assert inst.facts("R") == frozenset({atom("R", "a", "b")})

    def test_null_hints_stay_per_instance(self):
        pool = TermPool()
        inst = ColumnarInstance(pool=pool)
        inst.add(Atom("R", (Constant("x"), Null(5, "addr"))))
        # The instance overlays the hint; the shared pool never saw it.
        (fact,) = inst.facts("R")
        assert fact.terms[1].hint == "addr"
        assert pool.decode(encode_null(5)).hint == ""
        other = ColumnarInstance(pool=pool)
        other.add(Atom("S", (Null(5),)))
        (other_fact,) = other.facts("S")
        assert other_fact.terms[0].hint == ""

    def test_tombstone_resurrection_reuses_row_id(self):
        inst = ColumnarInstance(pool=TermPool())
        inst.add(atom("R", "a", "b"))
        row = inst.encode_row(atom("R", "a", "b").terms)
        (row_id,) = inst.live_row_ids("R")
        assert inst.remove(atom("R", "a", "b")) is True
        assert inst.live_row_ids("R") == []
        inst.bump_generation()
        assert inst.add_encoded("R", row) is True
        assert inst.live_row_ids("R") == [row_id]
        assert inst.generation_of(atom("R", "a", "b")) == 1

    def test_rows_since_windows_mirror_generations(self):
        inst = ColumnarInstance(pool=TermPool())
        inst.add(atom("R", 1))
        mark = inst.bump_generation()
        inst.add(atom("R", 2))
        inst.add(atom("S", 3))
        delta = inst.rows_since(mark)
        assert {rel for rel, _ in delta} == {"R", "S"}
        assert inst.facts_since(mark) == [atom("R", 2), atom("S", 3)]
        assert inst.rows_since(mark, "S") == [("S", 0)]


class TestExtendEncoded:
    def rows(self, inst, n, start=0):
        return [
            inst.encode_row(atom("R", i, i % 3).terms)
            for i in range(start, start + n)
        ]

    def test_bulk_matches_per_row_inserts(self):
        pool = TermPool()
        per_row = ColumnarInstance(pool=pool)
        bulk = ColumnarInstance(pool=pool)
        rows = self.rows(per_row, 50)
        rows_with_dups = rows + rows[:10]
        for row in rows_with_dups:
            per_row.add_encoded("R", row)
        assert bulk.extend_encoded("R", rows_with_dups) == 50
        assert bulk == per_row
        assert bulk.live_row_ids("R") == per_row.live_row_ids("R")
        assert bulk.rows_since(0) == per_row.rows_since(0)

    def test_resurrects_tombstoned_rows_in_batch(self):
        inst = ColumnarInstance(pool=TermPool())
        rows = self.rows(inst, 3)
        inst.extend_encoded("R", rows)
        inst.remove(atom("R", 1, 1))
        mark = inst.bump_generation()
        fresh = self.rows(inst, 1, start=10)
        assert inst.extend_encoded("R", [rows[1]] + fresh) == 2
        assert inst.live_row_ids("R") == [0, 1, 2, 3]  # id 1 reused
        assert inst.generation_of(atom("R", 1, 1)) == mark

    def test_maintains_live_indexes_incrementally(self):
        inst = ColumnarInstance(pool=TermPool())
        inst.extend_encoded("R", self.rows(inst, 6))
        index = inst.encoded_index("R", (1,))
        assert inst.index_builds == 1
        inst.extend_encoded("R", self.rows(inst, 6, start=6))
        fresh_index = inst.encoded_index("R", (1,))
        assert inst.index_builds == 1  # extended in place, not rebuilt
        assert sum(len(bucket) for bucket in fresh_index.values()) == 12
        assert index is fresh_index

    def test_empty_and_all_duplicate_batches_are_noops(self):
        inst = ColumnarInstance(pool=TermPool())
        rows = self.rows(inst, 4)
        inst.extend_encoded("R", rows)
        version = inst.version
        assert inst.extend_encoded("R", []) == 0
        assert inst.extend_encoded("R", rows) == 0
        assert inst.version == version

    def test_mixed_arities_raise_schema_error(self):
        inst = ColumnarInstance(pool=TermPool())
        with pytest.raises(SchemaError, match="mixed arities"):
            inst.extend_encoded("R", [(1, 2), (1, 2, 3)])


class TestPickleAndCopy:
    def test_pickle_round_trip_reinterns_decoded_rows(self):
        inst = ColumnarInstance(pool=TermPool())
        inst.add(atom("R", "a", "b"))
        inst.bump_generation()
        inst.add(Atom("R", (Constant("c"), Null(2, "addr"))))
        clone = pickle.loads(pickle.dumps(inst))
        assert clone == inst
        assert clone.current_generation == inst.current_generation
        assert set(clone.facts_since(1)) == set(inst.facts_since(1))
        (fact,) = clone.facts_since(1)
        assert fact.terms[1].hint == "addr"

    def test_pickled_clone_keeps_logging_new_generations(self):
        # Guards the cached insertion-log tail: a rehydrated instance
        # must append new rows to the *restored* generation's log.
        inst = ColumnarInstance(pool=TermPool())
        inst.add(atom("R", 1))
        inst.bump_generation()
        clone = pickle.loads(pickle.dumps(inst))
        mark = clone.bump_generation()
        clone.add(atom("R", 2))
        assert clone.facts_since(mark) == [atom("R", 2)]

    def test_copy_isolates_storage_and_log(self):
        inst = ColumnarInstance(pool=TermPool())
        inst.add(atom("R", 1))
        clone = inst.copy()
        inst.add(atom("R", 2))
        clone.add(atom("R", 3))
        assert inst.facts("R") == frozenset({atom("R", 1), atom("R", 2)})
        assert clone.facts("R") == frozenset({atom("R", 1), atom("R", 3)})
        # The clone's log tail is its own list, not the original's.
        assert atom("R", 3) not in inst.facts_since(0)
        assert atom("R", 2) not in clone.facts_since(0)


class TestIngestAndEquality:
    def test_ingest_same_pool_moves_encoded_rows(self):
        pool = TermPool()
        source = ColumnarInstance(pool=pool)
        source.add(atom("R", "a"))
        source.add(Atom("S", (Null(1, "who"),)))
        sink = ColumnarInstance(pool=pool)
        sink.add(atom("R", "a"))  # overlap dedups
        assert sink.ingest(source) == 1
        assert len(sink) == 2
        (fact,) = sink.facts("S")
        assert fact.terms[0].hint == "who"

    def test_ingest_foreign_pool_falls_back_to_atoms(self):
        source = ColumnarInstance(pool=TermPool())
        source.add(atom("R", "a"))
        source.add(atom("R", "b"))
        sink = ColumnarInstance(pool=TermPool())
        assert sink.ingest(source) == 2
        assert sink == source

    def test_cross_kernel_equality_compares_fact_sets(self):
        columnar = ColumnarInstance(pool=TermPool())
        reference = Instance()
        for target in (columnar, reference):
            target.add(atom("R", "a", "b"))
            target.add(Atom("S", (Null(0),)))
        assert columnar == reference
        assert reference == columnar
        reference.add(atom("R", "z", "z"))
        assert columnar != reference
