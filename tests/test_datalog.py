"""Unit tests for the Datalog view language: programs, strata, evaluation."""

import pytest

from repro.datalog.evaluate import evaluate_view, materialize, view_extent
from repro.datalog.program import ViewProgram
from repro.datalog.stratify import (
    check_nonrecursive,
    depends_on,
    evaluation_order,
    predicate_graph,
    strata,
)
from repro.errors import (
    DatalogError,
    RecursionError_,
    UnknownPredicateError,
    UnsafeDependencyError,
)
from repro.logic.atoms import Atom, Comparison, Conjunction, NegatedConjunction
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.schema import Schema

x, y, z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture()
def base_schema():
    schema = Schema("base")
    schema.add_relation("R", [("a", "int"), ("b", "int")])
    schema.add_relation("S", [("a", "int")])
    return schema


class TestProgramConstruction:
    def test_shadowing_base_rejected(self, base_schema):
        program = ViewProgram(base_schema)
        with pytest.raises(DatalogError):
            program.define(Atom("R", (x, y)), Conjunction(atoms=(Atom("S", (x,)),)))

    def test_arity_consistency(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("V", (x,)), Conjunction(atoms=(Atom("S", (x,)),)))
        with pytest.raises(DatalogError):
            program.define(
                Atom("V", (x, y)), Conjunction(atoms=(Atom("R", (x, y)),))
            )

    def test_unsafe_head_rejected(self, base_schema):
        program = ViewProgram(base_schema)
        with pytest.raises(UnsafeDependencyError):
            program.define(Atom("V", (x, y)), Conjunction(atoms=(Atom("S", (x,)),)))

    def test_unsafe_comparison_rejected(self, base_schema):
        program = ViewProgram(base_schema)
        with pytest.raises(UnsafeDependencyError):
            program.define(
                Atom("V", (x,)),
                Conjunction(
                    atoms=(Atom("S", (x,)),),
                    comparisons=(Comparison("<", y, Constant(1)),),
                ),
            )

    def test_unknown_predicate_detected_on_validate(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("V", (x,)), Conjunction(atoms=(Atom("Missing", (x,)),)))
        with pytest.raises(UnknownPredicateError):
            program.validate()

    def test_union_and_negation_flags(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("S", (x,)),)))
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("R", (x, y)),)))
        program.define(
            Atom("N", (x,)),
            Conjunction(
                atoms=(Atom("S", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("R", (x, y)),))),
                ),
            ),
        )
        assert program.is_union_view("U")
        assert not program.is_union_view("N")
        assert program.has_negation("N")
        assert not program.has_negation("U")
        assert program.arity_of("U") == 1
        assert program.arity_of("R") == 2


class TestStratification:
    def make_layers(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("V1", (x,)), Conjunction(atoms=(Atom("S", (x,)),)))
        program.define(
            Atom("V2", (x,)),
            Conjunction(
                atoms=(Atom("S", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("V1", (x,)),))),
                ),
            ),
        )
        program.define(Atom("V3", (x,)), Conjunction(atoms=(Atom("V2", (x,)),)))
        return program

    def test_recursion_detected(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("A", (x,)), Conjunction(atoms=(Atom("B", (x,)),)))
        program.define(Atom("B", (x,)), Conjunction(atoms=(Atom("A", (x,)),)))
        with pytest.raises(RecursionError_):
            check_nonrecursive(program)

    def test_self_recursion_detected(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("A", (x,)), Conjunction(atoms=(Atom("A", (x,)),)))
        with pytest.raises(RecursionError_):
            check_nonrecursive(program)

    def test_recursion_through_negation_detected(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(
            Atom("A", (x,)),
            Conjunction(
                atoms=(Atom("S", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("A", (x,)),))),
                ),
            ),
        )
        with pytest.raises(RecursionError_):
            check_nonrecursive(program)

    def test_evaluation_order_respects_dependencies(self, base_schema):
        program = self.make_layers(base_schema)
        order = evaluation_order(program)
        assert order.index("V1") < order.index("V2") < order.index("V3")

    def test_strata_negation_strictly_increases(self, base_schema):
        program = self.make_layers(base_schema)
        levels = strata(program)
        assert levels["V2"] == levels["V1"] + 1
        assert levels["V3"] == levels["V2"]

    def test_predicate_graph_polarity(self, base_schema):
        program = self.make_layers(base_schema)
        edges = set(predicate_graph(program))
        assert ("V2", "V1", True) in edges
        assert ("V3", "V2", False) in edges

    def test_double_negation_polarity(self, base_schema):
        program = ViewProgram(base_schema)
        inner = Conjunction(
            atoms=(Atom("S", (x,)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("R", (x, y)),))),
            ),
        )
        program.define(
            Atom("D", (x,)),
            Conjunction(
                atoms=(Atom("S", (x,)),),
                negations=(NegatedConjunction(inner),),
            ),
        )
        edges = set(predicate_graph(program))
        # R sits at nesting depth 2: positive again.
        assert ("D", "R", False) in edges
        assert ("D", "S", True) in edges  # inner S at depth 1

    def test_depends_on(self, base_schema):
        program = self.make_layers(base_schema)
        assert depends_on(program, "V3") == frozenset({"V2", "V1"})
        assert depends_on(program, "V1") == frozenset()


class TestEvaluation:
    def test_simple_projection(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("V", (x,)), Conjunction(atoms=(Atom("R", (x, y)),)))
        instance = Instance(base_schema)
        instance.add_row("R", 1, 10)
        instance.add_row("R", 1, 20)
        instance.add_row("R", 2, 30)
        extent = evaluate_view(program, instance, "V")
        assert {a.terms[0].value for a in extent} == {1, 2}

    def test_union_semantics(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("S", (x,)),)))
        program.define(Atom("U", (x,)), Conjunction(atoms=(Atom("R", (x, y)),)))
        instance = Instance(base_schema)
        instance.add_row("S", 1)
        instance.add_row("R", 2, 0)
        extent = evaluate_view(program, instance, "U")
        assert {a.terms[0].value for a in extent} == {1, 2}

    def test_stratified_negation(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("V1", (x,)), Conjunction(atoms=(Atom("R", (x, y)),)))
        program.define(
            Atom("V2", (x,)),
            Conjunction(
                atoms=(Atom("S", (x,)),),
                negations=(
                    NegatedConjunction(Conjunction(atoms=(Atom("V1", (x,)),))),
                ),
            ),
        )
        instance = Instance(base_schema)
        instance.add_row("S", 1)
        instance.add_row("S", 2)
        instance.add_row("R", 2, 99)
        extent = evaluate_view(program, instance, "V2")
        assert {a.terms[0].value for a in extent} == {1}

    def test_constants_in_head(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(
            Atom("V", (x, Constant("tag"))),
            Conjunction(atoms=(Atom("S", (x,)),)),
        )
        instance = Instance(base_schema)
        instance.add_row("S", 5)
        extent = evaluate_view(program, instance, "V")
        assert extent[0].terms[1] == Constant("tag")

    def test_materialize_include_base(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("V", (x,)), Conjunction(atoms=(Atom("S", (x,)),)))
        instance = Instance(base_schema)
        instance.add_row("S", 1)
        with_base = materialize(program, instance, include_base=True)
        assert with_base.size("S") == 1 and with_base.size("V") == 1
        without = materialize(program, instance)
        assert without.size("S") == 0

    def test_materialize_only_filter(self, base_schema):
        program = ViewProgram(base_schema)
        program.define(Atom("V1", (x,)), Conjunction(atoms=(Atom("S", (x,)),)))
        program.define(Atom("V2", (x,)), Conjunction(atoms=(Atom("V1", (x,)),)))
        instance = Instance(base_schema)
        instance.add_row("S", 1)
        only_v2 = materialize(program, instance, only=["V2"])
        assert only_v2.size("V2") == 1 and only_v2.size("V1") == 0


class TestRunningExampleViews:
    """The paper's classification semantics, computed by the view engine."""

    def build_target(self):
        from repro.scenarios.running_example import (
            build_target_schema,
            build_target_views,
        )

        schema = build_target_schema()
        program = build_target_views(schema)
        instance = Instance(schema)
        # Product 1: no thumbs-down -> popular.
        instance.add_row("T_Product", 1, "alpha", "s1")
        instance.add_row("T_Rating", 100, 1, 1)
        # Product 2: thumbs-up and thumbs-down -> average.
        instance.add_row("T_Product", 2, "beta", "s1")
        instance.add_row("T_Rating", 101, 2, 1)
        instance.add_row("T_Rating", 102, 2, 0)
        # Product 3: only thumbs-down -> unpopular.
        instance.add_row("T_Product", 3, "gamma", "s1")
        instance.add_row("T_Rating", 103, 3, 0)
        instance.add_row("T_Store", 7, "s1", "addr", "555")
        return program, instance

    def test_classification_partition(self):
        program, instance = self.build_target()
        extents = view_extent(program, instance)
        popular = {a.terms[0].value for a in extents["PopularProduct"]}
        average = {a.terms[0].value for a in extents["AvgProduct"]}
        unpopular = {a.terms[0].value for a in extents["UnpopularProduct"]}
        assert popular == {1}
        assert average == {2}
        assert unpopular == {3}
        # {disjoint, complete}: the three classes partition Product.
        assert popular | average | unpopular == {1, 2, 3}
        assert popular & average == set()
        assert popular & unpopular == set()
        assert average & unpopular == set()

    def test_store_and_soldat_views(self):
        program, instance = self.build_target()
        extents = view_extent(program, instance)
        assert len(extents["SoldAt"]) == 3
        assert len(extents["Store"]) == 1

    def test_strata_ordering(self, target_views=None):
        program, _instance = self.build_target()
        levels = strata(program)
        assert levels["PopularProduct"] < levels["AvgProduct"]
        assert levels["AvgProduct"] <= levels["UnpopularProduct"]
