"""Unit tests for the conjunctive-query evaluator (joins, negation, delta)."""

import pytest

from repro.errors import UnsafeDependencyError
from repro.logic.atoms import Atom, Comparison, Conjunction, NegatedConjunction
from repro.logic.terms import Constant, Null, Variable
from repro.relational.instance import Instance
from repro.relational.query import evaluate, evaluate_delta, exists

x, y, z = Variable("x"), Variable("y"), Variable("z")


def c(v):
    return Constant(v)


@pytest.fixture()
def graph():
    """Edges of a small directed graph plus node labels."""
    instance = Instance()
    for edge in [(1, 2), (2, 3), (3, 1), (1, 3)]:
        instance.add(Atom("E", (c(edge[0]), c(edge[1]))))
    for node, label in [(1, "a"), (2, "b"), (3, "a")]:
        instance.add(Atom("L", (c(node), c(label))))
    return instance


class TestJoins:
    def test_single_atom(self, graph):
        rows = evaluate(Conjunction(atoms=(Atom("E", (x, y)),)), graph)
        assert len(rows) == 4

    def test_two_way_join(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, y)), Atom("E", (y, z))))
        rows = evaluate(body, graph)
        pairs = {(b[x].value, b[y].value, b[z].value) for b in rows}
        assert (1, 2, 3) in pairs
        assert (3, 1, 2) in pairs

    def test_repeated_variable_self_loop(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, x)),))
        assert evaluate(body, graph) == []
        graph.add(Atom("E", (c(5), c(5))))
        rows = evaluate(body, graph)
        assert len(rows) == 1 and rows[0][x] == c(5)

    def test_constant_selection(self, graph):
        body = Conjunction(atoms=(Atom("E", (c(1), y)),))
        values = {b[y].value for b in evaluate(body, graph)}
        assert values == {2, 3}

    def test_triangle(self, graph):
        body = Conjunction(
            atoms=(Atom("E", (x, y)), Atom("E", (y, z)), Atom("E", (z, x)))
        )
        rows = evaluate(body, graph)
        assert rows  # 1 -> 2 -> 3 -> 1

    def test_seed_restricts(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, y)),))
        rows = evaluate(body, graph, seed={x: c(2)})
        assert len(rows) == 1 and rows[0][y] == c(3)

    def test_empty_result_on_missing_relation(self, graph):
        assert evaluate(Conjunction(atoms=(Atom("Z", (x,)),)), graph) == []

    def test_cross_product(self, graph):
        body = Conjunction(atoms=(Atom("L", (x, y)), Atom("L", (z, c("a")))))
        rows = evaluate(body, graph)
        assert len(rows) == 3 * 2


class TestComparisons:
    def test_filter(self, graph):
        body = Conjunction(
            atoms=(Atom("E", (x, y)),),
            comparisons=(Comparison("<", x, y),),
        )
        rows = evaluate(body, graph)
        assert {(b[x].value, b[y].value) for b in rows} == {(1, 2), (2, 3), (1, 3)}

    def test_comparison_between_variables_and_constants(self, graph):
        body = Conjunction(
            atoms=(Atom("E", (x, y)),),
            comparisons=(Comparison(">=", y, c(3)),),
        )
        assert len(evaluate(body, graph)) == 2

    def test_comparison_on_seed_only(self, graph):
        body = Conjunction(comparisons=(Comparison("<", x, c(2)),))
        assert evaluate(body, graph, seed={x: c(1)}) == [{x: c(1)}]
        assert evaluate(body, graph, seed={x: c(5)}) == []

    def test_unbound_comparison_raises(self, graph):
        body = Conjunction(
            atoms=(Atom("E", (x, y)),),
            comparisons=(Comparison("<", z, c(2)),),
        )
        with pytest.raises(UnsafeDependencyError):
            evaluate(body, graph)

    def test_null_order_comparison_filters_row(self, graph):
        graph.add(Atom("E", (Null(1), c(9))))
        body = Conjunction(
            atoms=(Atom("E", (x, y)),),
            comparisons=(Comparison("<", x, y),),
        )
        rows = evaluate(body, graph)
        assert all(not isinstance(b[x], Null) for b in rows)

    def test_string_mismatch_comparison_filters(self, graph):
        body = Conjunction(
            atoms=(Atom("L", (x, y)),),
            comparisons=(Comparison("<", y, c(3)),),  # label < int: never
        )
        assert evaluate(body, graph) == []


class TestNegation:
    def test_simple_anti_join(self, graph):
        # Nodes with a label but no outgoing edge to node 1.
        body = Conjunction(
            atoms=(Atom("L", (x, y)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("E", (x, c(1))),))),
            ),
        )
        nodes = {b[x].value for b in evaluate(body, graph)}
        assert nodes == {1, 2}  # 3 -> 1 exists

    def test_negation_with_local_variable(self, graph):
        # Nodes with no outgoing edges at all.
        graph.add(Atom("L", (c(9), c("z"))))
        body = Conjunction(
            atoms=(Atom("L", (x, y)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("E", (x, z)),))),
            ),
        )
        nodes = {b[x].value for b in evaluate(body, graph)}
        assert nodes == {9}

    def test_nested_negation(self, graph):
        # x such that NOT exists y: E(x, y) AND NOT L(y, 'a')
        # = x whose successors all have label 'a' (vacuously or not).
        inner = Conjunction(
            atoms=(Atom("E", (x, y)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("L", (y, c("a"))),))),
            ),
        )
        body = Conjunction(
            atoms=(Atom("L", (x, z)),),
            negations=(NegatedConjunction(inner),),
        )
        nodes = {b[x].value for b in evaluate(body, graph)}
        # 1 -> 2 and L(2) = 'b', so 1 is excluded; 2 -> 3 ('a') ok; 3 -> 1 ('a') ok.
        assert nodes == {2, 3}

    def test_negation_of_conjunction(self, graph):
        # No path of length 2 starting at x.
        body = Conjunction(
            atoms=(Atom("L", (x, y)),),
            negations=(
                NegatedConjunction(
                    Conjunction(atoms=(Atom("E", (x, z)), Atom("E", (z, Variable("w")))))
                ),
            ),
        )
        assert {b[x].value for b in evaluate(body, graph)} == set()

    def test_exists(self, graph):
        assert exists(Conjunction(atoms=(Atom("E", (c(1), c(2))),)), graph)
        assert not exists(Conjunction(atoms=(Atom("E", (c(2), c(1))),)), graph)


class TestDelta:
    def test_delta_restricts_to_new_facts(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, y)),))
        new_fact = Atom("E", (c(7), c(8)))
        graph.add(new_fact)
        rows = evaluate_delta(body, graph, {new_fact})
        assert len(rows) == 1
        assert rows[0][x] == c(7)

    def test_delta_join_uses_full_instance_for_other_atoms(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, y)), Atom("E", (y, z))))
        new_fact = Atom("E", (c(3), c(2)))
        graph.add(new_fact)
        rows = evaluate_delta(body, graph, {new_fact})
        triples = {(b[x].value, b[y].value, b[z].value) for b in rows}
        # New fact as first atom: 3 -> 2 -> 3; as second atom: 2 -> 3 -> 2... etc.
        assert (3, 2, 3) in triples
        assert (2, 3, 2) in triples
        # No stale-only matches.
        assert (1, 2, 3) not in triples

    def test_delta_deduplicates(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, y)), Atom("E", (x, y))))
        new_fact = Atom("E", (c(7), c(8)))
        graph.add(new_fact)
        rows = evaluate_delta(body, graph, {new_fact})
        assert len(rows) == 1

    def test_delta_empty_when_relation_not_in_body(self, graph):
        body = Conjunction(atoms=(Atom("L", (x, y)),))
        new_fact = Atom("E", (c(7), c(8)))
        graph.add(new_fact)
        assert evaluate_delta(body, graph, {new_fact}) == []

    def test_delta_equals_full_minus_old(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, y)), Atom("E", (y, z))))
        before = {
            tuple(sorted((k.name, str(v)) for k, v in b.items()))
            for b in evaluate(body, graph)
        }
        new_facts = {Atom("E", (c(2), c(4))), Atom("E", (c(4), c(1)))}
        for fact in new_facts:
            graph.add(fact)
        after = {
            tuple(sorted((k.name, str(v)) for k, v in b.items()))
            for b in evaluate(body, graph)
        }
        delta_rows = {
            tuple(sorted((k.name, str(v)) for k, v in b.items()))
            for b in evaluate_delta(body, graph, new_facts)
        }
        assert delta_rows == after - before


class TestLimit:
    def test_limit_caps_results(self, graph):
        body = Conjunction(atoms=(Atom("E", (x, y)),))
        assert len(evaluate(body, graph, limit=2)) == 2

    def test_limit_with_negation_applied_after_filtering(self, graph):
        body = Conjunction(
            atoms=(Atom("L", (x, y)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("E", (x, c(1))),))),
            ),
        )
        rows = evaluate(body, graph, limit=1)
        assert len(rows) == 1
        assert rows[0][x].value in {1, 2}
