"""Tests for the scenario library itself (generators and semantics)."""

import pytest

from repro.datalog.evaluate import view_extent
from repro.pipeline import run_scenario
from repro.scenarios import (
    build_scenario,
    cleanup_instance,
    cleanup_scenario,
    evolution_instance,
    evolution_scenario,
    flagged_instance,
    flagged_scenario,
    generate_source_instance,
    partition_instance,
    partition_scenario,
    random_scenario,
)
from repro.scenarios.generators import FLAG_BASE


class TestRunningExampleGenerator:
    def test_counts(self):
        instance = generate_source_instance(products=25, stores=4, seed=0)
        assert instance.size("S_Product") == 25
        assert instance.size("S_Store") == 4

    def test_deterministic_by_seed(self):
        first = generate_source_instance(products=10, seed=3)
        second = generate_source_instance(products=10, seed=3)
        assert first == second
        third = generate_source_instance(products=10, seed=4)
        assert first != third

    def test_conflicts_are_popular_pairs(self):
        instance = generate_source_instance(
            products=0, seed=0, popular_name_conflicts=2
        )
        facts = sorted(instance.facts("S_Product"), key=str)
        assert len(facts) == 4
        for fact in facts:
            assert fact.terms[3].value >= 4  # popular band

    def test_rating_weights_extremes(self):
        all_popular = generate_source_instance(
            products=20, seed=0, rating_weights=(0.0, 0.0, 1.0)
        )
        assert all(
            f.terms[3].value >= 4 for f in all_popular.facts("S_Product")
        )
        all_unpopular = generate_source_instance(
            products=20, seed=0, rating_weights=(1.0, 0.0, 0.0)
        )
        assert all(
            f.terms[3].value < 2 for f in all_unpopular.facts("S_Product")
        )


class TestClassificationSemantics:
    """After the full pipeline, the view extents over the produced target
    must classify products exactly as the source ratings dictate —
    the paper's 'products with ratings consistently above 4 stars are
    the popular ones' contract."""

    def test_extents_match_ratings(self):
        scenario = build_scenario()
        source = generate_source_instance(products=30, seed=9)
        outcome = run_scenario(scenario, source)
        assert outcome.ok
        extents = view_extent(scenario.target_views, outcome.target)
        popular = {a.terms[0].value for a in extents["PopularProduct"]}
        average = {a.terms[0].value for a in extents["AvgProduct"]}
        unpopular = {a.terms[0].value for a in extents["UnpopularProduct"]}
        for fact in source.facts("S_Product"):
            pid, rating = fact.terms[0].value, fact.terms[3].value
            if rating >= 4:
                assert pid in popular and pid not in average | unpopular
            elif rating >= 2:
                assert pid in average and pid not in popular | unpopular
            else:
                assert pid in unpopular and pid not in popular | average


class TestFlaggedFamily:
    def test_flag_views_and_keys_added(self):
        scenario = flagged_scenario(3)
        assert {f"Flagged_{j}" for j in range(3)} <= set(
            scenario.target_views.view_names()
        )
        assert len(scenario.target_constraints) == 3

    def test_flag_codes_disjoint_from_ratings(self):
        assert FLAG_BASE > 1

    def test_instance_has_name_pairs(self):
        instance = flagged_instance(products=5, name_pairs=3)
        names = [f.terms[1].value for f in instance.facts("S_Product")]
        for i in range(3):
            assert names.count(f"pair_{i}") == 2


class TestCleanupFamily:
    def test_shares(self):
        instance = cleanup_instance(orders=100, cancelled_share=0.5, seed=1)
        cancelled = sum(
            1 for f in instance.facts("Orders") if f.terms[2].value == "X"
        )
        assert 30 <= cancelled <= 70

    def test_valid_and_cancelled_disjoint_after_pipeline(self):
        scenario = cleanup_scenario()
        source = cleanup_instance(orders=40, seed=2)
        outcome = run_scenario(scenario, source)
        assert outcome.ok
        extents = view_extent(scenario.target_views, outcome.target)
        valid = {a.terms[0].value for a in extents["ValidOrder"]}
        cancelled = {a.terms[0].value for a in extents["CancelledOrder"]}
        assert valid & cancelled == set()
        assert valid | cancelled == set(range(40))


class TestEvolutionFamily:
    def test_legacy_shape_recovered(self):
        scenario = evolution_scenario()
        source = evolution_instance(employees=15, seed=3)
        outcome = run_scenario(scenario, source)
        assert outcome.ok
        extents = view_extent(scenario.target_views, outcome.target)
        assert len(extents["Employee"]) == 15
        # The view exposes exactly the legacy rows.
        legacy = {
            tuple(t.value for t in f.terms) for f in source.facts("Emp")
        }
        recovered = {
            tuple(t.value for t in a.terms) for a in extents["Employee"]
        }
        assert recovered == legacy


class TestPartitionFamily:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            partition_scenario(0)

    def test_class_assignment_semantics(self):
        scenario = partition_scenario(3)
        source = partition_instance(3, items=20, seed=5)
        outcome = run_scenario(scenario, source)
        assert outcome.ok
        extents = view_extent(scenario.target_views, outcome.target)
        classified = set()
        for i in (1, 2, 3):
            classified |= {a.terms[0].value for a in extents[f"Class_{i}"]}
        default = {a.terms[0].value for a in extents["DefaultClass"]}
        assert classified & default == set()
        assert len(classified | default) == 20


class TestRandomScenarios:
    def test_always_valid_and_deterministic(self):
        for seed in range(8):
            generated = random_scenario(seed=seed)
            # validate() ran in the constructor; instance matches schema.
            assert len(generated.instance) > 0
        first = random_scenario(seed=1)
        second = random_scenario(seed=1)
        assert first.instance == second.instance

    def test_conjunctive_random_scenarios_always_succeed(self):
        """With neither negation nor keys, the rewriting is pure view
        unfolding over weakly-acyclic tgds: the chase always succeeds and
        every solution verifies."""
        for seed in range(10):
            generated = random_scenario(
                seed=seed, negation_probability=0.0, with_keys=False
            )
            outcome = run_scenario(generated.scenario, generated.instance)
            assert outcome.ok, f"seed {seed}: {outcome.chase.failure_reason}"
            assert outcome.verification is not None
            assert outcome.verification.ok

    def test_soundness_on_random_scenarios_with_negation(self):
        """Negation views in conclusions compile to companion denials that
        can genuinely fire (a mapping may demand ¬T while another inserts
        T): failures are legitimate; successes must verify."""
        successes = 0
        for seed in range(10):
            generated = random_scenario(seed=seed, with_keys=False)
            outcome = run_scenario(generated.scenario, generated.instance)
            if outcome.ok:
                successes += 1
                assert outcome.verification is not None
                assert outcome.verification.ok
        assert successes >= 3

    def test_soundness_on_random_scenarios_with_keys(self):
        """With keys over small value domains many scenarios are genuinely
        unsatisfiable (constant/constant key clashes); the soundness
        contract only promises: whenever the chase *succeeds*, the
        solution satisfies the original scenario."""
        successes = 0
        for seed in range(15):
            generated = random_scenario(seed=seed, with_keys=True)
            outcome = run_scenario(generated.scenario, generated.instance)
            if outcome.ok:
                successes += 1
                assert outcome.verification is not None
                assert outcome.verification.ok
        assert successes >= 1  # at least some survive the keys
