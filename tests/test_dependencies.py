"""Unit tests for dependency classification, safety and transformation."""

import pytest

from repro.errors import UnsafeDependencyError
from repro.logic.atoms import (
    Atom,
    Comparison,
    Conjunction,
    Equality,
    NegatedConjunction,
)
from repro.logic.dependencies import (
    Dependency,
    DependencyKind,
    Disjunct,
    ded,
    denial,
    egd,
    tgd,
)
from repro.logic.terms import Constant, Variable, VariableFactory

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
P = Conjunction(atoms=(Atom("P", (x, y)),))


class TestClassification:
    def test_tgd(self):
        dependency = tgd(P, (Atom("Q", (x, z)),), name="t")
        assert dependency.kind is DependencyKind.TGD
        assert dependency.is_standard()

    def test_egd(self):
        dependency = egd(P, (Equality(x, y),), name="e")
        assert dependency.kind is DependencyKind.EGD

    def test_denial(self):
        dependency = denial(P, name="d")
        assert dependency.kind is DependencyKind.DENIAL

    def test_ded(self):
        dependency = ded(
            P,
            (Disjunct(equalities=(Equality(x, y),)), Disjunct(atoms=(Atom("Q", (x,)),))),
            name="dd",
        )
        assert dependency.kind is DependencyKind.DED
        assert dependency.is_ded()

    def test_mixed(self):
        dependency = Dependency(
            P,
            (Disjunct(atoms=(Atom("Q", (x,)),), equalities=(Equality(x, y),)),),
        )
        assert dependency.kind is DependencyKind.MIXED

    def test_egd_requires_equalities(self):
        with pytest.raises(UnsafeDependencyError):
            egd(P, ())


class TestVariables:
    def test_frontier(self):
        dependency = tgd(P, (Atom("Q", (x, z)),))
        assert dependency.frontier() == frozenset({x})

    def test_existential(self):
        dependency = tgd(P, (Atom("Q", (x, z)),))
        assert dependency.existential_variables(dependency.disjuncts[0]) == frozenset(
            {z}
        )

    def test_relations(self):
        dependency = ded(
            P, (Disjunct(atoms=(Atom("Q", (x,)),)), Disjunct(atoms=(Atom("R", (x,)),)))
        )
        assert dependency.relations() == frozenset({"P", "Q", "R"})


class TestSafety:
    def test_safe_tgd_passes(self):
        tgd(P, (Atom("Q", (x, z)),)).check_safety()

    def test_unsafe_comparison(self):
        dependency = Dependency(
            Conjunction(
                atoms=(Atom("P", (x,)),),
                comparisons=(Comparison("<", y, Constant(3)),),
            ),
            (Disjunct(atoms=(Atom("Q", (x,)),)),),
        )
        with pytest.raises(UnsafeDependencyError):
            dependency.check_safety()

    def test_unsafe_equality(self):
        dependency = Dependency(P, (Disjunct(equalities=(Equality(x, z),)),))
        with pytest.raises(UnsafeDependencyError):
            dependency.check_safety()

    def test_unsafe_disjunct_comparison(self):
        dependency = Dependency(
            P,
            (Disjunct(
                atoms=(Atom("Q", (z,)),),
                comparisons=(Comparison(">", z, Constant(0)),),
            ),),
        )
        with pytest.raises(UnsafeDependencyError):
            dependency.check_safety()

    def test_negation_variable_leaking_to_conclusion(self):
        premise = Conjunction(
            atoms=(Atom("P", (x,)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("S", (x, z)),))),
            ),
        )
        dependency = Dependency(
            premise, (Disjunct(atoms=(Atom("Q", (x, z)),)),)
        )
        with pytest.raises(UnsafeDependencyError):
            dependency.check_safety()

    def test_negation_local_variable_is_fine(self):
        premise = Conjunction(
            atoms=(Atom("P", (x,)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("S", (x, z)),))),
            ),
        )
        Dependency(premise, (Disjunct(atoms=(Atom("Q", (x,)),)),)).check_safety()


class TestTransformation:
    def test_select_branch(self):
        dependency = ded(
            P,
            (
                Disjunct(equalities=(Equality(x, y),)),
                Disjunct(atoms=(Atom("Q", (x,)),)),
            ),
            name="d0",
        )
        first = dependency.select_branch(0)
        assert first.kind is DependencyKind.EGD
        assert first.name == "d0[0]"
        second = dependency.select_branch(1)
        assert second.kind is DependencyKind.TGD
        with pytest.raises(IndexError):
            dependency.select_branch(5)

    def test_rename_apart(self):
        dependency = tgd(P, (Atom("Q", (x, z)),), name="t")
        factory = VariableFactory()
        renamed = dependency.rename_apart(factory)
        assert renamed.variables().isdisjoint(dependency.variables())
        # Structure preserved.
        assert renamed.kind is DependencyKind.TGD
        assert renamed.frontier() != frozenset()

    def test_apply_substitution(self):
        from repro.logic.substitution import Substitution

        dependency = tgd(P, (Atom("Q", (x, z)),))
        applied = dependency.apply(Substitution({x: Constant(5)}))
        assert applied.premise.atoms[0] == Atom("P", (Constant(5), y))
        assert applied.disjuncts[0].atoms[0] == Atom("Q", (Constant(5), z))

    def test_with_name(self):
        assert tgd(P, (Atom("Q", (x,)),)).with_name("n").name == "n"


class TestRendering:
    def test_str_tgd(self):
        dependency = tgd(P, (Atom("Q", (x,)),), name="m")
        assert str(dependency) == "m: P(x, y) -> Q(x)"

    def test_str_denial(self):
        assert str(denial(P)).endswith("-> false")

    def test_str_ded_uses_pipe(self):
        dependency = ded(
            P,
            (
                Disjunct(equalities=(Equality(x, y),)),
                Disjunct(atoms=(Atom("Q", (x,)),)),
            ),
        )
        assert "|" in str(dependency)
