"""The shipped DSL artifact and remaining engine edge cases."""

from pathlib import Path


from repro.chase.engine import ChaseConfig, StandardChase
from repro.chase.ded import GreedyDedChase
from repro.dsl.parser import parse_scenario
from repro.logic.atoms import Atom, Conjunction
from repro.logic.dependencies import tgd
from repro.logic.terms import Variable
from repro.pipeline import run_scenario
from repro.relational.instance import Instance

x, y, z = Variable("x"), Variable("y"), Variable("z")

EXAMPLE_FILE = Path(__file__).parent.parent / "examples" / "running_example.grom"


class TestShippedScenarioFile:
    def test_file_exists_and_parses(self):
        document = parse_scenario(EXAMPLE_FILE.read_text())
        assert [m.name for m in document.scenario.mappings] == [
            "m0",
            "m1",
            "m2",
            "m3",
        ]
        assert document.source_instance is not None

    def test_file_runs_end_to_end(self):
        document = parse_scenario(EXAMPLE_FILE.read_text())
        outcome = run_scenario(document.scenario, document.source_instance)
        assert outcome.ok
        assert outcome.verification is not None and outcome.verification.ok


class TestChaseConfigSurface:
    def test_keep_working_retains_source_facts(self):
        dependency = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x,)),)
        )
        source = Instance()
        source.add_row("S", 1)
        engine = StandardChase(
            [dependency], ["S"], ChaseConfig(keep_working=True)
        )
        result = engine.run(source)
        assert result.working is not None
        assert result.working.size("S") == 1
        # Default drops the working instance.
        default = StandardChase([dependency], ["S"]).run(source)
        assert default.working is None

    def test_pipeline_forwards_config(self):
        from repro.scenarios import build_scenario, generate_source_instance

        outcome = run_scenario(
            build_scenario(include_key=False),
            generate_source_instance(products=5, seed=1),
            config=ChaseConfig(max_rounds=1, guards="on"),
            verify=False,
        )
        # One round cannot finish the cascading companions.
        assert not outcome.ok

    def test_termination_proof_outranks_budget(self):
        from repro.scenarios import build_scenario, generate_source_instance

        # Default guards="auto": the analyzer proves this scenario
        # terminating, so the one-round budget is dropped and the same
        # run succeeds.
        outcome = run_scenario(
            build_scenario(include_key=False),
            generate_source_instance(products=5, seed=1),
            config=ChaseConfig(max_rounds=1),
            verify=False,
        )
        assert outcome.analysis is not None
        assert outcome.analysis.termination.proven
        assert outcome.chase.guards == "dropped"
        assert outcome.ok

    def test_greedy_respects_config(self):
        from repro.core.rewriter import rewrite
        from repro.scenarios import build_scenario, generate_source_instance

        rewritten = rewrite(build_scenario())
        engine = GreedyDedChase(
            rewritten.dependencies,
            rewritten.source_relations(),
            config=ChaseConfig(max_rounds=1),
        )
        result = engine.run(generate_source_instance(products=5, seed=1))
        assert not result.ok


class TestAnalyzeWrapper:
    def test_analyze_returns_consistent_pair(self):
        from repro.core.analysis import analyze
        from repro.scenarios import build_scenario

        prediction, result = analyze(build_scenario())
        assert prediction.may_have_deds == result.has_deds
        assert prediction.problematic_views() == result.problematic_views()


class TestDslCommentForms:
    def test_all_comment_styles(self):
        from repro.dsl.lexer import TokenKind, tokenize

        tokens = tokenize(
            "// slashes\nR(x). # hash\nS(y). -- dashes\n"
        )
        idents = [t.text for t in tokens if t.kind == TokenKind.IDENT]
        assert idents == ["R", "x", "S", "y"]
