"""Tests for the greedy ded chase: selections, heuristics, soundness."""


from repro.chase.ded import GreedyDedChase, branch_cost, greedy_ded_chase
from repro.chase.result import ChaseStatus
from repro.chase.universal import satisfies
from repro.logic.atoms import Atom, Conjunction, Equality
from repro.logic.dependencies import Disjunct, ded, tgd
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance

x, y = Variable("x"), Variable("y")


def c(v):
    return Constant(v)


def make_ded(name="d"):
    """S(x, y) -> x = y | T(x) — equality branch first by heuristic."""
    return ded(
        Conjunction(atoms=(Atom("S", (x, y)),)),
        (
            Disjunct(atoms=(Atom("T", (x,)),)),
            Disjunct(equalities=(Equality(x, y),)),
        ),
        name=name,
    )


class TestBranchCost:
    def test_equalities_cheaper_than_atoms(self):
        eq_branch = Disjunct(equalities=(Equality(x, y),))
        atom_branch = Disjunct(atoms=(Atom("T", (x,)),))
        assert branch_cost(eq_branch) < branch_cost(atom_branch)

    def test_fewer_atoms_cheaper(self):
        one = Disjunct(atoms=(Atom("T", (x,)),))
        two = Disjunct(atoms=(Atom("T", (x,)), Atom("U", (x,))))
        assert branch_cost(one) < branch_cost(two)


class TestSelections:
    def test_orders_equality_branch_first(self):
        engine = GreedyDedChase([make_ded()], ["S"])
        first = next(iter(engine.selections()))
        # Branch 1 is the equality branch; the heuristic ranks it first.
        assert first == (1,)

    def test_selection_count_is_product(self):
        engine = GreedyDedChase([make_ded("d1"), make_ded("d2")], ["S"])
        assert len(list(engine.selections())) == 4

    def test_rank_sum_ordering(self):
        engine = GreedyDedChase([make_ded("d1"), make_ded("d2")], ["S"])
        selections = list(engine.selections())
        # First selection: both deds on their best (equality) branch.
        assert selections[0] == (1, 1)
        # Last: both on the costly branch.
        assert selections[-1] == (0, 0)


class TestGreedyRuns:
    def test_equality_branch_succeeds_on_equal_pairs(self):
        source = Instance()
        source.add_row("S", 1, 1)
        result = greedy_ded_chase([make_ded()], source, ["S"])
        assert result.ok
        assert result.scenarios_tried == 1
        # Already satisfied: no facts created.
        assert result.target.size("T") == 0

    def test_falls_through_to_insert_branch(self):
        source = Instance()
        source.add_row("S", 1, 2)  # distinct constants: equality fails
        result = greedy_ded_chase([make_ded()], source, ["S"])
        assert result.ok
        assert result.scenarios_tried == 2
        assert result.target.facts("T") == frozenset({Atom("T", (c(1),))})
        assert result.branch_selection == {"d": 0}

    def test_already_satisfied_ded_never_fires(self):
        source = Instance()
        source.add_row("S", 1, 2)
        source.add_row("T", 1)
        result = greedy_ded_chase([make_ded()], source, ["S"])
        assert result.ok
        assert result.scenarios_tried == 1
        assert result.stats.tgd_fires == 0

    def test_all_branches_fail_reports_failure(self):
        from repro.logic.dependencies import denial

        block = denial(Conjunction(atoms=(Atom("T", (x,)),)), name="no_t")
        source = Instance()
        source.add_row("S", 1, 2)
        result = greedy_ded_chase([make_ded(), block], source, ["S"])
        assert result.status is ChaseStatus.FAILURE
        assert result.scenarios_tried == 2
        assert "derived scenarios failed" in result.failure_reason

    def test_max_scenarios_budget(self):
        from repro.logic.dependencies import denial

        deds = [make_ded(f"d{i}") for i in range(4)]
        block = denial(Conjunction(atoms=(Atom("T", (x,)),)), name="no_t")
        source = Instance()
        source.add_row("S", 1, 2)
        result = GreedyDedChase(deds + [block], ["S"], max_scenarios=3).run(source)
        assert not result.ok
        assert result.scenarios_tried == 3

    def test_standard_only_falls_back_to_plain_chase(self):
        mapping = tgd(Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x,)),))
        source = Instance()
        source.add_row("S", 1, 2)
        result = greedy_ded_chase([mapping], source, ["S"])
        assert result.ok
        assert result.scenarios_tried == 1
        assert result.target.size("T") == 1

    def test_solution_satisfies_all_dependencies(self):
        dependencies = [
            tgd(Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x,)),)),
            make_ded(),
        ]
        source = Instance()
        source.add_row("S", 1, 2)
        source.add_row("S", 3, 3)
        result = greedy_ded_chase(dependencies, source, ["S"])
        assert result.ok
        working = Instance()
        for fact in source:
            working.add(fact)
        for fact in result.target:
            working.add(fact)
        assert satisfies(dependencies, working)


class TestRunningExampleGreedy:
    def test_benign_name_pairs_succeed_first_scenario(self, rewritten):
        from repro.scenarios.running_example import generate_source_instance

        source = generate_source_instance(
            products=8, seed=3, benign_name_pairs=2
        )
        engine = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        )
        result = engine.run(source)
        assert result.ok
        assert result.scenarios_tried == 1

    def test_popular_conflicts_fail_all_scenarios(self, rewritten):
        from repro.scenarios.running_example import generate_source_instance

        source = generate_source_instance(
            products=4, seed=3, popular_name_conflicts=1
        )
        engine = GreedyDedChase(
            rewritten.dependencies, rewritten.source_relations()
        )
        result = engine.run(source)
        assert result.status is ChaseStatus.FAILURE
        assert result.scenarios_tried == 3  # one per d0 branch
