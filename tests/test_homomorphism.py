"""Unit tests for homomorphism search between atom sets."""

from repro.logic.atoms import Atom
from repro.logic.homomorphism import (
    all_homomorphisms,
    apply_assignment,
    exists_homomorphism,
    find_homomorphism,
    homomorphically_equivalent,
)
from repro.logic.terms import Constant, Null, Variable

x, y = Variable("x"), Variable("y")
a, b = Constant("a"), Constant("b")


def test_simple_variable_mapping():
    source = [Atom("R", (x, y))]
    target = [Atom("R", (a, b))]
    hom = find_homomorphism(source, target)
    assert hom == {x: a, y: b}


def test_constants_must_be_preserved():
    assert not exists_homomorphism([Atom("R", (a,))], [Atom("R", (b,))])
    assert exists_homomorphism([Atom("R", (a,))], [Atom("R", (a,)), Atom("R", (b,))])


def test_nulls_map_like_variables():
    source = [Atom("R", (Null(1), Null(2)))]
    target = [Atom("R", (a, a))]
    hom = find_homomorphism(source, target)
    assert hom == {Null(1): a, Null(2): a}


def test_frozen_terms_fixed():
    source = [Atom("R", (Null(1),))]
    target = [Atom("R", (a,))]
    assert find_homomorphism(source, target, frozen=[Null(1)]) is None
    target_with_null = [Atom("R", (Null(1),))]
    assert find_homomorphism(source, target_with_null, frozen=[Null(1)]) == {}


def test_join_consistency():
    # R(x, y), S(y) — y must take the same value in both atoms.
    source = [Atom("R", (x, y)), Atom("S", (y,))]
    target = [Atom("R", (a, b)), Atom("S", (a,))]
    assert not exists_homomorphism(source, target)
    target_good = [Atom("R", (a, b)), Atom("S", (b,))]
    assert exists_homomorphism(source, target_good)


def test_all_homomorphisms_count():
    source = [Atom("R", (x,))]
    target = [Atom("R", (a,)), Atom("R", (b,))]
    homs = all_homomorphisms(source, target)
    assert len(homs) == 2
    assert {h[x] for h in homs} == {a, b}


def test_all_homomorphisms_limit():
    source = [Atom("R", (x,))]
    target = [Atom("R", (Constant(i),)) for i in range(10)]
    assert len(all_homomorphisms(source, target, limit=3)) == 3


def test_homomorphic_equivalence():
    one = [Atom("R", (Null(1),))]
    two = [Atom("R", (Null(2),)), Atom("R", (Null(3),))]
    assert homomorphically_equivalent(one, two)
    three = [Atom("R", (a,))]
    assert not homomorphically_equivalent(one, three)  # a cannot map back


def test_seed_binding():
    source = [Atom("R", (x, y))]
    target = [Atom("R", (a, b)), Atom("R", (b, b))]
    hom = find_homomorphism(source, target, seed={x: b})
    assert hom is not None and hom[x] == b and hom[y] == b


def test_apply_assignment_keeps_constants():
    atom = Atom("R", (x, a, Null(1)))
    mapped = apply_assignment({x: b, Null(1): a}, atom)
    assert mapped == Atom("R", (b, a, a))


def test_empty_source_always_maps():
    assert exists_homomorphism([], [Atom("R", (a,))])
    assert exists_homomorphism([], [])


def test_unmatchable_relation():
    assert not exists_homomorphism([Atom("Q", (x,))], [Atom("R", (a,))])
