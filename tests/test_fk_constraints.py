"""Tests for tgd-style target constraints: the paper's footnote 1.

"Previous papers [9] discuss how to handle foreign-key constraints as
well" — inclusion dependencies over the semantic schema.  A constraint
``SoldAt(pid, stid) → Store(stid, n, a)`` has a view premise *and* a
view conclusion; the rewriter must unfold both.
"""


from repro.core.analysis import predict_deds
from repro.core.rewriter import rewrite
from repro.core.scenario import MappingScenario
from repro.datalog.program import ViewProgram
from repro.logic.atoms import Atom, Conjunction, NegatedConjunction
from repro.logic.dependencies import DependencyKind, tgd
from repro.logic.terms import Variable
from repro.pipeline import run_scenario
from repro.relational.schema import Schema
from repro.scenarios.running_example import (
    build_scenario,
    generate_source_instance,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestRunningExampleForeignKey:
    def test_fk_accepted_by_scenario(self):
        scenario = build_scenario(include_fk=True)
        assert "fk0" in scenario.constraint_names()

    def test_fk_rewrites_to_physical_tgd(self):
        scenario = build_scenario(include_key=False, include_fk=True)
        result = rewrite(scenario)
        assert not result.has_deds
        fk = next(d for d in result.dependencies if d.name.startswith("fk0"))
        assert fk.kind is DependencyKind.TGD
        # Premise: SoldAt unfolds to T_Product; conclusion: Store unfolds
        # to T_Store with existential address/phone.
        assert [a.relation for a in fk.premise.atoms] == ["T_Product"]
        assert [a.relation for a in fk.disjuncts[0].atoms] == ["T_Store"]
        existentials = fk.existential_variables(fk.disjuncts[0])
        assert len(existentials) == 3  # name, address, phone invented

    def test_fk_chases_and_verifies(self):
        scenario = build_scenario(include_fk=True)
        source = generate_source_instance(products=12, seed=6)
        outcome = run_scenario(scenario, source)
        assert outcome.ok
        assert outcome.verification is not None and outcome.verification.ok
        # Every T_Product store id now has a T_Store row.
        store_ids = {f.terms[0] for f in outcome.target.facts("T_Store")}
        for product in outcome.target.facts("T_Product"):
            assert product.terms[2] in store_ids

    def test_fk_prediction_no_deds(self):
        scenario = build_scenario(include_key=False, include_fk=True)
        prediction = predict_deds(scenario)
        assert not prediction.may_have_deds


class TestTgdConstraintVariants:
    def make(self, constraint_views, constraints):
        source_schema = Schema("src")
        source_schema.add_relation("S", [("a", "int")])
        target_schema = Schema("tgt")
        target_schema.add_relation("T", [("a", "int"), ("b", "int")])
        target_schema.add_relation("W", [("a", "int")])
        program = ViewProgram(target_schema)
        for head, body in constraint_views:
            program.define(head, body)
        mapping = tgd(
            Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, x)),), name="m"
        )
        return MappingScenario(
            source_schema,
            target_schema,
            [mapping],
            target_views=program,
            target_constraints=constraints,
        )

    def test_union_view_in_constraint_conclusion_gives_ded(self):
        views = [
            (Atom("U", (x,)), Conjunction(atoms=(Atom("T", (x, y)),))),
            (Atom("U", (x,)), Conjunction(atoms=(Atom("W", (x,)),))),
        ]
        fk = tgd(
            Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("U", (x,)),), name="fk"
        )
        scenario = self.make(views, [fk])
        result = rewrite(scenario)
        assert result.has_deds
        assert len(result.deds()[0].disjuncts) == 2
        assert predict_deds(scenario).may_have_deds

    def test_negated_view_in_constraint_conclusion_gives_denial(self):
        views = [
            (
                Atom("V", (x,)),
                Conjunction(
                    atoms=(Atom("T", (x, y)),),
                    negations=(
                        NegatedConjunction(Conjunction(atoms=(Atom("W", (x,)),))),
                    ),
                ),
            ),
        ]
        fk = tgd(
            Conjunction(atoms=(Atom("W", (x,)),)), (Atom("V", (x,)),), name="fk"
        )
        scenario = self.make(views, [fk])
        result = rewrite(scenario)
        assert not result.has_deds
        denials = result.denials()
        assert len(denials) == 1
        # The companion forbids W(x) in the enforced context... which is
        # also the constraint's own premise: the scenario demands
        # V-membership for W-members whose view excludes W-members.
        relations = [a.relation for a in denials[0].premise.atoms]
        assert relations.count("W") >= 1

    def test_mixed_constraint_supported(self):
        from repro.logic.atoms import Equality
        from repro.logic.dependencies import Dependency, Disjunct

        constraint = Dependency(
            Conjunction(atoms=(Atom("T", (x, y)), Atom("T", (x, z)))),
            (Disjunct(atoms=(Atom("W", (x,)),), equalities=(Equality(y, z),)),),
            "mx",
        )
        scenario = self.make([], [constraint])
        result = rewrite(scenario)
        assert len(result.dependencies) == 2  # mapping + constraint
        mixed = next(d for d in result.dependencies if d.name == "mx")
        assert mixed.kind is DependencyKind.MIXED

    def test_fk_chain_through_views_terminates(self):
        """An inclusion dependency whose conclusion re-feeds its own
        premise view is not weakly acyclic; the chase budget catches it."""
        from repro.chase.engine import ChaseConfig
        from repro.chase.termination import is_weakly_acyclic
        from repro.relational.instance import Instance

        views = [
            (Atom("V", (x,)), Conjunction(atoms=(Atom("T", (x, y)),))),
        ]
        fk = tgd(
            Conjunction(atoms=(Atom("T", (x, y)),)), (Atom("V", (y,)),), name="fk"
        )
        scenario = self.make(views, [fk])
        result = rewrite(scenario)
        assert not is_weakly_acyclic(result.dependencies)
        source = Instance()
        source.add_row("S", 1)
        outcome = run_scenario(
            scenario, source, config=ChaseConfig(max_rounds=20), verify=False
        )
        # Either the chase finds a fixpoint via null reuse or the budget
        # trips; it must not loop forever.
        assert outcome.chase.status is not None
