"""``grom lint`` end to end: diagnostics, text/file linting, CLI exit
codes and the deterministic-merge AST lint in ``tools/``."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis import (
    CODES,
    Diagnostic,
    Severity,
    SourceSpan,
    has_errors,
    lint_file,
    lint_scenario,
    lint_text,
    render_diagnostic,
    render_report,
    reports_payload,
    severity_of,
    sort_diagnostics,
)
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]

CLEAN_SCENARIO = """
source schema source {
  S_Product(id int, rating int).
}

target schema target {
  T_Product(id, rating).
}

target views {
  v0: Out(id) <- T_Product(id, rating).
}

mappings {
  m0: S_Product(id, rating) -> Out(id).
}
"""

UNSAT_SCENARIO = """
source schema source {
  S_Product(id int, rating int).
}

target schema target {
  T_Product(id, rating).
}

target views {
  v0: Out(id) <- T_Product(id, rating).
}

mappings {
  m0: S_Product(id, rating), rating < 2, rating > 4 -> Out(id).
}
"""


# ---------------------------------------------------------------------------
# Diagnostics primitives
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="GROM999"):
            Diagnostic(code="GROM999", message="nope")

    def test_registry_severities(self):
        assert severity_of("GROM001") is Severity.INFO
        assert severity_of("GROM101") is Severity.ERROR
        assert severity_of("GROM201") is Severity.WARNING
        # Every registered code resolves; the 1xx block is all errors.
        for code, (severity, _) in CODES.items():
            assert severity_of(code) is severity
            if code.startswith("GROM1"):
                assert severity is Severity.ERROR

    def test_sort_is_severity_then_code(self):
        info = Diagnostic(code="GROM001", message="verdict")
        warn = Diagnostic(code="GROM201", message="unproven")
        error = Diagnostic(code="GROM104", message="parse")
        assert sort_diagnostics([info, warn, error]) == (error, warn, info)

    def test_has_errors(self):
        assert not has_errors([Diagnostic(code="GROM001", message="m")])
        assert has_errors([Diagnostic(code="GROM104", message="m")])

    def test_render_includes_span_and_subject(self):
        diagnostic = Diagnostic(
            code="GROM101",
            message="premise can never match",
            subject="m0",
            span=SourceSpan(line=4, column=7),
        )
        rendered = render_diagnostic(diagnostic, source="demo.grom")
        assert rendered == (
            "demo.grom:4:7: error GROM101: premise can never match [m0]"
        )


# ---------------------------------------------------------------------------
# Linting scenario text and files
# ---------------------------------------------------------------------------


class TestLintText:
    def test_clean_scenario_is_ok_with_info_verdicts(self):
        report = lint_text(CLEAN_SCENARIO, source="clean.grom")
        assert report.ok
        codes = {d.code for d in report.diagnostics}
        assert "GROM001" in codes  # termination verdict
        assert "GROM002" in codes  # fire schedule
        assert report.analysis is not None
        assert report.analysis.termination.proven

    def test_unsatisfiable_premise_is_an_error(self):
        report = lint_text(UNSAT_SCENARIO, source="unsat.grom")
        assert not report.ok
        errors = [
            d for d in report.diagnostics if d.severity is Severity.ERROR
        ]
        assert errors and all(d.code == "GROM101" for d in errors)
        assert any("m0" in d.subject for d in errors)

    def test_parse_error_becomes_grom104_with_span(self):
        report = lint_text("source schema oops {", source="broken.grom")
        assert not report.ok
        assert len(report.diagnostics) == 1
        diagnostic = report.diagnostics[0]
        assert diagnostic.code == "GROM104"
        assert diagnostic.span is not None
        assert diagnostic.span.line >= 1

    def test_validation_error_becomes_grom104(self):
        # Parses, but the mapping premise uses an undeclared relation —
        # scenario validation raises a schema error, not a parse error.
        text = CLEAN_SCENARIO.replace("m0: S_Product", "m0: Ghost")
        report = lint_text(text, source="ghost.grom")
        assert not report.ok
        assert report.diagnostics[0].code == "GROM104"

    def test_spans_are_attached_to_named_subjects(self):
        report = lint_text(UNSAT_SCENARIO, source="unsat.grom")
        dead = [d for d in report.diagnostics if d.code == "GROM101"]
        assert any(d.span is not None for d in dead)

    def test_lint_file_missing_path(self, tmp_path):
        report = lint_file(tmp_path / "does_not_exist.grom")
        assert not report.ok
        assert report.diagnostics[0].code == "GROM104"

    def test_render_report_minimum_filters_infos(self):
        report = lint_text(CLEAN_SCENARIO, source="clean.grom")
        full = render_report(report, minimum=Severity.INFO)
        quiet = render_report(report, minimum=Severity.WARNING)
        assert "GROM001" in full
        assert "GROM001" not in quiet
        # The per-report summary line survives filtering.
        assert "0 errors" in quiet

    def test_reports_payload_shape(self):
        reports = [
            lint_text(CLEAN_SCENARIO, source="clean.grom"),
            lint_text(UNSAT_SCENARIO, source="unsat.grom"),
        ]
        payload = reports_payload(reports)
        assert set(payload) == {"reports", "totals", "ok"}
        assert payload["ok"] is False
        assert payload["totals"]["error"] >= 1
        assert len(payload["reports"]) == 2
        # Payload is JSON-serializable as CI requires.
        json.dumps(payload)

    def test_lint_scenario_counts_match_analysis(self):
        report = lint_text(CLEAN_SCENARIO, source="clean.grom")
        counts = report.severity_counts()
        assert counts["error"] == 0
        assert counts["info"] >= 2


# ---------------------------------------------------------------------------
# The grom lint CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = self._write(tmp_path, "clean.grom", CLEAN_SCENARIO)
        assert cli_main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 clean, 0 error(s)" in out

    def test_unsatisfiable_premise_exits_nonzero(self, tmp_path, capsys):
        path = self._write(tmp_path, "unsat.grom", UNSAT_SCENARIO)
        assert cli_main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "GROM101" in out

    def test_json_report_written(self, tmp_path):
        path = self._write(tmp_path, "unsat.grom", UNSAT_SCENARIO)
        report_path = tmp_path / "report.json"
        exit_code = cli_main(
            ["lint", str(path), "--json", str(report_path)]
        )
        assert exit_code == 1
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is False
        assert payload["reports"][0]["source"] == str(path)

    def test_quiet_hides_info_diagnostics(self, tmp_path, capsys):
        path = self._write(tmp_path, "clean.grom", CLEAN_SCENARIO)
        assert cli_main(["lint", str(path), "--quiet"]) == 0
        assert "GROM001" not in capsys.readouterr().out

    def test_unknown_corpus_exits_two(self, capsys):
        assert cli_main(["lint", "--corpus", "no-such-corpus"]) == 2
        assert "no-such-corpus" in capsys.readouterr().err

    def test_no_inputs_exits_two(self, capsys):
        assert cli_main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_smoke_corpus_lints_clean_of_errors(self, capsys):
        assert cli_main(["lint", "--corpus", "smoke", "--quiet"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_shipped_example_lints(self, capsys):
        example = REPO_ROOT / "examples" / "running_example.grom"
        assert cli_main(["lint", str(example), "--quiet"]) == 0


# ---------------------------------------------------------------------------
# tools/lint_determinism.py
# ---------------------------------------------------------------------------


def _load_det_tool():
    spec = importlib.util.spec_from_file_location(
        "lint_determinism", REPO_ROOT / "tools" / "lint_determinism.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


det = _load_det_tool()

BAD_MERGE = """\
def merge(shards):
    seen = set()
    for shard in shards:
        seen |= shard
    out = []
    for item in seen:
        out.append(item)
    return out
"""

GOOD_MERGE = """\
def merge(shards):
    seen = set()
    for shard in shards:
        seen |= shard
    out = []
    for item in sorted(seen):
        out.append(item)
    return out
"""

WAIVED_MERGE = """\
def merge(shards):
    seen = set()
    for shard in shards:
        seen |= shard
    out = []
    for item in seen:  # det: ok
        out.append(item)
    return out
"""


class TestDeterminismLint:
    def test_flags_iteration_over_a_set(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(BAD_MERGE)
        findings = det.lint_file(path)
        assert len(findings) == 1
        line, message = findings[0]
        assert line == 6
        assert "seen" in message

    def test_sorted_wrap_is_clean(self, tmp_path):
        path = tmp_path / "good.py"
        path.write_text(GOOD_MERGE)
        assert det.lint_file(path) == []

    def test_waiver_comment_suppresses(self, tmp_path):
        path = tmp_path / "waived.py"
        path.write_text(WAIVED_MERGE)
        assert det.lint_file(path) == []

    def test_comprehension_and_list_call_flagged(self, tmp_path):
        path = tmp_path / "multi.py"
        path.write_text(
            "def collect(values):\n"
            "    bag = {v for v in values}\n"
            "    first = [x for x in bag]\n"
            "    second = list(bag)\n"
            "    return first, second\n"
        )
        findings = det.lint_file(path)
        assert len(findings) == 2

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(BAD_MERGE)
        good = tmp_path / "good.py"
        good.write_text(GOOD_MERGE)
        assert det.main([str(good)]) == 0
        assert det.main([str(bad)]) == 1
        assert det.main([str(tmp_path / "missing.py")]) == 2
        capsys.readouterr()

    def test_repo_merge_paths_are_clean(self):
        # The CI gate: the real sharded-merge modules stay deterministic.
        assert det.main([]) == 0
