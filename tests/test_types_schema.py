"""Unit tests for data types, relations, schemas, keys and FDs."""

import pytest

from repro.errors import ArityError, SchemaError, TypingError, UnknownRelationError
from repro.logic.dependencies import DependencyKind
from repro.logic.terms import Constant, Null
from repro.relational.schema import Attribute, FunctionalDependency, Relation, Schema
from repro.relational.types import DataType, check_term, check_value, parse_literal


class TestDataType:
    def test_from_name_aliases(self):
        assert DataType.from_name("integer") is DataType.INT
        assert DataType.from_name("TEXT") is DataType.STRING
        assert DataType.from_name("double") is DataType.FLOAT
        assert DataType.from_name("boolean") is DataType.BOOL

    def test_from_name_unknown(self):
        with pytest.raises(TypingError):
            DataType.from_name("blob")

    def test_admits_bool_not_int(self):
        assert not DataType.INT.admits(True)
        assert DataType.BOOL.admits(True)
        assert not DataType.BOOL.admits(1)

    def test_float_admits_int(self):
        assert DataType.FLOAT.admits(3)
        assert DataType.FLOAT.admits(3.5)
        assert not DataType.FLOAT.admits(True)

    def test_any(self):
        for value in (1, 1.5, "x", False):
            assert DataType.ANY.admits(value)

    def test_check_value_raises(self):
        with pytest.raises(TypingError):
            check_value("x", DataType.INT)

    def test_check_term_null_passes_all(self):
        for dtype in DataType:
            check_term(Null(1), dtype)

    def test_parse_literal(self):
        assert parse_literal("42", DataType.INT) == Constant(42)
        assert parse_literal("2.5", DataType.FLOAT) == Constant(2.5)
        assert parse_literal("yes", DataType.BOOL) == Constant(True)
        assert parse_literal("no", DataType.BOOL) == Constant(False)
        assert parse_literal("hi", DataType.STRING) == Constant("hi")
        with pytest.raises(TypingError):
            parse_literal("maybe", DataType.BOOL)


class TestRelation:
    def make(self):
        return Relation(
            "R",
            [Attribute("a", DataType.INT), Attribute("b", DataType.STRING)],
            key=("a",),
        )

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", [Attribute("a"), Attribute("a")])

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            Relation("R", [Attribute("a")], key=("zz",))

    def test_position_of(self):
        relation = self.make()
        assert relation.position_of("b") == 1
        with pytest.raises(SchemaError):
            relation.position_of("zz")

    def test_check_fact_arity(self):
        with pytest.raises(ArityError):
            self.make().check_fact((Constant(1),))

    def test_check_fact_types(self):
        relation = self.make()
        relation.check_fact((Constant(1), Constant("x")))
        with pytest.raises(TypingError):
            relation.check_fact((Constant("bad"), Constant("x")))
        # Nulls are always admitted.
        relation.check_fact((Null(1), Null(2)))

    def test_key_egd_shape(self):
        dependency = self.make().key_egd()
        assert dependency is not None
        assert dependency.kind is DependencyKind.EGD
        # key(a) determines b: one equality.
        assert len(dependency.disjuncts[0].equalities) == 1

    def test_key_egd_none_without_key(self):
        assert Relation("R", [Attribute("a")]).key_egd() is None

    def test_key_covering_all_attributes_yields_none(self):
        relation = Relation("R", [Attribute("a")], key=("a",))
        assert relation.key_egd() is None

    def test_fd_egds(self):
        relation = Relation(
            "R",
            [Attribute("a"), Attribute("b"), Attribute("c")],
            fds=(FunctionalDependency(["a"], ["b", "c"]),),
        )
        egds = relation.fd_egds()
        assert len(egds) == 1
        assert len(egds[0].disjuncts[0].equalities) == 2

    def test_fd_validation(self):
        with pytest.raises(SchemaError):
            FunctionalDependency([], ["b"])
        with pytest.raises(SchemaError):
            Relation(
                "R", [Attribute("a")], fds=(FunctionalDependency(["zz"], ["a"]),)
            )

    def test_fresh_atom(self):
        atom = self.make().fresh_atom()
        assert atom.relation == "R"
        assert atom.arity == 2


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema("s")
        schema.add_relation("R", [("a", "int")])
        assert "R" in schema
        assert schema.arity("R") == 1
        with pytest.raises(UnknownRelationError):
            schema.relation("S")

    def test_duplicate_relation_rejected(self):
        schema = Schema("s")
        schema.add_relation("R", [("a", "int")])
        with pytest.raises(SchemaError):
            schema.add_relation("R", [("a", "int")])

    def test_constraint_egds_collects_all(self):
        schema = Schema("s")
        schema.add_relation("R", [("a", "int"), ("b", "int")], key=["a"])
        schema.add_relation("S", [("a", "int")])
        assert len(schema.constraint_egds()) == 1

    def test_union(self):
        left = Schema("l")
        left.add_relation("R", [("a", "int")])
        right = Schema("r")
        right.add_relation("S", [("a", "int")])
        merged = left.union(right)
        assert "R" in merged and "S" in merged

    def test_union_clash(self):
        left = Schema("l")
        left.add_relation("R", [("a", "int")])
        right = Schema("r")
        right.add_relation("R", [("a", "int")])
        with pytest.raises(SchemaError):
            left.union(right)

    def test_str_contains_relations(self):
        schema = Schema("s")
        schema.add_relation("R", [("a", "int")], key=["a"])
        rendered = str(schema)
        assert "R(a int)" in rendered and "key(a)" in rendered
