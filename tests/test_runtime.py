"""The batch runtime: fingerprints, cache, corpora, executor, results."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.rewriter import rewrite
from repro.dsl.serializer import serialize_dependency
from repro.pipeline import run_rewritten, run_scenario
from repro.relational.instance import Instance
from repro.runtime.cache import RewriteCache, decode_rewrite, encode_rewrite
from repro.runtime.corpus import (
    DEFAULT_CORPUS,
    Corpus,
    ScenarioSpec,
    corpus_names,
    get_corpus,
    spec,
)
from repro.runtime.executor import BatchOptions, run_batch
from repro.runtime.fingerprint import (
    fingerprint_instance,
    fingerprint_scenario,
    fingerprint_task,
)
from repro.runtime.results import TaskRecord, read_jsonl, summarize, write_jsonl
from repro.scenarios.generators import build_family, flagged_scenario
from repro.scenarios.running_example import build_scenario


def _dependency_set(result):
    return sorted(
        f"{d.name}|{serialize_dependency(d)}" for d in result.dependencies
    )


class TestFingerprint:
    def test_reordered_mappings_fingerprint_identically(self, running_scenario):
        from repro.core.scenario import MappingScenario

        reordered = MappingScenario(
            source_schema=running_scenario.source_schema,
            target_schema=running_scenario.target_schema,
            mappings=list(reversed(running_scenario.mappings)),
            target_views=running_scenario.target_views,
            target_constraints=running_scenario.target_constraints,
            name="reordered",
        )
        assert fingerprint_scenario(reordered) == fingerprint_scenario(
            running_scenario
        )

    def test_scenario_name_does_not_contribute(self, running_scenario):
        assert fingerprint_scenario(build_scenario()) == fingerprint_scenario(
            running_scenario
        )

    def test_different_content_differs(self):
        assert fingerprint_scenario(flagged_scenario(1)) != fingerprint_scenario(
            flagged_scenario(2)
        )

    def test_instance_fingerprint_ignores_insertion_order(self):
        left, right = Instance(), Instance()
        rows = [(1, "a"), (2, "b"), (3, "c")]
        for row in rows:
            left.add_row("R", *row)
        for row in reversed(rows):
            right.add_row("R", *row)
        assert fingerprint_instance(left) == fingerprint_instance(right)
        right.add_row("R", 4, "d")
        assert fingerprint_instance(left) != fingerprint_instance(right)

    def test_instance_fingerprint_distinguishes_types(self):
        ints, strings = Instance(), Instance()
        ints.add_row("R", 1)
        strings.add_row("R", "1")
        assert fingerprint_instance(ints) != fingerprint_instance(strings)

    def test_task_fingerprint_includes_params(self, running_scenario):
        base = fingerprint_task(running_scenario, verify=True)
        assert base != fingerprint_task(running_scenario, verify=False)
        assert base == fingerprint_task(build_scenario(), verify=True)


class TestRewriteCache:
    def test_payload_round_trip_preserves_dependencies(self, running_scenario):
        rewritten = rewrite(running_scenario)
        payload = json.loads(json.dumps(encode_rewrite(rewritten)))
        decoded = decode_rewrite(payload, running_scenario)
        assert _dependency_set(decoded) == _dependency_set(rewritten)
        assert decoded.aux_arities == rewritten.aux_arities
        assert decoded.provenance == rewritten.provenance
        assert decoded.has_deds == rewritten.has_deds

    def test_cached_rewrite_chases_identically(self, running_scenario):
        from repro.scenarios.running_example import generate_source_instance

        source = generate_source_instance(products=8, seed=3)
        cache = RewriteCache()
        rewritten = rewrite(running_scenario)
        fingerprint = fingerprint_scenario(running_scenario)
        cache.store(fingerprint, rewritten)
        cached, _ = cache.fetch(running_scenario)
        direct = run_scenario(running_scenario, source)
        replayed = run_rewritten(running_scenario, cached, source)
        assert replayed.chase.status == direct.chase.status
        assert replayed.target == direct.target

    def test_stats_and_lru_eviction(self):
        cache = RewriteCache(capacity=2)
        cache.put("a", {"x": 1})
        cache.put("b", {"x": 2})
        assert cache.get("a") == {"x": 1}  # refreshes 'a'
        cache.put("c", {"x": 3})  # evicts 'b'
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.stats.puts == 3
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 1
        assert 0 < cache.stats.hit_rate < 1

    def test_corrupt_or_stale_disk_entry_is_a_miss(
        self, tmp_path, running_scenario
    ):
        from repro.runtime.fingerprint import fingerprint_scenario as fps

        cache = RewriteCache(directory=tmp_path)
        fingerprint = fps(running_scenario)
        entry = tmp_path / f"{fingerprint}.json"
        entry.write_text('{"version": 999, "deps": []}')  # future format
        assert cache.fetch(running_scenario)[0] is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        cache.clear_memory()
        entry.write_text("not json {")  # torn/corrupted
        assert cache.fetch(running_scenario)[0] is None

    def test_unfold_mode_is_part_of_the_key(self, running_scenario):
        cache = RewriteCache()
        fingerprint = fingerprint_scenario(running_scenario)
        cache.store(fingerprint, rewrite(running_scenario))
        hit, _ = cache.fetch(running_scenario, unfold_source_premises=True)
        assert hit is None  # wrong rewrite mode must not be served
        hit, _ = cache.fetch(running_scenario)
        assert hit is not None  # ...and the valid entry was not evicted

    def test_disk_backend_survives_processes(self, tmp_path, running_scenario):
        first = RewriteCache(directory=tmp_path)
        fingerprint = fingerprint_scenario(running_scenario)
        first.store(fingerprint, rewrite(running_scenario))
        assert (tmp_path / f"{fingerprint}.json").exists()

        second = RewriteCache(directory=tmp_path)  # a "new process"
        result, _ = second.fetch(running_scenario)
        assert result is not None
        assert second.stats.disk_hits == 1
        second.clear_memory()
        assert second.get(fingerprint) is not None


class TestCorpus:
    def test_registry_contains_default(self):
        assert DEFAULT_CORPUS in corpus_names()

    def test_default_corpus_is_batch_sized(self):
        assert len(get_corpus(DEFAULT_CORPUS)) >= 50

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            get_corpus("nope")
        with pytest.raises(KeyError):
            ScenarioSpec("nope")

    def test_specs_build_deterministically(self):
        for candidate in get_corpus("smoke"):
            first, second = candidate.build(), candidate.build()
            assert fingerprint_scenario(first.scenario) == fingerprint_scenario(
                second.scenario
            )
            assert fingerprint_instance(first.instance) == fingerprint_instance(
                second.instance
            )

    def test_every_registered_spec_is_well_formed(self):
        seen = set()
        for name in corpus_names():
            for candidate in get_corpus(name):
                if candidate in seen:
                    continue
                seen.add(candidate)
                assert candidate.label.startswith(candidate.family)
                built = build_family(
                    candidate.family, **candidate.params_dict()
                )
                built.scenario.validate()

    def test_limited_prefix(self):
        corpus = get_corpus(DEFAULT_CORPUS)
        short = corpus.limited(3)
        assert len(short) == 3
        assert short.specs == corpus.specs[:3]
        assert corpus.limited(10_000) is corpus


class TestExecutor:
    @pytest.fixture(scope="class")
    def smoke_report(self):
        return run_batch(get_corpus("smoke"), BatchOptions(jobs=1))

    def test_serial_run_completes_every_spec(self, smoke_report):
        corpus = get_corpus("smoke")
        assert len(smoke_report.records) == len(corpus)
        assert smoke_report.mode == "serial"
        assert [r.index for r in smoke_report.records] == list(range(len(corpus)))
        for record in smoke_report.records:
            assert record.status in ("success", "failure", "nontermination")
            assert record.fingerprint and record.task_fingerprint
            assert record.total_seconds > 0

    def test_summary_counts(self, smoke_report):
        summary = smoke_report.summary
        assert summary.total == len(smoke_report.records)
        assert summary.errors == 0 and summary.timeouts == 0
        assert summary.clean
        assert summary.succeeded == sum(
            1 for r in smoke_report.records if r.status == "success"
        )
        assert set(summary.by_family) == {
            r.family for r in smoke_report.records
        }

    def test_warm_disk_cache_repeat_run_hits_everything(self, tmp_path):
        options = BatchOptions(jobs=1, cache_dir=str(tmp_path))
        corpus = get_corpus("smoke")
        cold = run_batch(corpus, options)
        assert not any(r.cache_hit for r in cold.records)
        warm = run_batch(corpus, options)
        assert all(r.cache_hit for r in warm.records)
        assert warm.summary.cache_hit_rate == 1.0
        # Warm statuses replay the cold ones exactly.
        assert [r.status for r in warm.records] == [
            r.status for r in cold.records
        ]

    def test_pooled_run_matches_serial(self, tmp_path, smoke_report):
        pooled = run_batch(
            get_corpus("smoke"),
            BatchOptions(jobs=2, cache_dir=str(tmp_path)),
        )
        assert pooled.mode == "pool"
        assert [r.label for r in pooled.records] == [
            r.label for r in smoke_report.records
        ]
        assert [r.status for r in pooled.records] == [
            r.status for r in smoke_report.records
        ]
        assert [r.target_facts for r in pooled.records] == [
            r.target_facts for r in smoke_report.records
        ]

    def test_broken_spec_records_error_not_crash(self):
        corpus = Corpus(
            "broken",
            "one bad spec",
            (spec("partition", width=0), spec("cleanup", orders=5)),
        )
        report = run_batch(corpus, BatchOptions(jobs=1))
        statuses = [r.status for r in report.records]
        assert statuses[0] == "error"
        assert "width" in report.records[0].error
        assert statuses[1] == "success"
        assert not report.summary.clean

    def test_timeout_records_timeout(self):
        import signal

        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        corpus = Corpus(
            "slowpoke",
            "a deliberately heavy spec",
            (spec("flagged", flags=3, products=40, name_pairs=3),),
        )
        report = run_batch(corpus, BatchOptions(jobs=1, timeout=0.001))
        assert report.records[0].status == "timeout"
        assert report.summary.timeouts == 1


class TestResults:
    def test_jsonl_round_trip(self, tmp_path, smoke_records=None):
        report = run_batch(get_corpus("smoke").limited(3), BatchOptions())
        path = tmp_path / "out" / "records.jsonl"
        written = write_jsonl(report.records, path)
        assert written == 3
        loaded = read_jsonl(path)
        assert loaded == report.records

    def test_summarize_buckets_statuses(self):
        records = [
            TaskRecord("c", 0, "a()", "random", {}, status="success", ok=True,
                       verified=True, cache_hit=True),
            TaskRecord("c", 1, "b()", "random", {}, status="failure"),
            TaskRecord("c", 2, "c()", "flagged", {}, status="timeout"),
            TaskRecord("c", 3, "d()", "flagged", {}, status="error"),
        ]
        summary = summarize(records, wall_seconds=2.0)
        assert (summary.succeeded, summary.failed) == (1, 1)
        assert (summary.timeouts, summary.errors) == (1, 1)
        assert summary.cache_hits == 1 and summary.cache_lookups == 4
        assert summary.scenarios_per_second == 2.0
        assert summary.by_family == {"random": 2, "flagged": 2}
        assert not summary.clean

    def test_summarize_records_parallelism(self):
        summary = summarize([], parallelism="process:2")
        assert summary.parallelism == "process:2"
        assert summary.as_dict()["parallelism"] == "process:2"


class TestIntraChaseParallelism:
    """BatchOptions.parallelism: budgeted, recorded, and JSONL-visible."""

    def test_serial_run_honours_requested_parallelism(self, monkeypatch):
        import repro.runtime.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        corpus = get_corpus("smoke").limited(2)
        report = run_batch(
            corpus, BatchOptions(parallelism="thread:2", use_cache=False)
        )
        assert report.parallelism == "thread:2"
        assert report.summary.parallelism == "thread:2"
        assert all(r.parallelism == "thread:2" for r in report.records)
        assert all(r.ok for r in report.records)

    def test_pool_budget_caps_chase_workers(self, monkeypatch):
        import repro.runtime.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 4)
        corpus = get_corpus("smoke").limited(3)
        report = run_batch(
            corpus,
            BatchOptions(jobs=2, parallelism="process:4", use_cache=False),
        )
        # 4 cpus / 2 jobs = 2 chase workers per task, never 4 — and
        # daemonic pool workers cannot fork, so the record says threads.
        assert report.parallelism == "thread:2"
        assert all(r.parallelism == "thread:2" for r in report.records)
        if report.mode == "pool":
            assert "cannot fork" in report.note

    def test_exhausted_budget_degrades_to_serial(self, monkeypatch):
        import repro.runtime.executor as executor_module

        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 2)
        corpus = get_corpus("smoke").limited(2)
        report = run_batch(
            corpus,
            BatchOptions(jobs=2, parallelism="process:4", use_cache=False),
        )
        assert report.parallelism == "serial"

    def test_parallelism_round_trips_through_jsonl(self, tmp_path):
        record = TaskRecord(
            "c", 0, "a()", "random", {}, parallelism="process:2"
        )
        path = tmp_path / "records.jsonl"
        write_jsonl([record], path)
        (loaded,) = read_jsonl(path)
        assert loaded.parallelism == "process:2"
        # Pre-parallelism records (no field) still load.
        import json

        old = dict(json.loads(record.to_json()))
        del old["parallelism"]
        path.write_text(json.dumps(old) + "\n")
        (legacy,) = read_jsonl(path)
        assert legacy.parallelism == "serial"


class TestBatchCli:
    def test_list(self, capsys):
        assert main(["batch", "--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "mixed" in out

    def test_unknown_corpus_is_an_error(self, capsys):
        assert main(["batch", "definitely-not-a-corpus"]) == 2

    def test_end_to_end_with_results_and_cache(self, tmp_path, capsys):
        results = tmp_path / "records.jsonl"
        code = main([
            "batch", "smoke",
            "--cache-dir", str(tmp_path / "cache"),
            "--results", str(results),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch run: smoke" in out
        assert "By family" in out
        records = read_jsonl(results)
        assert len(records) == len(get_corpus("smoke"))
