"""The block probe pipeline: RowMask restriction, generated drivers,
probe counters, and the block/row differential.

PR 10 rewrote the encoded probe path to touch columns in blocks: each
join step's generated driver looks up an index bucket per input row,
restricts it through a :class:`RowMask` (bucket identity or bisect
slice instead of per-row membership), checks repeated-variable
equalities as comprehension filters over column locals, and flushes
result tuples in blocks.  The old row-at-a-time loop stays reachable
through :func:`row_probe_mode` as the differential baseline; these
tests pin the pieces the e14 bench races.
"""

import pytest

from repro.logic.atoms import Atom, Comparison, Conjunction, NegatedConjunction
from repro.logic.terms import Constant, Variable
from repro.relational.kernel import ColumnarInstance, RowMask, TermPool
from repro.relational.query import (
    _PROBE_BLOCK,
    compile_query,
    row_probe_mode,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")


def c(v):
    return Constant(v)


class TestRowMask:
    def test_covering_contiguous_mask_returns_bucket_identity(self):
        # The e2 hot-path regression: a fresh-generation window covering
        # the whole bucket must hand the bucket back *by identity* — the
        # old `[r for r in rows if r in delta]` allocated a copy per
        # probe even when nothing was filtered.
        mask = RowMask(range(0, 100))
        bucket = [3, 17, 42, 99]
        assert mask.restrict(bucket) is bucket

    def test_covering_sparse_mask_returns_bucket_identity(self):
        mask = RowMask({0, 2, 4, 6, 8})
        bucket = [2, 6, 8]
        assert mask.restrict(bucket) is bucket

    def test_contiguous_window_slices_by_bisect(self):
        mask = RowMask(range(10, 20))
        assert mask.restrict([5, 8, 11, 14, 19, 23]) == [11, 14, 19]

    def test_sparse_window_filters_by_membership(self):
        mask = RowMask({10, 14, 18})
        assert mask.restrict([5, 10, 12, 14, 30]) == [10, 14]

    def test_disjoint_bucket_is_empty(self):
        mask = RowMask(range(100, 200))
        assert mask.restrict([1, 2, 3]) == ()
        assert mask.restrict([300, 400]) == ()

    def test_empty_inputs(self):
        assert RowMask(range(5)).restrict([]) == ()
        empty = RowMask(())
        assert empty.restrict([1, 2]) == ()
        assert len(empty) == 0 and not empty

    def test_container_protocol_for_sharders(self):
        # The parallel sharders partition a round's delta by iterating
        # it; masks must behave like the sets they replaced.
        mask = RowMask({7, 3, 11})
        assert sorted(mask) == [3, 7, 11]
        assert len(mask) == 3
        assert 7 in mask and 5 not in mask


def _store():
    """R(k, a) joined with S(a, b, b): three probe keys, fan-out with a
    repeated-variable check that culls half of one bucket."""
    store = ColumnarInstance(pool=TermPool())
    for k, a in [(1, 10), (2, 10), (3, 20)]:
        store.add(Atom("R", (c(k), c(a))))
    for a, b, bb in [(10, 5, 5), (10, 6, 7), (20, 8, 8)]:
        store.add(Atom("S", (c(a), c(b), c(bb))))
    return store


def _plan(store, **kwargs):
    body = Conjunction(atoms=(Atom("R", (x, y)), Atom("S", (y, z, z))))
    return compile_query(body, **kwargs).encoded(store.pool)


def _drain(plan, store, delta=None):
    stats = store.kernel_stats
    probed0, surv0 = stats.probe_rows, stats.probe_survivors
    rows = []
    for block in plan.blocks(store, delta=delta):
        rows += block
    return rows, stats.probe_rows - probed0, stats.probe_survivors - surv0


class TestProbeCounters:
    def test_probe_rows_counts_candidates_and_survivors_counts_yields(self):
        store = _store()
        plan = _plan(store, first_atom=0)
        rows, probed, survivors = _drain(plan, store)
        # Step R: 3 candidate rows, all survive (no checks).  Step S:
        # a=10 twice (2 candidates each) + a=20 once (1 candidate) = 5
        # candidates; the z==z column check kills (10, 6, 7), leaving
        # one survivor per probe.
        assert len(rows) == 3
        assert probed == 3 + 5
        assert survivors == 3 + 3

    def test_delta_restriction_counts_candidates_after_the_mask(self):
        store = _store()
        plan = _plan(store, first_atom=0)
        r_ids = store.live_row_ids("R")
        delta = RowMask(r_ids[-1:])  # only R(3, 20) is "new"
        rows, probed, survivors = _drain(plan, store, delta)
        # Anchor candidates are counted *after* the mask restriction:
        # 1 R row, then 1 S candidate for a=20.
        assert len(rows) == 1
        assert probed == 1 + 1
        assert survivors == 1 + 1

    def test_block_and_row_modes_report_identical_counters(self):
        store = _store()
        plan = _plan(store, first_atom=0)
        block = _drain(plan, store)
        with row_probe_mode():
            row = _drain(plan, store)
        assert block == row


class TestBlockRowDifferential:
    """row_probe_mode must be observationally identical to the drivers."""

    @pytest.mark.parametrize("anchor", [None, 0, 1])
    def test_identical_streams_across_anchors(self, anchor):
        store = _store()
        kwargs = {} if anchor is None else {"first_atom": anchor}
        plan = _plan(store, **kwargs)
        block_rows, *_ = _drain(plan, store)
        with row_probe_mode():
            row_rows, *_ = _drain(plan, store)
        assert block_rows == row_rows
        assert len(block_rows) == 3

    def test_identical_streams_under_delta_shapes(self):
        store = _store()
        plan = _plan(store, first_atom=0)
        r_ids = store.live_row_ids("R")
        for delta in (
            RowMask(r_ids),            # covering
            RowMask(r_ids[1:]),        # contiguous window
            RowMask(set(r_ids[::2])),  # sparse
            set(r_ids[:1]),            # raw set: wrapped by blocks()
        ):
            block_rows, *_ = _drain(plan, store, delta)
            with row_probe_mode():
                row_rows, *_ = _drain(plan, store, delta)
            assert block_rows == row_rows

    def test_identical_streams_with_comparisons_and_negation(self):
        store = _store()
        store.add(Atom("Bad", (c(10),)))
        body = Conjunction(
            atoms=(Atom("R", (x, y)), Atom("S", (y, z, z))),
            comparisons=(Comparison("<", x, c(3)),),
            negations=(
                NegatedConjunction(Conjunction(atoms=(Atom("Bad", (y,)),))),
            ),
        )
        plan = compile_query(body).encoded(store.pool)
        block_rows, *_ = _drain(plan, store)
        with row_probe_mode():
            row_rows, *_ = _drain(plan, store)
        # The comparison keeps k in {1, 2}; the negation then kills both
        # a=10 rows, leaving nothing (R(3, 20) fails the comparison).
        assert block_rows == row_rows == []

    def test_corpus_scenario_chases_identically(self):
        # End-to-end: one full rewrite + chase per mode over a corpus
        # scenario — every probe the chase makes goes through whichever
        # pipeline is active.
        from repro.pipeline import run_scenario
        from repro.runtime.fingerprint import fingerprint_instance

        from corpus import pipeline_specs

        spec = pipeline_specs()[0]
        built = spec.build()
        block = run_scenario(built.scenario, built.instance)
        built = spec.build()
        with row_probe_mode():
            row = run_scenario(built.scenario, built.instance)
        assert block.chase.status == row.chase.status
        assert fingerprint_instance(block.target) == fingerprint_instance(
            row.target
        )


class TestBlockSurface:
    def test_blocks_yield_tuples_in_bounded_blocks(self):
        store = ColumnarInstance(pool=TermPool())
        rows = [(i, i % 7) for i in range(3 * _PROBE_BLOCK)]
        store.add_all(Atom("T", (c(a), c(b))) for a, b in rows)
        plan = compile_query(
            Conjunction(atoms=(Atom("T", (x, y)),))
        ).encoded(store.pool)
        blocks = list(plan.blocks(store))
        assert sum(len(block) for block in blocks) == len(rows)
        for block in blocks:
            assert block and len(block) <= _PROBE_BLOCK
            assert all(type(row) is tuple for row in block)

    def test_zero_step_plan_yields_the_seed(self):
        # A body with no atoms (a ded's pure-comparison branch): the
        # seed block flows through _finalize untouched.
        store = ColumnarInstance(pool=TermPool())
        plan = compile_query(
            Conjunction(comparisons=(Comparison("<", x, c(5)),)),
            bound=(x,),
        ).encoded(store.pool)
        slot = plan.slot_of[x]
        ok = [(slot, store.encode_term(c(1)))]
        bad = [(slot, store.encode_term(c(9)))]
        assert [
            row for block in plan.blocks(store, ok) for row in block
        ] == [(store.encode_term(c(1)),)]
        assert list(plan.blocks(store, bad)) == []
