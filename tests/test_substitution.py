"""Unit tests for substitutions, matching and unification."""

import pytest

from repro.errors import LogicError
from repro.logic.atoms import Atom, Comparison, Conjunction, Equality, NegatedConjunction
from repro.logic.substitution import Substitution, match_atom, unify_atoms
from repro.logic.terms import Constant, Null, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b = Constant("a"), Constant("b")


class TestSubstitution:
    def test_apply_term(self):
        sub = Substitution({x: a})
        assert sub.apply_term(x) == a
        assert sub.apply_term(y) == y
        assert sub.apply_term(a) == a

    def test_keys_must_be_variables(self):
        with pytest.raises(LogicError):
            Substitution({a: x})  # type: ignore[dict-item]

    def test_bind_conflict(self):
        sub = Substitution({x: a})
        with pytest.raises(LogicError):
            sub.bind(x, b)
        assert sub.bind(x, a)[x] == a

    def test_try_bind(self):
        sub = Substitution({x: a})
        assert sub.try_bind(x, b) is None
        extended = sub.try_bind(y, b)
        assert extended is not None and extended[y] == b
        # Original untouched (immutability).
        assert y not in sub

    def test_merge(self):
        left = Substitution({x: a})
        right = Substitution({y: b})
        merged = left.merge(right)
        assert merged is not None
        assert merged[x] == a and merged[y] == b
        assert left.merge(Substitution({x: b})) is None

    def test_compose_applies_then(self):
        first = Substitution({x: y})
        second = Substitution({y: a})
        composed = first.compose(second)
        assert composed.apply_term(x) == a
        assert composed.apply_term(y) == a

    def test_restrict(self):
        sub = Substitution({x: a, y: b})
        restricted = sub.restrict([x])
        assert x in restricted and y not in restricted

    def test_apply_atom_and_conjunction(self):
        sub = Substitution({x: a})
        atom = Atom("R", (x, y))
        assert sub.apply_atom(atom) == Atom("R", (a, y))
        conj = Conjunction(
            atoms=(atom,),
            comparisons=(Comparison("<", x, y),),
            negations=(NegatedConjunction(Conjunction(atoms=(atom,))),),
        )
        applied = sub.apply_conjunction(conj)
        assert applied.atoms[0] == Atom("R", (a, y))
        assert applied.comparisons[0] == Comparison("<", a, y)
        assert applied.negations[0].inner.atoms[0] == Atom("R", (a, y))

    def test_apply_polymorphic(self):
        sub = Substitution({x: a})
        assert sub.apply(Equality(x, y)) == Equality(a, y)
        assert sub.apply(x) == a

    def test_equality_and_hash(self):
        assert Substitution({x: a}) == Substitution({x: a})
        assert len({Substitution({x: a}), Substitution({x: a})}) == 1


class TestMatchAtom:
    def test_basic_match(self):
        sub = match_atom(Atom("R", (x, y)), Atom("R", (a, b)))
        assert sub is not None
        assert sub[x] == a and sub[y] == b

    def test_repeated_variable(self):
        assert match_atom(Atom("R", (x, x)), Atom("R", (a, b))) is None
        sub = match_atom(Atom("R", (x, x)), Atom("R", (a, a)))
        assert sub is not None and sub[x] == a

    def test_constants_rigid(self):
        assert match_atom(Atom("R", (a,)), Atom("R", (b,))) is None
        assert match_atom(Atom("R", (a,)), Atom("R", (a,))) is not None

    def test_relation_and_arity_mismatch(self):
        assert match_atom(Atom("R", (x,)), Atom("S", (a,))) is None
        assert match_atom(Atom("R", (x,)), Atom("R", (a, b))) is None

    def test_seed_respected(self):
        seed = Substitution({x: a})
        assert match_atom(Atom("R", (x,)), Atom("R", (b,)), seed) is None
        sub = match_atom(Atom("R", (x,)), Atom("R", (a,)), seed)
        assert sub is not None

    def test_nulls_matchable_by_variables(self):
        sub = match_atom(Atom("R", (x,)), Atom("R", (Null(1),)))
        assert sub is not None and sub[x] == Null(1)


class TestUnifyAtoms:
    def test_variable_variable(self):
        sub = unify_atoms(Atom("R", (x,)), Atom("R", (y,)))
        assert sub is not None
        assert sub.apply_term(x) == sub.apply_term(y)

    def test_variable_constant(self):
        sub = unify_atoms(Atom("R", (x, y)), Atom("R", (a, y)))
        assert sub is not None and sub[x] == a

    def test_clash(self):
        assert unify_atoms(Atom("R", (a,)), Atom("R", (b,))) is None

    def test_chained(self):
        # R(x, x) with R(y, a) forces x = y = a.
        sub = unify_atoms(Atom("R", (x, x)), Atom("R", (y, a)))
        assert sub is not None
        assert sub.apply_term(x) == a
        assert sub.apply_term(y) == a

    def test_different_relations(self):
        assert unify_atoms(Atom("R", (x,)), Atom("S", (x,))) is None
