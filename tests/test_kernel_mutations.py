"""Property suite: random mutation sequences over both kernels.

The columnar kernel's mutation surface — per-row inserts, bulk encoded
extends, tombstone deletes, resurrections, generation bumps — must be
observationally identical to the reference set-based kernel, and must
preserve the invariants the block probe pipeline leans on: sorted index
buckets (RowMask restriction slices them by bisect) and per-generation
insertion windows that cover every live row exactly once (semi-naive
evaluation would otherwise see a fact twice or never).

Hypothesis drives interleaved op sequences through a
:class:`ColumnarInstance` and a reference :class:`Instance` in
lockstep, then compares fact sets, query results and window structure.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, example, given, settings

from repro.logic.atoms import Atom, Conjunction
from repro.logic.terms import Constant, Variable
from repro.relational.instance import Instance
from repro.relational.kernel import ColumnarInstance, TermPool
from repro.relational.query import evaluate

x, y, z = Variable("x"), Variable("y"), Variable("z")

RELATIONS = ("R", "S")


def _fact(relation, a, b):
    return Atom(relation, (Constant(a), Constant(b)))


# Ops over a tiny value domain so sequences hit duplicates, deletes of
# present facts, and re-adds of tombstoned rows (resurrections).
values = st.integers(min_value=0, max_value=3)
facts = st.tuples(st.sampled_from(RELATIONS), values, values)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), facts),
        st.tuples(st.just("remove"), facts),
        st.tuples(st.just("extend"), st.lists(facts, max_size=6)),
        st.tuples(st.just("bump"), st.just(None)),
    ),
    max_size=40,
)


def _apply(ops):
    columnar = ColumnarInstance(pool=TermPool())
    reference = Instance()
    for op, payload in ops:
        if op == "add":
            relation, a, b = payload
            assert columnar.add(_fact(relation, a, b)) == reference.add(
                _fact(relation, a, b)
            )
        elif op == "remove":
            relation, a, b = payload
            assert columnar.remove(_fact(relation, a, b)) == reference.remove(
                _fact(relation, a, b)
            )
        elif op == "extend":
            # The columnar side takes the bulk encoded path (one batch,
            # in-batch dedup, index maintenance); the reference side
            # adds row by row — results must not differ.
            by_relation = {}
            for relation, a, b in payload:
                by_relation.setdefault(relation, []).append(
                    columnar.encode_row((Constant(a), Constant(b)))
                )
                reference.add(_fact(relation, a, b))
            for relation, rows in by_relation.items():
                columnar.extend_encoded(relation, rows)
        else:
            columnar.bump_generation()
            reference.bump_generation()
    return columnar, reference


def _bindings(body, instance):
    return sorted(
        tuple(sorted((v.name, t) for v, t in binding.items()))
        for binding in evaluate(body, instance)
    )


# A pinned resurrection: add, tombstone, bump, re-add — the row id is
# reused and must land in the *new* generation's window only.
RESURRECTION = [
    ("add", ("R", 0, 1)),
    ("add", ("S", 1, 2)),
    ("remove", ("R", 0, 1)),
    ("bump", None),
    ("extend", [("R", 0, 1), ("R", 0, 1), ("S", 1, 3)]),
]


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
@example(ops=RESURRECTION)
@example(ops=[("add", ("R", 1, 1)), ("remove", ("R", 1, 1)),
              ("add", ("R", 1, 1))])
def test_kernels_agree_after_arbitrary_mutations(ops):
    columnar, reference = _apply(ops)
    for relation in RELATIONS:
        assert columnar.facts(relation) == reference.facts(relation)
    assert len(columnar) == len(reference)
    body = Conjunction(atoms=(Atom("R", (x, y)), Atom("S", (y, z))))
    assert _bindings(body, columnar) == _bindings(body, reference)


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
@example(ops=RESURRECTION)
def test_every_live_row_sits_in_exactly_one_generation_window(ops):
    columnar, _ = _apply(ops)
    current = columnar.current_generation
    # Window g = rows inserted in [g, g+1): the per-generation slices
    # the chase round loop and the fixpoint iterate.
    counts = {}
    for g in range(0, current + 1):
        later = set(columnar.rows_since(g + 1))
        for entry in columnar.rows_since(g):
            if entry not in later:
                counts[entry] = counts.get(entry, 0) + 1
    live = {
        (relation, row_id)
        for relation in columnar.relations()
        for row_id in columnar.live_row_ids(relation)
    }
    assert set(counts) == live
    assert all(count == 1 for count in counts.values())


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=operations)
@example(ops=RESURRECTION)
def test_index_buckets_stay_sorted_through_resurrection(ops):
    # RowMask.restrict slices buckets with bisect, which silently
    # returns wrong windows on unsorted input — resurrection re-inserts
    # an *old* row id after larger ones and must insort, not append.
    columnar, _ = _apply(ops)
    for relation in columnar.relations():
        for positions in [(0,), (1,), (0, 1)]:
            index = columnar.encoded_index(relation, positions)
            for bucket in index.values():
                assert list(bucket) == sorted(bucket)
