"""Unit tests for instances: facts, generations, indexes, null rewriting."""

import pytest

from repro.errors import SchemaError
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Null
from repro.relational.instance import Instance
from repro.relational.schema import Schema


def fact(relation, *values):
    terms = tuple(
        v if isinstance(v, Null) else Constant(v) for v in values
    )
    return Atom(relation, terms)


class TestBasics:
    def test_add_dedupes(self):
        instance = Instance()
        assert instance.add(fact("R", 1))
        assert not instance.add(fact("R", 1))
        assert len(instance) == 1

    def test_add_row_convenience(self):
        instance = Instance()
        instance.add_row("R", 1, "a", Null(3))
        assert fact("R", 1, "a", Null(3)) in instance

    def test_non_ground_rejected(self):
        from repro.logic.terms import Variable

        with pytest.raises(SchemaError):
            Instance().add(Atom("R", (Variable("x"),)))

    def test_schema_validation(self):
        schema = Schema("s")
        schema.add_relation("R", [("a", "int")])
        instance = Instance(schema)
        instance.add(fact("R", 1))
        with pytest.raises(SchemaError):
            instance.add(fact("Unknown", 1))
        from repro.errors import TypingError

        with pytest.raises(TypingError):
            instance.add(fact("R", "not-an-int"))

    def test_remove(self):
        instance = Instance()
        instance.add(fact("R", 1))
        assert instance.remove(fact("R", 1))
        assert not instance.remove(fact("R", 1))
        assert len(instance) == 0

    def test_sizes_and_relations(self):
        instance = Instance()
        instance.add(fact("R", 1))
        instance.add(fact("R", 2))
        instance.add(fact("S", 1))
        assert instance.size() == 3
        assert instance.size("R") == 2
        assert sorted(instance.relations()) == ["R", "S"]

    def test_equality_ignores_empty_buckets(self):
        left = Instance()
        left.add(fact("R", 1))
        left.add(fact("S", 1))
        left.remove(fact("S", 1))
        right = Instance()
        right.add(fact("R", 1))
        assert left == right


class TestGenerations:
    def test_facts_since(self):
        instance = Instance()
        instance.add(fact("R", 1))
        generation = instance.bump_generation()
        instance.add(fact("R", 2))
        newer = instance.facts_since(generation)
        assert newer == [fact("R", 2)]
        assert set(instance.facts_since(0)) == {fact("R", 1), fact("R", 2)}

    def test_facts_since_relation_filter(self):
        instance = Instance()
        generation = instance.bump_generation()
        instance.add(fact("R", 1))
        instance.add(fact("S", 1))
        assert instance.facts_since(generation, "R") == [fact("R", 1)]


class TestIndexes:
    def test_index_lookup(self):
        instance = Instance()
        instance.add(fact("R", 1, "a"))
        instance.add(fact("R", 2, "a"))
        instance.add(fact("R", 3, "b"))
        index = instance.index("R", [1])
        assert len(index[(Constant("a"),)]) == 2
        assert len(index[(Constant("b"),)]) == 1

    def test_index_invalidation_on_write(self):
        instance = Instance()
        instance.add(fact("R", 1))
        index = instance.index("R", [0])
        assert len(index[(Constant(1),)]) == 1
        instance.add(fact("R", 2))
        fresh = instance.index("R", [0])
        assert (Constant(2),) in fresh

    def test_index_cached_between_reads(self):
        instance = Instance()
        instance.add(fact("R", 1))
        first = instance.index("R", [0])
        second = instance.index("R", [0])
        assert first is second


class TestNullHandling:
    def test_nulls_collected(self):
        instance = Instance()
        instance.add(fact("R", Null(1), 2))
        instance.add(fact("S", Null(2)))
        assert instance.nulls() == {Null(1), Null(2)}
        assert not instance.is_ground_complete()

    def test_apply_null_map_rewrites(self):
        instance = Instance()
        instance.add(fact("R", Null(1), "x"))
        rewritten = instance.apply_null_map({Null(1): Constant(7)})
        assert rewritten == 1
        assert fact("R", 7, "x") in instance
        assert fact("R", Null(1), "x") not in instance

    def test_apply_null_map_collapses_duplicates(self):
        instance = Instance()
        instance.add(fact("R", Null(1)))
        instance.add(fact("R", 7))
        instance.apply_null_map({Null(1): Constant(7)})
        assert len(instance) == 1

    def test_apply_null_map_preserves_generation(self):
        instance = Instance()
        instance.add(fact("R", Null(1)))
        generation = instance.bump_generation()
        instance.apply_null_map({Null(1): Constant(7)})
        # The rewritten fact keeps its original (pre-bump) generation.
        assert instance.facts_since(generation) == []

    def test_apply_null_map_empty(self):
        instance = Instance()
        instance.add(fact("R", 1))
        assert instance.apply_null_map({}) == 0


class TestCopies:
    def test_copy_independent(self):
        instance = Instance()
        instance.add(fact("R", 1))
        clone = instance.copy()
        clone.add(fact("R", 2))
        assert len(instance) == 1
        assert len(clone) == 2

    def test_restricted_to(self):
        instance = Instance()
        instance.add(fact("R", 1))
        instance.add(fact("S", 1))
        restricted = instance.restricted_to(["R"])
        assert len(restricted) == 1
        assert restricted.size("S") == 0

    def test_str_truncates(self):
        instance = Instance()
        for i in range(30):
            instance.add(fact("R", i))
        rendered = str(instance)
        assert "more" in rendered
        assert str(Instance()) == "(empty instance)"


class _ScanCountingInstance(Instance):
    """Counts how many insertion-log entries a delta scan touches."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.entries_scanned = 0

    def _log_entries(self, generation):
        for entry in super()._log_entries(generation):
            self.entries_scanned += 1
            yield entry


class TestFactsSinceIsDeltaSized:
    def test_no_full_instance_scan(self):
        """facts_since(g) reads the per-generation insertion lists, so a
        small delta on top of a big instance costs O(|delta|), not O(n)."""
        instance = _ScanCountingInstance()
        for i in range(10_000):
            instance.add(fact("R", i))
        generation = instance.bump_generation()
        for i in range(5):
            instance.add(fact("Delta", i))
        instance.entries_scanned = 0
        newer = instance.facts_since(generation)
        assert {f.relation for f in newer} == {"Delta"}
        assert len(newer) == 5
        assert instance.entries_scanned == 5

    def test_relation_filter_stays_delta_sized(self):
        instance = _ScanCountingInstance()
        for i in range(1_000):
            instance.add(fact("R", i))
        generation = instance.bump_generation()
        instance.add(fact("R", 1_000))
        instance.add(fact("S", 0))
        instance.entries_scanned = 0
        assert instance.facts_since(generation, "R") == [fact("R", 1_000)]
        assert instance.entries_scanned == 2

    def test_removed_and_rewritten_facts_filtered(self):
        instance = Instance()
        instance.add(fact("R", 1))
        generation = instance.bump_generation()
        instance.add(fact("R", 2))
        instance.add(fact("R", 3))
        instance.remove(fact("R", 2))
        assert instance.facts_since(generation) == [fact("R", 3)]

    def test_null_map_keeps_earliest_generation_reachable(self):
        instance = Instance()
        null = Null(7)
        instance.add(fact("R", null))
        generation = instance.bump_generation()
        instance.add(fact("R", "x"))
        # Rewriting the older null fact onto the newer constant fact must
        # keep the collapsed fact visible from its earliest generation.
        instance.apply_null_map({null: Constant("x")})
        assert instance.facts_since(0) == [fact("R", "x")]
        # The earliest generation (0) was kept, so the collapsed fact is
        # *not* part of the newer generation's delta.
        assert fact("R", "x") not in instance.facts_since(generation)

    def test_copy_preserves_insertion_log(self):
        instance = Instance()
        instance.add(fact("R", 1))
        generation = instance.bump_generation()
        instance.add(fact("R", 2))
        clone = instance.copy()
        clone.add(fact("R", 3))
        assert set(clone.facts_since(generation)) == {fact("R", 2), fact("R", 3)}
        assert instance.facts_since(generation) == [fact("R", 2)]
