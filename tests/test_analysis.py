"""The static mapping analyzer: termination ladder, firing graph,
guard dropping, and its integration across the corpus.

The differential tier of this suite enforces the analyzer's two load-
bearing promises: (1) a proven-terminating scenario chased with its
guards dropped (no step budget, no Bloom-spilled trigger memory) is
bit-identical to the guarded run, and (2) no statically-proven-
terminating scenario ever ends in nontermination.
"""

from dataclasses import replace

import pytest

from repro.analysis import (
    TerminationClass,
    analyze_dependencies,
    analyze_firing,
    classify_termination,
    contradiction_reason,
    dead_dependency_indices,
    fire_schedule,
    populatable_relations,
)
from repro.analysis.analyzer import _AUX_PREFIX
from repro.chase.ded import GreedyDedChase
from repro.chase.engine import ChaseConfig, StandardChase
from repro.core.rewriter import AUX_PREFIX, rewrite
from repro.logic.atoms import Atom, Comparison, Conjunction, Equality
from repro.logic.dependencies import Disjunct, ded, egd, tgd
from repro.logic.terms import Constant, Variable
from repro.pipeline import run_scenario

from corpus import CHASE_CASES, pipeline_specs

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def test_aux_prefix_mirrors_rewriter():
    # analysis/ depends only on repro.logic; the aux-relation prefix is
    # mirrored as a literal and must never drift from the rewriter's.
    assert _AUX_PREFIX == AUX_PREFIX


# ---------------------------------------------------------------------------
# The termination ladder
# ---------------------------------------------------------------------------


class TestTerminationLadder:
    def test_full_sets_are_trivially_terminating(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("S", (x, y)),)), (Atom("T", (x, y)),))
        ]
        report = classify_termination(deps)
        assert report.classification is TerminationClass.FULL
        assert report.proven
        assert report.proven_for("oblivious")
        assert report.proven_for("restricted")

    def test_weak_acyclicity(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, y)),))
        ]
        report = classify_termination(deps)
        assert report.classification is TerminationClass.WEAKLY_ACYCLIC
        assert report.weakly_acyclic is True

    def test_jointly_acyclic_but_not_weakly(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("P", (x,)),)), (Atom("Q", (x, y)),)),
            tgd(Conjunction(atoms=(Atom("Q", (x, y)),)), (Atom("S", (y,)),)),
            tgd(
                Conjunction(atoms=(Atom("S", (x,)), Atom("T", (x,)))),
                (Atom("P", (x,)),),
            ),
        ]
        report = classify_termination(deps)
        assert report.classification is TerminationClass.JOINTLY_ACYCLIC
        assert report.weakly_acyclic is False
        assert report.jointly_acyclic is True
        assert report.proven
        assert report.proven_for("restricted")

    def test_super_weakly_acyclic_but_not_jointly(self):
        deps = [
            tgd(
                Conjunction(atoms=(Atom("S", (x,)),)),
                (Atom("T", (z, x, Constant("done"))),),
            ),
            tgd(
                Conjunction(atoms=(Atom("T", (x, y, Constant("todo"))),)),
                (Atom("S", (x,)),),
            ),
        ]
        report = classify_termination(deps)
        assert report.classification is TerminationClass.SUPER_WEAKLY_ACYCLIC
        assert report.weakly_acyclic is False
        assert report.jointly_acyclic is False
        assert report.super_weakly_acyclic is True

    def test_unprovable_stays_unproven(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("R", (x, y)),)), (Atom("R", (y, z)),))
        ]
        report = classify_termination(deps)
        assert report.classification is TerminationClass.UNPROVEN
        assert not report.proven
        assert not report.proven_for("restricted")

    def test_weak_acyclicity_does_not_license_oblivious(self):
        # R(x,y) -> ∃z R(x,z) is weakly acyclic (the restricted chase
        # stops immediately) but the oblivious chase re-fires on every
        # invented fact forever.  Rich acyclicity is what the oblivious
        # policy needs, and this set is not richly acyclic.
        deps = [
            tgd(Conjunction(atoms=(Atom("R", (x, y)),)), (Atom("R", (x, z)),))
        ]
        report = classify_termination(deps)
        assert report.classification is TerminationClass.WEAKLY_ACYCLIC
        assert report.richly_acyclic is False
        assert report.proven_for("restricted")
        assert not report.proven_for("oblivious")

    def test_richly_acyclic_licenses_oblivious(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, y)),))
        ]
        report = classify_termination(deps)
        assert report.richly_acyclic is True
        assert report.proven_for("oblivious")

    def test_equalities_cap_the_ladder_at_weak_acyclicity(self):
        # JA/SWA are existential-rule criteria; with an egd in the set
        # the classifier must not climb past weak acyclicity.
        deps = [
            tgd(Conjunction(atoms=(Atom("P", (x,)),)), (Atom("Q", (x, y)),)),
            tgd(Conjunction(atoms=(Atom("Q", (x, y)),)), (Atom("S", (y,)),)),
            tgd(
                Conjunction(atoms=(Atom("S", (x,)), Atom("T", (x,)))),
                (Atom("P", (x,)),),
            ),
            egd(
                Conjunction(atoms=(Atom("Q", (x, y)), Atom("Q", (x, z)))),
                (Equality(y, z),),
            ),
        ]
        report = classify_termination(deps)
        assert report.has_equalities
        assert report.classification is TerminationClass.UNPROVEN

    def test_ded_branches_union_into_the_proof(self):
        deps = [
            ded(
                Conjunction(atoms=(Atom("S", (x,)),)),
                (
                    Disjunct(atoms=(Atom("T", (x, y)),)),
                    Disjunct(atoms=(Atom("U", (x,)),)),
                ),
            )
        ]
        report = classify_termination(deps)
        assert report.has_deds
        assert report.proven

    def test_payload_roundtrips_the_verdict(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x, y)),))
        ]
        payload = classify_termination(deps).to_payload()
        assert payload["classification"] == "weakly_acyclic"
        assert payload["proven"] is True


# ---------------------------------------------------------------------------
# Firing analysis and premise satisfiability
# ---------------------------------------------------------------------------


class TestFiringAnalysis:
    def test_populatable_fixpoint_and_dead_dependencies(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x,)),)),
            tgd(Conjunction(atoms=(Atom("Ghost", (x,)),)), (Atom("U", (x,)),)),
        ]
        populatable = populatable_relations(deps, ["S"])
        assert populatable == frozenset({"S", "T"})
        assert dead_dependency_indices(deps, ["S"]) == (1,)

    def test_dead_dependency_conclusions_do_not_populate(self):
        # U is only produced by the dead dependency, so anything fed by
        # U is transitively dead too.
        deps = [
            tgd(Conjunction(atoms=(Atom("Ghost", (x,)),)), (Atom("U", (x,)),)),
            tgd(Conjunction(atoms=(Atom("U", (x,)),)), (Atom("V", (x,)),)),
        ]
        assert dead_dependency_indices(deps, ["S"]) == (0, 1)

    def test_contradictory_comparisons_make_a_dependency_dead(self):
        deps = [
            tgd(
                Conjunction(
                    atoms=(Atom("S", (x,)),),
                    comparisons=(
                        Comparison("<", x, Constant(2)),
                        Comparison(">", x, Constant(4)),
                    ),
                ),
                (Atom("T", (x,)),),
            )
        ]
        assert dead_dependency_indices(deps, ["S"]) == (0,)
        assert populatable_relations(deps, ["S"]) == frozenset({"S"})

    def test_fire_schedule_orders_the_chain(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("B", (x,)),)), (Atom("C", (x,)),)),
            tgd(Conjunction(atoms=(Atom("A", (x,)),)), (Atom("B", (x,)),)),
        ]
        assert fire_schedule(deps) == ((1,), (0,))

    def test_mutual_recursion_shares_a_stratum(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("A", (x,)),)), (Atom("B", (x,)),)),
            tgd(Conjunction(atoms=(Atom("B", (x,)),)), (Atom("A", (x,)),)),
        ]
        assert fire_schedule(deps) == ((0, 1),)

    def test_firing_report_payload(self):
        deps = [
            tgd(Conjunction(atoms=(Atom("S", (x,)),)), (Atom("T", (x,)),))
        ]
        payload = analyze_firing(deps, ["S"]).to_payload()
        assert payload["populatable"] == ["S", "T"]
        assert payload["dead_dependencies"] == []
        assert payload["strata"] == [[0]]


class TestContradictionReason:
    def _premise(self, *comparisons):
        return Conjunction(atoms=(Atom("S", (x, y)),), comparisons=comparisons)

    def test_satisfiable_interval_is_fine(self):
        premise = self._premise(
            Comparison(">=", x, Constant(2)), Comparison("<", x, Constant(4))
        )
        assert contradiction_reason(premise) is None

    def test_empty_interval(self):
        premise = self._premise(
            Comparison("<", x, Constant(2)), Comparison(">", x, Constant(4))
        )
        assert contradiction_reason(premise) is not None

    def test_boundary_strictness(self):
        open_at_two = self._premise(
            Comparison("<", x, Constant(2)), Comparison(">=", x, Constant(2))
        )
        assert contradiction_reason(open_at_two) is not None
        closed_at_two = self._premise(
            Comparison("<=", x, Constant(2)), Comparison(">=", x, Constant(2))
        )
        assert contradiction_reason(closed_at_two) is None

    def test_pinned_value_vs_exclusion(self):
        premise = self._premise(
            Comparison("=", x, Constant(3)), Comparison("!=", x, Constant(3))
        )
        assert contradiction_reason(premise) is not None

    def test_typed_equality_keeps_cross_type_values_apart(self):
        # x = 1.0 and x != 1 is satisfiable: typed constants of
        # different Python types never compare equal.
        premise = self._premise(
            Comparison("=", x, Constant(1.0)), Comparison("!=", x, Constant(1))
        )
        assert contradiction_reason(premise) is None

    def test_reflexive_impossibility(self):
        premise = self._premise(Comparison("<", x, x))
        assert contradiction_reason(premise) is not None

    def test_opposed_variable_pair(self):
        premise = self._premise(
            Comparison("<", x, y), Comparison("<", y, x)
        )
        assert contradiction_reason(premise) is not None

    def test_consistent_variable_pair(self):
        premise = self._premise(
            Comparison("<", x, y), Comparison("<=", x, y)
        )
        assert contradiction_reason(premise) is None

    def test_ground_false_comparison(self):
        premise = self._premise(Comparison("<", Constant(5), Constant(2)))
        assert contradiction_reason(premise) is not None


# ---------------------------------------------------------------------------
# Corpus-wide verdicts
# ---------------------------------------------------------------------------


class TestCorpusTermination:
    @pytest.mark.parametrize(
        "spec", pipeline_specs(), ids=lambda s: s.label
    )
    def test_every_pipeline_spec_classifies(self, spec):
        built = spec.build()
        rewritten = rewrite(built.scenario)
        report = classify_termination(rewritten.dependencies)
        assert isinstance(report.classification, TerminationClass)
        payload = report.to_payload()
        assert payload["classification"] == str(report.classification)

    @pytest.mark.parametrize(
        "case", CHASE_CASES, ids=lambda c: c.label
    )
    def test_every_chase_case_classifies(self, case):
        setup = case.build()
        report = classify_termination(setup.dependencies)
        assert isinstance(report.classification, TerminationClass)

    def test_corpus_exercises_proofs_beyond_weak_acyclicity(self):
        # The acceptance bar: at least one corpus scenario is proven
        # terminating by JA or SWA where weak acyclicity fails.
        beyond = []
        for case in CHASE_CASES:
            report = classify_termination(case.build().dependencies)
            if report.proven and report.weakly_acyclic is False:
                assert report.classification in (
                    TerminationClass.JOINTLY_ACYCLIC,
                    TerminationClass.SUPER_WEAKLY_ACYCLIC,
                )
                beyond.append(case.label)
        assert "joint-acyclic-feed" in beyond
        assert "super-weak-constant-guard" in beyond


# ---------------------------------------------------------------------------
# Guard dropping: bit-identical, and never a budget hit
# ---------------------------------------------------------------------------


def _standard_cases():
    out = []
    for case in CHASE_CASES:
        setup = case.build()
        if not any(d.is_ded() for d in setup.dependencies):
            out.append((case, setup))
    return out


class TestGuardDropDifferential:
    @pytest.mark.parametrize(
        "case,setup",
        _standard_cases(),
        ids=lambda value: value.label if hasattr(value, "label") else "",
    )
    def test_unguarded_run_is_bit_identical(self, case, setup):
        report = classify_termination(setup.dependencies)
        base_config = setup.config or ChaseConfig()

        guarded = StandardChase(
            list(setup.dependencies),
            list(setup.source_relations),
            replace(base_config, guards="on"),
            termination=report,
        ).run(setup.instance)
        auto = StandardChase(
            list(setup.dependencies),
            list(setup.source_relations),
            base_config,
            termination=report,
        ).run(setup.instance)

        case.check_baseline(guarded)
        assert guarded.guards == "enforced"
        if report.proven_for(base_config.policy):
            assert auto.guards == "dropped"
        assert auto.status == guarded.status
        assert auto.target == guarded.target
        assert auto.failure_reason == guarded.failure_reason
        assert auto.stats.nulls_created == guarded.stats.nulls_created
        assert auto.stats.rounds == guarded.stats.rounds

    def test_proven_ded_sweep_drops_guards_per_branch(self):
        for case in CHASE_CASES:
            setup = case.build()
            if not any(d.is_ded() for d in setup.dependencies):
                continue
            report = classify_termination(setup.dependencies)
            guarded = GreedyDedChase(
                list(setup.dependencies),
                list(setup.source_relations),
                replace(setup.config or ChaseConfig(), guards="on"),
                termination=report,
            ).run(setup.instance)
            auto = GreedyDedChase(
                list(setup.dependencies),
                list(setup.source_relations),
                setup.config,
                termination=report,
            ).run(setup.instance)
            assert auto.status == guarded.status, case.label
            assert auto.target == guarded.target, case.label
            assert auto.failure_reason == guarded.failure_reason, case.label

    def test_no_proven_scenario_ever_hits_the_budget(self):
        # One spec per family end to end: if the analyzer proved
        # termination, the chase must not end in nontermination — and
        # under the default auto guards it must have dropped them.
        seen_families = set()
        for spec in pipeline_specs():
            if spec.family in seen_families:
                continue
            seen_families.add(spec.family)
            built = spec.build()
            outcome = run_scenario(built.scenario, built.instance, verify=False)
            assert outcome.analysis is not None, spec.label
            if outcome.analysis.termination.proven:
                assert outcome.chase.status.value != "nontermination", spec.label
                assert outcome.chase.guards == "dropped", spec.label

    def test_guard_drop_survives_a_hostile_budget(self):
        # A proven-terminating recursive case with a one-round budget:
        # auto guards ignore the budget and still converge.
        for case in CHASE_CASES:
            if case.label != "transitive-closure":
                continue
            setup = case.build()
            report = classify_termination(setup.dependencies)
            throttled = StandardChase(
                list(setup.dependencies),
                list(setup.source_relations),
                ChaseConfig(max_rounds=1),
                termination=report,
            ).run(setup.instance)
            assert throttled.guards == "dropped"
            assert throttled.ok
            assert throttled.stats.rounds > 1


class TestAnalyzerDiagnosticsIntegration:
    def test_rewritten_scenario_gets_analysis_counters(self):
        spec = pipeline_specs()[0]
        built = spec.build()
        rewritten = rewrite(built.scenario)
        analysis = analyze_dependencies(
            rewritten.dependencies,
            rewritten.source_relations(),
            rewritten.target_relations(),
        )
        counters = analysis.counters()
        assert counters["analysis.strata"] >= 1
        assert set(counters) == {
            "analysis.proven_terminating",
            "analysis.dead_dependencies",
            "analysis.strata",
            "analysis.diagnostics.error",
            "analysis.diagnostics.warning",
            "analysis.diagnostics.info",
        }

    def test_pipeline_result_carries_the_analysis(self):
        spec = pipeline_specs()[0]
        built = spec.build()
        outcome = run_scenario(built.scenario, built.instance, verify=False)
        assert outcome.analysis is not None
        assert outcome.analysis.termination.proven in (True, False)
        payload = outcome.analysis.to_payload()
        assert {"termination", "firing", "diagnostics", "ok"} <= set(payload)
