"""Differential suite for the branch-raced disjunctive search.

The racing contract is *bit-identical* results: whatever the racer
(threads, forked workers, or the serial reference), the greedy ded
sweep must return the same winning selection, target instance, failure
reason, aggregated statistics and ``scenarios_tried`` as the serial
sweep — the winner is decided by canonical selection order, never by
completion order.  The speculative disjunctive chase must likewise
produce the identical universal model set, leaf accounting and
truncation behaviour.  These tests sweep the shared scenario corpus
(``tests/corpus.py``) plus the ded-pressure cases through every racing
mode and compare, and unit-test the racer machinery (deterministic
winner, early cancellation, no partial state, the three-tier worker
budget, candidate-fanning verification).
"""

import multiprocessing
import time
from dataclasses import replace

import pytest

from repro.chase.ded import GreedyDedChase
from repro.chase.disjunctive import DisjunctiveChase
from repro.chase.engine import ChaseConfig
from repro.chase.parallel import compose_parallelism
from repro.chase.race import (
    ProcessRacer,
    SerialRacer,
    ThreadRacer,
    create_racer,
)
from repro.core.rewriter import rewrite
from repro.core.verify import ScenarioVerifier
from repro.errors import ChaseError
from repro.pipeline import run_rewritten
from repro.runtime.fingerprint import fingerprint_instance

from corpus import (
    DISJUNCTIVE,
    chase_cases,
    ded_sweep_dependencies,
    ded_sweep_instance,
    ded_sweep_relations,
    pipeline_specs,
)

RACE_MODES = ["thread:2", "process:2"]

DISJUNCTIVE_SPECS = pipeline_specs(require={DISJUNCTIVE})


def _compare_chases(serial, raced, label):
    assert raced.status == serial.status, label
    assert raced.target == serial.target, label
    assert raced.failure_reason == serial.failure_reason, label
    assert raced.scenarios_tried == serial.scenarios_tried, label
    assert raced.branch_selection == serial.branch_selection, label
    assert raced.stats.rounds == serial.stats.rounds, label
    assert raced.stats.premise_matches == serial.stats.premise_matches, label
    assert raced.stats.nulls_created == serial.stats.nulls_created, label
    assert raced.stats.egd_unifications == serial.stats.egd_unifications, label
    assert raced.stats.tgd_fires == serial.stats.tgd_fires, label


class TestCorpusDifferential:
    """Branch-raced pipelines are bit-identical, corpus-wide."""

    @pytest.mark.parametrize(
        "spec", DISJUNCTIVE_SPECS, ids=[s.label for s in DISJUNCTIVE_SPECS]
    )
    def test_disjunctive_pipeline_specs_agree(self, spec):
        built = spec.build()
        rewritten = rewrite(built.scenario)
        assert rewritten.has_deds, spec.label  # the corpus flag is honest
        baseline = run_rewritten(
            built.scenario, rewritten, built.instance, verify=True
        )
        for mode in RACE_MODES:
            raced = run_rewritten(
                built.scenario,
                rewritten,
                built.instance,
                verify=True,
                config=ChaseConfig(branch_parallelism=mode),
            )
            _compare_chases(baseline.chase, raced.chase, f"{spec.label}/{mode}")
            assert raced.target == baseline.target, mode
            assert raced.ok == baseline.ok, mode
            if baseline.verification is not None:
                assert raced.verification.ok == baseline.verification.ok

    @pytest.mark.parametrize(
        "case",
        chase_cases(require={DISJUNCTIVE}),
        ids=lambda c: c.label,
    )
    @pytest.mark.parametrize("mode", RACE_MODES)
    def test_ded_chase_cases_agree(self, case, mode):
        setup = case.build()
        serial = GreedyDedChase(
            list(setup.dependencies), setup.source_relations
        ).run(setup.instance)
        case.check_baseline(serial)
        raced = GreedyDedChase(
            list(setup.dependencies),
            setup.source_relations,
            ChaseConfig(branch_parallelism=mode),
        ).run(setup.instance)
        _compare_chases(serial, raced, f"{case.label}/{mode}")
        assert raced.branch_racing.startswith(mode.split(":")[0]) or (
            "degraded" in raced.branch_racing
        )

    @pytest.mark.parametrize("mode", RACE_MODES)
    def test_deep_winner_identical(self, mode):
        # Three 2-branch deds whose equality branches all fail: the
        # winner is the *last* of the 8 selections, so the race must
        # resolve every earlier selection before declaring it.
        deps = list(ded_sweep_dependencies(deds=3))
        instance = ded_sweep_instance(deds=3)
        relations = ded_sweep_relations(deds=3)
        serial = GreedyDedChase(deps, relations).run(instance)
        raced = GreedyDedChase(
            deps, relations, ChaseConfig(branch_parallelism=mode)
        ).run(instance)
        assert serial.ok and serial.scenarios_tried == 8
        _compare_chases(serial, raced, mode)
        assert [t["status"] for t in raced.branch_timings] == [
            t["status"] for t in serial.branch_timings
        ]
        assert [t["selection"] for t in raced.branch_timings] == [
            t["selection"] for t in serial.branch_timings
        ]


class TestEarlyCancellation:
    """A losing/cancelled branch leaves no trace in shared structures."""

    @pytest.mark.parametrize("mode", RACE_MODES)
    def test_source_instance_untouched(self, mode):
        setup = chase_cases(require={DISJUNCTIVE})[0].build()
        source = setup.instance
        before_facts = set(source)
        before_generation = source.current_generation
        before_version = source.version
        engine = GreedyDedChase(
            list(setup.dependencies),
            setup.source_relations,
            ChaseConfig(branch_parallelism=mode),
        )
        result = engine.run(source)
        assert result.ok
        # Every branch — winner, losers, cancelled stragglers — chased
        # its own working copy; the shared source instance's contents
        # and version stamps are exactly those of a never-started run.
        assert set(source) == before_facts
        assert source.current_generation == before_generation
        assert source.version == before_version

    @pytest.mark.parametrize("mode", RACE_MODES)
    def test_rerun_after_race_is_identical(self, mode):
        # The sweep object itself (compiled plans, ded infos) must not
        # be contaminated by a race: a second run — raced or serial —
        # reproduces the result bit-identically.
        setup = chase_cases(require={DISJUNCTIVE})[0].build()
        engine = GreedyDedChase(
            list(setup.dependencies),
            setup.source_relations,
            ChaseConfig(branch_parallelism=mode),
        )
        first = engine.run(setup.instance)
        second = engine.run(setup.instance)
        _compare_chases(first, second, mode)
        serial = GreedyDedChase(
            list(setup.dependencies), setup.source_relations
        ).run(setup.instance)
        _compare_chases(serial, first, mode)

    def test_no_leftover_worker_processes(self):
        setup = chase_cases(require={DISJUNCTIVE})[0].build()
        engine = GreedyDedChase(
            list(setup.dependencies),
            setup.source_relations,
            ChaseConfig(branch_parallelism="process:2"),
        )
        engine.run(setup.instance)
        deadline = time.time() + 5
        while time.time() < deadline:
            racers = [
                p
                for p in multiprocessing.active_children()
                if p.name.startswith("branch-race")
            ]
            if not racers:
                break
            time.sleep(0.05)
        assert not racers, "race workers must not outlive the race"

    def test_cancelled_branches_never_run_serially(self):
        # The serial reference stops at the winner: later branches are
        # never even started (the strongest form of cancellation).
        ran = []

        def run(index):
            ran.append(index)
            return index  # every branch "succeeds"

        race = SerialRacer().race(8, run, success=lambda r: True)
        assert race.winner == 0
        assert ran == [0]

    def test_thread_racer_winner_is_canonical_not_fastest(self):
        # Branch 1 finishes long before branch 0, but both succeed:
        # the winner must still be branch 0.
        def run(index):
            if index == 0:
                time.sleep(0.2)
            return f"branch-{index}"

        race = ThreadRacer(2).race(2, run, success=lambda r: True)
        assert race.winner == 0
        assert race.outcomes[0].result == "branch-0"

    def test_thread_racer_cancels_pending_beyond_winner(self):
        # With one worker the pool is strictly sequential, so once
        # branch 0 succeeds nothing else may start.
        ran = []

        def run(index):
            ran.append(index)
            return index

        racer = ThreadRacer(2)
        racer.workers = 1  # deterministic: single pool slot
        race = racer.race(16, run, success=lambda r: True)
        assert race.winner == 0
        assert 15 not in ran  # the tail was cancelled, not run

    def test_error_in_reachable_branch_raises_original_type(self):
        # The serial sweep would hit the ValueError at branch 1 before
        # reaching the success at branch 3 — the race must re-raise the
        # exact same exception, not a wrapper.
        def run(index):
            if index == 1:
                raise ValueError("boom")
            return index

        for racer in (SerialRacer(), ThreadRacer(2)):
            with pytest.raises(ValueError, match="boom"):
                racer.race(4, run, success=lambda r: r == 3)

    def test_process_racer_error_preserves_exception_type(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")

        def run(index):
            raise KeyError(f"branch-{index}")

        with pytest.raises(KeyError, match="branch-0"):
            ProcessRacer(2).race(3, run, success=lambda r: True)

    def test_error_beyond_winner_is_ignored(self):
        def run(index):
            if index == 3:
                raise ValueError("boom")
            return index

        race = ThreadRacer(2).race(4, run, success=lambda r: r == 0)
        assert race.winner == 0


class TestProcessRacer:
    def test_all_fail_resolves_every_branch(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        race = ProcessRacer(2).race(
            5, lambda i: i * 10, success=lambda r: False
        )
        assert race.winner is None
        assert sorted(race.outcomes) == [0, 1, 2, 3, 4]
        assert race.outcomes[3].result == 30
        assert race.tried == 5

    def test_fork_worker_labels(self):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork")
        race = ProcessRacer(2).race(
            3, lambda i: i, success=lambda r: False
        )
        assert all(
            outcome.worker.startswith("fork-")
            for outcome in race.outcomes.values()
        )

    def test_daemonic_caller_degrades_to_threads(self, monkeypatch):
        class _Daemonic:
            daemon = True

        monkeypatch.setattr(
            multiprocessing, "current_process", lambda: _Daemonic()
        )
        racer = create_racer("process:3")
        assert isinstance(racer, ThreadRacer)
        assert racer.workers == 3

    def test_create_racer_modes(self):
        assert type(create_racer("serial")) is SerialRacer
        assert isinstance(create_racer("thread:2"), ThreadRacer)
        if "fork" in multiprocessing.get_all_start_methods():
            assert isinstance(create_racer("process:2"), ProcessRacer)

    def test_describe(self):
        assert SerialRacer().describe() == "serial"
        assert ThreadRacer(2).describe() == "thread:2"
        assert ProcessRacer(4).describe() == "process:4"
        degraded = ProcessRacer(4)
        degraded._degraded = True
        assert degraded.describe() == "serial (degraded from process:4)"


class TestSpeculativeDisjunctive:
    """The speculative tree exploration is bit-identical to serial."""

    def _ded_setup(self):
        return (
            list(ded_sweep_dependencies(deds=2, insert_branches=2)),
            ded_sweep_relations(deds=2),
            ded_sweep_instance(deds=2),
        )

    def test_model_set_identical(self):
        deps, relations, instance = self._ded_setup()
        serial = DisjunctiveChase(deps, relations).run(instance)
        raced = DisjunctiveChase(
            deps, relations, ChaseConfig(branch_parallelism="thread:3")
        ).run(instance)
        assert serial.satisfiable
        assert len(serial.models) == len(raced.models)
        for left, right in zip(serial.models, raced.models):
            assert left == right  # bit-identical, including null ids
            assert fingerprint_instance(left) == fingerprint_instance(right)
        assert (serial.leaves, serial.failures, serial.branchings) == (
            raced.leaves, raced.failures, raced.branchings
        )
        assert raced.branch_racing == "thread:3"

    def test_first_only_identical(self):
        deps, relations, instance = self._ded_setup()
        serial = DisjunctiveChase(deps, relations).run(
            instance, first_only=True
        )
        raced = DisjunctiveChase(
            deps, relations, ChaseConfig(branch_parallelism="thread:2")
        ).run(instance, first_only=True)
        assert serial.models and serial.models[0] == raced.models[0]
        assert serial.leaves == raced.leaves

    def test_truncation_identical(self):
        deps, relations, instance = self._ded_setup()
        serial = DisjunctiveChase(deps, relations, max_leaves=3).run(instance)
        raced = DisjunctiveChase(
            deps,
            relations,
            ChaseConfig(branch_parallelism="thread:2"),
            max_leaves=3,
        ).run(instance)
        assert serial.truncated and raced.truncated
        assert serial.leaves == raced.leaves
        assert [m for m in serial.models] == [m for m in raced.models]

    def test_minimize_identical(self):
        deps, relations, instance = self._ded_setup()
        serial = DisjunctiveChase(deps, relations).run(instance, minimize=True)
        raced = DisjunctiveChase(
            deps, relations, ChaseConfig(branch_parallelism="thread:2")
        ).run(instance, minimize=True)
        assert [m for m in serial.models] == [m for m in raced.models]

    def test_oblivious_policy_stays_serial(self):
        deps, relations, instance = self._ded_setup()
        result = DisjunctiveChase(
            deps,
            relations,
            ChaseConfig(policy="oblivious", branch_parallelism="thread:2"),
        ).run(instance)
        assert result.branch_racing == "serial"


class TestThreeTierBudget:
    """jobs × branch workers × chase workers ≤ cpu_count, always."""

    def test_branch_workers_take_the_job_share_first(self):
        branch, chase = compose_parallelism(
            2, "process:4", "process:4", cpu_count=16
        )
        assert branch == "process:4"  # 16 // 2 jobs = 8, capped at 4
        assert chase == "process:2"  # 16 // (2 × 4) = 2

    def test_chase_serializes_when_branches_eat_the_budget(self):
        branch, chase = compose_parallelism(
            2, "process:4", "process:4", cpu_count=8
        )
        assert branch == "process:4"
        assert chase == "serial"  # 8 // (2 × 4) = 1

    def test_serial_branch_leaves_chase_budget_unchanged(self):
        branch, chase = compose_parallelism(
            2, "serial", "process:4", cpu_count=8
        )
        assert branch == "serial"
        assert chase == "process:4"

    def test_single_cpu_serializes_everything(self):
        branch, chase = compose_parallelism(
            1, "process:4", "thread:4", cpu_count=1
        )
        assert branch == "serial"
        assert chase == "serial"

    def test_raced_sweep_caps_inner_sharding(self):
        # A raced GreedyDedChase divides the chase's own shard budget by
        # the racer width (observable through the inner config).
        from repro.chase.parallel import effective_parallelism

        assert effective_parallelism("process:4", jobs=2, cpu_count=8) == (
            "process:4"
        )
        assert effective_parallelism("process:4", jobs=4, cpu_count=8) == (
            "process:2"
        )


class TestCandidateFanVerifier:
    """verify_candidates == [verify(t) for t], reports in order."""

    def _built(self):
        spec = pipeline_specs(corpus="smoke")[0]
        built = spec.build()
        rewritten = rewrite(built.scenario)
        outcome = run_rewritten(
            built.scenario, rewritten, built.instance, verify=False
        )
        return built, outcome

    def test_reports_identical_to_serial(self):
        built, outcome = self._built()
        from repro.relational.instance import Instance

        candidates = [outcome.target, Instance(), outcome.target]
        serial = ScenarioVerifier(built.scenario, built.instance)
        fanned = ScenarioVerifier(
            built.scenario, built.instance, parallelism="thread:2"
        )
        serial_reports = serial.verify_candidates(candidates)
        fanned_reports = fanned.verify_candidates(candidates)
        assert len(serial_reports) == len(fanned_reports) == 3
        for left, right in zip(serial_reports, fanned_reports):
            assert left.ok == right.ok
            assert left.premise_matches == right.premise_matches
            assert [str(v) for v in left.violations] == [
                str(v) for v in right.violations
            ]
        assert serial_reports[0].ok and not serial_reports[1].ok

    def test_serial_parallelism_stays_in_process(self):
        built, outcome = self._built()
        verifier = ScenarioVerifier(built.scenario, built.instance)
        reports = verifier.verify_candidates([outcome.target])
        assert len(reports) == 1 and reports[0].ok


class TestRacedResultMetadata:
    @pytest.mark.parametrize("mode", RACE_MODES)
    def test_branch_timings_cover_the_serial_prefix(self, mode):
        setup = chase_cases(require={DISJUNCTIVE})[0].build()
        raced = GreedyDedChase(
            list(setup.dependencies),
            setup.source_relations,
            ChaseConfig(branch_parallelism=mode),
        ).run(setup.instance)
        assert raced.branch_timings is not None
        assert [t["index"] for t in raced.branch_timings] == list(
            range(raced.scenarios_tried)
        )
        for timing in raced.branch_timings:
            assert timing["seconds"] >= 0
            assert timing["status"] in ("success", "failure", "nontermination")

    def test_serial_sweep_records_timings_too(self):
        setup = chase_cases(require={DISJUNCTIVE})[0].build()
        serial = GreedyDedChase(
            list(setup.dependencies), setup.source_relations
        ).run(setup.instance)
        assert serial.branch_racing == "serial"
        assert [t["worker"] for t in serial.branch_timings] == (
            ["serial"] * serial.scenarios_tried
        )

    def test_batch_records_carry_branch_metadata(self, tmp_path):
        from repro.runtime.corpus import get_corpus
        from repro.runtime.executor import BatchOptions, run_batch
        from repro.runtime.results import read_jsonl, write_jsonl

        corpus = get_corpus("smoke").limited(2)
        report = run_batch(
            corpus,
            BatchOptions(branch_parallelism="thread:2", use_cache=False),
        )
        assert report.branch_parallelism in ("serial", "thread:2")
        assert report.summary.branch_parallelism == report.branch_parallelism
        path = tmp_path / "records.jsonl"
        write_jsonl(report.records, path)
        back = read_jsonl(path)
        assert [r.branch_parallelism for r in back] == [
            r.branch_parallelism for r in report.records
        ]

    def test_chase_config_replace_keeps_branch_field(self):
        config = replace(
            ChaseConfig(), parallelism="thread:2",
            branch_parallelism="process:4",
        )
        assert config.branch_parallelism == "process:4"
